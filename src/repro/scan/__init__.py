"""Synthetic Internet-scan substrate (Section 6's Telnet analysis)."""

from .telnet import TELNET_PROPENSITY, ScanObservation, TelnetScan

__all__ = ["TelnetScan", "ScanObservation", "TELNET_PROPENSITY"]
