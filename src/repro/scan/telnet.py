"""Synthetic LZR-style Internet service scan (for the Section 6 analysis).

The paper joins ASdb with a 1% IPv4 LZR Telnet scan (March 2021, all
65,535 ports) and finds that critical-infrastructure organizations -
electric utilities, government, financial institutions - are *more* likely
to expose Telnet than technology companies.

We simulate the scan: each AS gets a synthetic address-space size and a
per-category Telnet exposure propensity (legacy operational-technology
gear in utilities/government/finance vs. hardened, automated fleets at
tech companies).  The example/bench join the scan against ASdb output,
exactly as the paper does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..world.organization import World

__all__ = ["ScanObservation", "TelnetScan", "TELNET_PROPENSITY"]

#: P(an AS of this layer 1 category exposes at least one Telnet service
#: in a 1% sample).  Critical infrastructure runs legacy gear.
TELNET_PROPENSITY: Dict[str, float] = {
    "utilities": 0.42,
    "government": 0.38,
    "finance": 0.30,
    "manufacturing": 0.28,
    "healthcare": 0.24,
    "agriculture": 0.22,
    "freight": 0.22,
    "construction": 0.20,
    "travel": 0.18,
    "retail": 0.17,
    "service": 0.16,
    "education": 0.15,
    "entertainment": 0.15,
    "nonprofit": 0.14,
    "media": 0.12,
    "other": 0.12,
    "computer_and_it": 0.08,
}


@dataclass(frozen=True)
class ScanObservation:
    """One AS's scan result.

    Attributes:
        asn: The scanned AS.
        hosts_sampled: Addresses probed in the 1% sample.
        telnet_hosts: Hosts answering on a Telnet service.
    """

    asn: int
    hosts_sampled: int
    telnet_hosts: int

    @property
    def has_telnet(self) -> bool:
        """Whether any Telnet service was observed."""
        return self.telnet_hosts > 0


class TelnetScan:
    """A completed synthetic scan over a world's ASes."""

    def __init__(self, world: World, seed: int = 0) -> None:
        self._observations: Dict[int, ScanObservation] = {}
        rng = random.Random(("telnet-scan", seed).__repr__())
        for asn in world.asns():
            org = world.org_of_asn(asn)
            layer1 = sorted(org.truth.layer1_slugs())[0]
            propensity = TELNET_PROPENSITY.get(layer1, 0.15)
            hosts = max(4, int(rng.lognormvariate(4.0, 1.4)))
            telnet = 0
            if rng.random() < propensity:
                telnet = max(1, int(hosts * rng.uniform(0.005, 0.08)))
            self._observations[asn] = ScanObservation(
                asn=asn, hosts_sampled=hosts, telnet_hosts=telnet
            )

    def observation(self, asn: int) -> Optional[ScanObservation]:
        """The scan result for an ASN, if scanned."""
        return self._observations.get(asn)

    def __iter__(self) -> Iterator[ScanObservation]:
        for asn in sorted(self._observations):
            yield self._observations[asn]

    def __len__(self) -> int:
        return len(self._observations)

    def telnet_rate_by_layer1(
        self, classify
    ) -> Dict[str, Tuple[int, int]]:
        """Join the scan with a classifier.

        Args:
            classify: ``asn -> set of layer 1 slugs`` (e.g. from an ASdb
                dataset record).

        Returns:
            ``{layer1_slug: (ases_with_telnet, ases_total)}``.
        """
        rates: Dict[str, List[int]] = {}
        for observation in self:
            slugs = classify(observation.asn)
            if not slugs:
                continue
            for slug in slugs:
                bucket = rates.setdefault(slug, [0, 0])
                bucket[1] += 1
                bucket[0] += observation.has_telnet
        return {
            slug: (bucket[0], bucket[1])
            for slug, bucket in sorted(rates.items())
        }
