"""NAICS -> NAICSlite translation.

The paper translates all data-source classification systems to NAICSlite to
obtain a common denominator (Section 3.2).  For NAICS-coded sources (Dun &
Bradstreet, ZoomInfo) the translation is automatic: every 6-digit NAICS code
maps to one or more NAICSlite layer 2 categories.

The mapping is deliberately *not* one-to-one for the codes the paper found
ambiguous: D&B uses 517911 ("Telecommunications Resellers"), 541512
("Computer Systems Design Services"), and 519190 ("All Other Information
Services") interchangeably for ISPs and hosting providers, and NAICS 518210
covers both "data processing" and "hosting provider".  Those codes translate
to multiple NAICSlite sub-categories, which is exactly what makes the
downstream consensus logic necessary.

Codes outside the working subset fall back to prefix rules (4-digit industry
group, 3-digit subsector, then 2-digit sector), mirroring how a practitioner
would map an unexpected NAICS code.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .labels import Label, LabelSet

__all__ = [
    "translate_naics",
    "translate_naics_codes",
    "naics_candidates_for_layer2",
    "AMBIGUOUS_TECH_CODES",
]

# 6-digit NAICS code -> NAICSlite layer 2 slugs.  Multi-valued entries encode
# genuine NAICS ambiguity.
_EXACT: Dict[str, Tuple[str, ...]] = {
    # Information / technology ------------------------------------------------
    "517311": ("isp",),
    "517312": ("phone_provider",),
    "517410": ("satellite",),
    "517911": ("isp", "hosting"),           # paper: used for both
    "517919": ("isp", "phone_provider"),
    "518210": ("hosting", "it_other"),      # data processing == hosting in NAICS
    "519130": ("online_content", "search_engine"),
    "519190": ("isp", "hosting", "it_other"),
    "511210": ("software",),
    "541511": ("software",),
    "541512": ("isp", "hosting", "tech_consulting"),
    "541513": ("hosting", "tech_consulting"),
    "541519": ("it_other",),
    "541690": ("tech_consulting",),
    "561621": ("security",),
    # Media --------------------------------------------------------------------
    "511110": ("print_media",),
    "511120": ("print_media",),
    "511130": ("print_media",),
    "512110": ("music_video_industry",),
    "512230": ("music_video_industry",),
    "512240": ("music_video_industry",),
    "515111": ("radio_tv",),
    "515112": ("radio_tv",),
    "515120": ("radio_tv",),
    "515210": ("radio_tv",),
    "519110": ("online_content",),
    "519120": ("libraries",),
    # Finance --------------------------------------------------------------------
    "522110": ("banks",),
    "522130": ("banks",),
    "522210": ("banks",),
    "522292": ("banks",),
    "523110": ("investment",),
    "523920": ("investment",),
    "523930": ("investment",),
    "524113": ("insurance",),
    "524114": ("insurance",),
    "524126": ("insurance",),
    "524210": ("insurance",),
    "541211": ("accounting",),
    "541213": ("accounting",),
    "541214": ("accounting",),
    "525110": ("investment",),
    # Education and research --------------------------------------------------------
    "611110": ("k12",),
    "611210": ("university",),
    "611310": ("university",),
    "611420": ("other_schools",),
    "611513": ("other_schools",),
    "611519": ("other_schools",),
    "611691": ("other_schools",),
    "611692": ("other_schools",),
    "541715": ("research",),
    "541720": ("research",),
    # Service ---------------------------------------------------------------------------
    "541110": ("consulting",),
    "541611": ("consulting",),
    "541613": ("consulting",),
    "561612": ("service_other",),
    "561710": ("repair",),
    "561720": ("repair",),
    "561730": ("repair",),
    "811111": ("repair",),
    "811192": ("repair",),
    "812111": ("personal_care",),
    "812113": ("personal_care",),
    "812191": ("personal_care",),
    "812320": ("personal_care",),
    "624221": ("social_assistance",),
    "624230": ("social_assistance",),
    "624410": ("social_assistance",),
    # Agriculture, mining, refineries ---------------------------------------------------------
    "111110": ("crop_farming",),
    "111419": ("greenhouses",),
    "111421": ("greenhouses",),
    "112111": ("animal_farming",),
    "112310": ("animal_farming",),
    "113310": ("forestry",),
    "115112": ("crop_farming",),
    "211120": ("oil_gas",),
    "211130": ("oil_gas",),
    "212221": ("mining",),
    "212311": ("mining",),
    "324110": ("oil_gas",),
    # Nonprofits -----------------------------------------------------------------------------------
    "813110": ("religious",),
    "813311": ("advocacy",),
    "813312": ("advocacy",),
    "813319": ("advocacy",),
    "813410": ("nonprofit_other",),
    "813910": ("nonprofit_other",),
    "813990": ("nonprofit_other",),
    # Construction and real estate --------------------------------------------------------------------
    "236115": ("buildings",),
    "236220": ("buildings",),
    "237110": ("civil_engineering",),
    "237310": ("civil_engineering",),
    "531110": ("real_estate",),
    "531120": ("real_estate",),
    "531210": ("real_estate",),
    "531311": ("real_estate",),
    # Museums, libraries, entertainment --------------------------------------------------------------------
    "711211": ("recreation",),
    "711110": ("recreation",),
    "711130": ("recreation",),
    "712110": ("museums",),
    "712120": ("museums",),
    "712130": ("museums",),
    "712190": ("museums",),
    "713110": ("amusement",),
    "713120": ("amusement",),
    "713210": ("gambling",),
    "713290": ("gambling",),
    "713940": ("amusement",),
    "561520": ("tours",),
    "487110": ("tours",),
    # Utilities --------------------------------------------------------------------------------------------------
    "221111": ("electric",),
    "221112": ("electric",),
    "221118": ("electric",),
    "221121": ("electric",),
    "221122": ("electric",),
    "221210": ("natural_gas",),
    "221310": ("water",),
    "221320": ("sewage",),
    "221330": ("steam",),
    # Health care -------------------------------------------------------------------------------------------------------
    "622110": ("hospitals",),
    "622210": ("hospitals",),
    "621511": ("medical_labs",),
    "621512": ("medical_labs",),
    "623110": ("nursing",),
    "623312": ("nursing",),
    "621610": ("nursing",),
    "621111": ("healthcare_other",),
    # Travel and accommodation ------------------------------------------------------------------------------------------------
    "481111": ("air_travel",),
    "482111": ("rail_travel", "rail_freight"),
    "483112": ("water_travel",),
    "721110": ("hotels",),
    "721120": ("hotels", "gambling"),
    "721211": ("rv_parks",),
    "721310": ("boarding",),
    "722511": ("food_services",),
    "722515": ("food_services",),
    "561510": ("travel_other",),
    # Freight, shipment, postal --------------------------------------------------------------------------------------------------------
    "491110": ("postal",),
    "492110": ("postal",),
    "481112": ("air_freight",),
    "482112": ("rail_freight",),
    "483111": ("water_freight",),
    "484110": ("trucking",),
    "484121": ("trucking",),
    "485110": ("passenger_transit",),
    "485310": ("passenger_transit",),
    "488510": ("freight_other",),
    "493110": ("freight_other",),
    "927110": ("space",),
    # Government ----------------------------------------------------------------------------------------------------------------------------
    "928110": ("military",),
    "928120": ("military",),
    "922120": ("law_enforcement",),
    "922130": ("law_enforcement",),
    "922160": ("law_enforcement",),
    "921110": ("agencies",),
    "921130": ("agencies",),
    "921190": ("agencies",),
    "923110": ("agencies",),
    "926130": ("agencies",),
    # Retail ----------------------------------------------------------------------------------------------------------------------------------------
    "445110": ("grocery",),
    "445310": ("grocery",),
    "448110": ("clothing",),
    "448120": ("clothing",),
    "448320": ("clothing",),
    "452210": ("retail_other",),
    "454110": ("retail_other",),
    "423430": ("retail_other",),
    "424410": ("grocery",),
    # Manufacturing ----------------------------------------------------------------------------------------------------------------------------------------
    "336111": ("automotive",),
    "336411": ("automotive",),
    "311111": ("food_mfg",),
    "312111": ("food_mfg",),
    "312230": ("food_mfg",),
    "313210": ("textiles",),
    "315220": ("textiles",),
    "333111": ("machinery",),
    "333120": ("machinery",),
    "325412": ("chemical",),
    "325199": ("chemical",),
    "334111": ("electronics",),
    "334413": ("electronics",),
    "334416": ("electronics",),
    "335911": ("electronics",),
    # Other ----------------------------------------------------------------------------------------------------------------------------------------------------
    "814110": ("individually_owned",),
    "812990": ("other_other",),
}

# Prefix fallbacks used when a 6-digit code is outside the exact table.
_PREFIX_4: Dict[str, Tuple[str, ...]] = {
    "5173": ("isp",),
    "5182": ("hosting",),
    "5112": ("software",),
    "5415": ("tech_consulting",),
    "5221": ("banks",),
    "5241": ("insurance",),
    "6113": ("university",),
    "6221": ("hospitals",),
    "2211": ("electric",),
    "7121": ("museums",),
    "7211": ("hotels",),
    "4841": ("trucking",),
}

_PREFIX_3: Dict[str, Tuple[str, ...]] = {
    "517": ("isp", "phone_provider"),
    "518": ("hosting",),
    "519": ("online_content",),
    "511": ("print_media", "software"),
    "512": ("music_video_industry",),
    "515": ("radio_tv",),
    "522": ("banks",),
    "523": ("investment",),
    "524": ("insurance",),
    "525": ("investment",),
    "611": ("education_other",),
    "622": ("hospitals",),
    "621": ("healthcare_other",),
    "623": ("nursing",),
    "624": ("social_assistance",),
    "221": ("utilities_other",),
    "236": ("buildings",),
    "237": ("civil_engineering",),
    "531": ("real_estate",),
    "711": ("recreation",),
    "712": ("museums",),
    "713": ("amusement",),
    "721": ("hotels",),
    "722": ("food_services",),
    "481": ("air_freight",),
    "482": ("rail_freight",),
    "483": ("water_freight",),
    "484": ("trucking",),
    "485": ("passenger_transit",),
    "491": ("postal",),
    "492": ("postal",),
    "493": ("freight_other",),
    "813": ("nonprofit_other",),
}

# 2-digit sector -> NAICSlite layer 1 slug (layer-1-only fallback).
_SECTOR_TO_L1: Dict[str, str] = {
    "11": "agriculture",
    "21": "agriculture",
    "22": "utilities",
    "23": "construction",
    "31": "manufacturing",
    "32": "manufacturing",
    "33": "manufacturing",
    "42": "retail",
    "44": "retail",
    "45": "retail",
    "48": "freight",
    "49": "freight",
    "51": "computer_and_it",
    "52": "finance",
    "53": "construction",
    "54": "service",
    "55": "service",
    "56": "service",
    "61": "education",
    "62": "healthcare",
    "71": "entertainment",
    "72": "travel",
    "81": "service",
    "92": "government",
}

#: NAICS codes D&B uses interchangeably for ISPs and hosting providers.
AMBIGUOUS_TECH_CODES: Tuple[str, ...] = ("517911", "541512", "519190")


def translate_naics(code: str) -> LabelSet:
    """Translate one 6-digit NAICS code to a NAICSlite :class:`LabelSet`.

    Exact codes map via the curated table; unknown codes fall back to
    4-digit, 3-digit, then 2-digit prefix rules.  A completely unknown
    sector yields an empty label set.
    """
    slugs = _EXACT.get(code)
    if slugs is None:
        slugs = _PREFIX_4.get(code[:4])
    if slugs is None:
        slugs = _PREFIX_3.get(code[:3])
    if slugs is not None:
        return LabelSet.from_layer2_slugs(slugs)
    layer1 = _SECTOR_TO_L1.get(code[:2])
    if layer1 is not None:
        return LabelSet([Label(layer1=layer1)])
    return LabelSet()


def translate_naics_codes(codes: Sequence[str]) -> LabelSet:
    """Translate several NAICS codes and union the results."""
    result = LabelSet()
    for code in codes:
        result = result.union(translate_naics(code))
    return result


def naics_candidates_for_layer2(layer2_slug: str) -> List[str]:
    """All exact-table NAICS codes whose translation includes ``layer2_slug``.

    Used by the D&B / ZoomInfo simulators to pick a plausible NAICS code for
    an organization whose ground-truth NAICSlite category is known.
    """
    return sorted(
        code for code, slugs in _EXACT.items() if layer2_slug in slugs
    )
