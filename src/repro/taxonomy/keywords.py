"""Per-category keyword profiles.

Each NAICSlite layer 2 category carries a keyword profile: terms that an
organization of that type characteristically uses in its WHOIS records and on
its website.  The profiles drive three independent components:

* the synthetic website generator (``repro.web``), which writes page text by
  sampling a category's vocabulary;
* the Zvelo simulator, a keyword-profile website classifier;
* the Baumann & Fabian keyword baseline (``repro.evaluation.baselines``).

The profiles deliberately overlap where the paper reports real-world
confusion: ISP / hosting / cloud vocabularies share "network", "server",
"connectivity", "bandwidth"; the education and research profiles share
"university" terms; the utilities profile contains "power" and "grid" which
also appear in hosting copy ("power your business"), etc.  That overlap - not
injected label noise - is what makes the classifiers' errors realistic.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Sequence, Set, Tuple

from . import naicslite

__all__ = [
    "KEYWORDS_LAYER2",
    "keywords_for_layer2",
    "keywords_for_layer1",
    "GENERIC_WEB_WORDS",
    "SCRAPER_LINK_KEYWORDS",
]

# Layer 2 slug -> characteristic vocabulary.
KEYWORDS_LAYER2: Dict[str, Tuple[str, ...]] = {
    # --- Computer and Information Technology --------------------------------
    "isp": (
        "internet", "broadband", "fiber", "dsl", "wireless", "connectivity",
        "bandwidth", "network", "isp", "subscriber", "coverage", "router",
        "modem", "telecom", "unlimited", "speed", "plans", "residential",
        "mbps", "gigabit",
    ),
    "phone_provider": (
        "phone", "mobile", "voice", "sms", "calling", "telephony", "voip",
        "cellular", "sim", "roaming", "minutes", "landline", "carrier",
        "prepaid", "telecom",
    ),
    "hosting": (
        "hosting", "cloud", "server", "datacenter", "colocation", "vps",
        "dedicated", "virtual", "uptime", "rack", "bandwidth", "storage",
        "compute", "infrastructure", "domains", "ssd", "backup", "managed",
        "deploy", "scalable",
    ),
    "security": (
        "security", "firewall", "threat", "malware", "encryption",
        "penetration", "vulnerability", "antivirus", "cyber", "soc",
        "detection", "incident", "forensics", "compliance", "protection",
    ),
    "software": (
        "software", "application", "developer", "platform", "api", "code",
        "release", "saas", "product", "integration", "agile", "enterprise",
        "solution", "automation", "app",
    ),
    "tech_consulting": (
        "consulting", "digital", "transformation", "integration", "advisory",
        "implementation", "outsourcing", "managed", "services", "expertise",
        "strategy", "technology", "staffing",
    ),
    "satellite": (
        "satellite", "orbit", "vsat", "ground", "station", "uplink",
        "downlink", "geostationary", "teleport", "transponder", "earth",
    ),
    "search_engine": (
        "search", "engine", "index", "ranking", "query", "crawler",
        "results", "web", "portal", "directory",
    ),
    "ixp": (
        "exchange", "peering", "ixp", "interconnection", "fabric", "route",
        "members", "port", "traffic", "neutral", "bgp",
    ),
    "it_other": (
        "technology", "digital", "data", "analytics", "innovation",
        "internet", "systems", "solutions", "information",
    ),
    # --- Media ----------------------------------------------------------------
    "streaming": (
        "streaming", "video", "music", "watch", "listen", "episodes",
        "subscription", "catalog", "playlist", "on-demand", "originals",
    ),
    "online_content": (
        "news", "articles", "stories", "editorial", "blog", "content",
        "coverage", "headlines", "journalism", "publish", "online",
    ),
    "print_media": (
        "newspaper", "magazine", "book", "print", "publisher", "edition",
        "circulation", "subscription", "press", "journal",
    ),
    "music_video_industry": (
        "studio", "film", "production", "record", "label", "artist",
        "cinema", "movie", "soundtrack", "entertainment",
    ),
    "radio_tv": (
        "radio", "television", "broadcast", "channel", "station", "cable",
        "programming", "antenna", "fm", "tv", "network",
    ),
    "media_other": (
        "media", "publishing", "broadcast", "creative", "audience",
        "advertising", "content",
    ),
    # --- Finance -----------------------------------------------------------------
    "banks": (
        "bank", "banking", "account", "loan", "mortgage", "credit", "card",
        "deposit", "checking", "savings", "branch", "atm", "interest",
        "lending",
    ),
    "insurance": (
        "insurance", "policy", "coverage", "claims", "premium", "insurer",
        "underwriting", "liability", "agent", "auto", "life", "health",
    ),
    "accounting": (
        "accounting", "tax", "payroll", "audit", "bookkeeping", "cpa",
        "returns", "filing", "ledger", "compliance",
    ),
    "investment": (
        "investment", "portfolio", "fund", "asset", "wealth", "capital",
        "equity", "securities", "pension", "advisor", "trading", "markets",
    ),
    "finance_other": (
        "finance", "financial", "payments", "fintech", "money", "currency",
        "exchange",
    ),
    # --- Education and research -----------------------------------------------------
    "k12": (
        "school", "elementary", "secondary", "students", "teachers",
        "curriculum", "classroom", "district", "grades", "parents",
    ),
    "university": (
        "university", "college", "campus", "faculty", "undergraduate",
        "graduate", "degree", "academic", "admissions", "students",
        "professor", "department", "tuition",
    ),
    "other_schools": (
        "training", "courses", "instruction", "certification", "exam",
        "preparation", "lessons", "academy", "vocational", "driving",
    ),
    "research": (
        "research", "laboratory", "institute", "science", "scientists",
        "publications", "experiments", "grants", "development", "study",
        "innovation",
    ),
    "edu_software": (
        "learning", "education", "courses", "platform", "students",
        "online", "software", "lms", "classroom", "interactive",
    ),
    "education_other": (
        "education", "learning", "academic", "knowledge", "teaching",
    ),
    # --- Service ------------------------------------------------------------------------
    "consulting": (
        "law", "legal", "attorney", "consulting", "advisory", "business",
        "clients", "firm", "counsel", "litigation", "strategy",
    ),
    "repair": (
        "repair", "maintenance", "cleaning", "landscaping", "pest",
        "locksmith", "plumbing", "janitorial", "restoration", "installation",
    ),
    "personal_care": (
        "salon", "barber", "spa", "beauty", "hair", "nails", "wellness",
        "laundry", "grooming", "massage",
    ),
    "social_assistance": (
        "shelter", "relief", "assistance", "community", "childcare",
        "daycare", "support", "families", "outreach", "welfare",
    ),
    "service_other": (
        "services", "professional", "customers", "quality", "local",
    ),
    # --- Agriculture, mining, refineries --------------------------------------------------
    "crop_farming": (
        "farm", "crops", "harvest", "grain", "soybean", "agriculture",
        "fields", "seeds", "irrigation", "organic",
    ),
    "animal_farming": (
        "livestock", "cattle", "ranch", "poultry", "dairy", "eggs",
        "breeding", "feed", "herd", "farming",
    ),
    "greenhouses": (
        "greenhouse", "nursery", "plants", "flowers", "horticulture",
        "seedlings", "garden", "growers",
    ),
    "forestry": (
        "forestry", "timber", "logging", "lumber", "forest", "sawmill",
        "wood", "harvesting",
    ),
    "mining": (
        "mining", "mine", "ore", "quarry", "minerals", "extraction",
        "drilling", "gold", "stone", "exploration",
    ),
    "oil_gas": (
        "oil", "gas", "petroleum", "refinery", "drilling", "wells",
        "crude", "pipeline", "energy", "exploration",
    ),
    "agriculture_other": (
        "agriculture", "farming", "rural", "land", "producers",
    ),
    # --- Nonprofits -------------------------------------------------------------------------
    "religious": (
        "church", "parish", "ministry", "faith", "worship", "congregation",
        "prayer", "mission", "diocese", "temple", "mosque",
    ),
    "advocacy": (
        "advocacy", "rights", "environment", "conservation", "wildlife",
        "justice", "campaign", "nonprofit", "volunteer", "awareness",
    ),
    "nonprofit_other": (
        "community", "foundation", "charity", "donate", "members",
        "association", "nonprofit", "volunteers",
    ),
    # --- Construction and real estate ------------------------------------------------------------
    "buildings": (
        "construction", "building", "contractor", "residential",
        "commercial", "renovation", "projects", "builders", "architecture",
    ),
    "civil_engineering": (
        "engineering", "infrastructure", "roads", "bridges", "utility",
        "excavation", "paving", "civil", "construction", "highways",
    ),
    "real_estate": (
        "real", "estate", "property", "homes", "listings", "realtor",
        "apartments", "leasing", "commercial", "rental", "broker",
    ),
    "construction_other": (
        "construction", "development", "projects", "property",
    ),
    # --- Museums, libraries, entertainment --------------------------------------------------------
    "libraries": (
        "library", "archives", "books", "collection", "catalog", "borrow",
        "reading", "manuscripts", "reference",
    ),
    "recreation": (
        "sports", "team", "theater", "performing", "arts", "concert",
        "stadium", "tickets", "season", "athletics", "dance",
    ),
    "amusement": (
        "park", "amusement", "arcade", "fitness", "gym", "rides",
        "attractions", "fun", "membership", "games",
    ),
    "museums": (
        "museum", "exhibit", "gallery", "historical", "zoo", "heritage",
        "collection", "visitors", "tours", "art",
    ),
    "gambling": (
        "casino", "gaming", "poker", "slots", "betting", "jackpot",
        "lottery", "wagering", "odds",
    ),
    "tours": (
        "tours", "sightseeing", "excursions", "guide", "travel",
        "adventure", "destinations", "booking",
    ),
    "entertainment_other": (
        "entertainment", "events", "leisure", "culture", "attractions",
    ),
    # --- Utilities ------------------------------------------------------------------------------------
    "electric": (
        "electric", "power", "energy", "grid", "utility", "transmission",
        "distribution", "electricity", "outage", "megawatt", "substation",
        "renewable",
    ),
    "natural_gas": (
        "gas", "natural", "pipeline", "distribution", "utility", "meter",
        "supply", "heating", "propane",
    ),
    "water": (
        "water", "supply", "irrigation", "reservoir", "utility",
        "drinking", "wells", "district", "conservation",
    ),
    "sewage": (
        "sewage", "wastewater", "treatment", "sanitation", "sewer",
        "effluent", "district", "utility",
    ),
    "steam": (
        "steam", "heating", "cooling", "district", "chilled", "thermal",
        "supply",
    ),
    "utilities_other": (
        "utility", "utilities", "service", "infrastructure", "municipal",
    ),
    # --- Health care --------------------------------------------------------------------------------------
    "hospitals": (
        "hospital", "medical", "patients", "care", "physicians", "clinic",
        "emergency", "surgery", "health", "treatment", "doctors",
    ),
    "medical_labs": (
        "laboratory", "diagnostic", "testing", "imaging", "pathology",
        "radiology", "specimens", "results", "clinical",
    ),
    "nursing": (
        "nursing", "care", "assisted", "living", "residents", "elderly",
        "rehabilitation", "home", "facility", "seniors",
    ),
    "healthcare_other": (
        "health", "healthcare", "medical", "wellness", "clinic",
        "providers", "patients",
    ),
    # --- Travel and accommodation ------------------------------------------------------------------------------
    "air_travel": (
        "airline", "flights", "passengers", "airport", "destinations",
        "booking", "fares", "travel", "miles", "boarding",
    ),
    "rail_travel": (
        "rail", "train", "railway", "passengers", "stations", "tickets",
        "routes", "schedule",
    ),
    "water_travel": (
        "cruise", "ferry", "ship", "voyage", "passengers", "ports",
        "sailing", "maritime",
    ),
    "hotels": (
        "hotel", "rooms", "reservations", "guests", "suites", "resort",
        "accommodation", "stay", "amenities", "lodge", "inn",
    ),
    "rv_parks": (
        "campground", "rv", "camping", "sites", "hookups", "outdoor",
        "park", "reservations",
    ),
    "boarding": (
        "dormitory", "boarding", "housing", "residents", "rooms",
        "workers", "lodging",
    ),
    "food_services": (
        "restaurant", "menu", "dining", "food", "bar", "chef", "cuisine",
        "reservations", "catering", "drinks", "cafe",
    ),
    "travel_other": (
        "travel", "trips", "vacation", "booking", "tourism",
    ),
    # --- Freight, shipment, postal ---------------------------------------------------------------------------------
    "postal": (
        "postal", "courier", "delivery", "parcels", "mail", "express",
        "shipping", "tracking", "packages",
    ),
    "air_freight": (
        "cargo", "air", "freight", "logistics", "shipments", "charter",
        "airport", "tonnage",
    ),
    "rail_freight": (
        "rail", "freight", "railroad", "locomotive", "cars", "intermodal",
        "shipping", "track",
    ),
    "water_freight": (
        "shipping", "maritime", "vessels", "containers", "port", "cargo",
        "fleet", "sea",
    ),
    "trucking": (
        "trucking", "freight", "fleet", "drivers", "haul", "logistics",
        "trailers", "loads", "transport",
    ),
    "space": (
        "space", "launch", "satellites", "rocket", "orbital", "payload",
        "mission", "aerospace",
    ),
    "passenger_transit": (
        "transit", "bus", "subway", "taxi", "riders", "routes", "fares",
        "metro", "commuter",
    ),
    "freight_other": (
        "logistics", "warehouse", "distribution", "supply", "chain",
        "forwarding", "storage",
    ),
    # --- Government -----------------------------------------------------------------------------------------------------
    "military": (
        "defense", "military", "security", "armed", "forces", "national",
        "veterans", "command", "ministry",
    ),
    "law_enforcement": (
        "police", "enforcement", "justice", "court", "safety", "fire",
        "emergency", "sheriff", "prosecutor",
    ),
    "agencies": (
        "government", "agency", "public", "department", "administration",
        "municipal", "citizens", "regulatory", "services", "ministry",
        "federal", "county",
    ),
    "government_other": (
        "government", "public", "official", "state",
    ),
    # --- Retail ------------------------------------------------------------------------------------------------------------
    "grocery": (
        "grocery", "supermarket", "food", "fresh", "produce", "beverages",
        "store", "deli", "market",
    ),
    "clothing": (
        "clothing", "fashion", "apparel", "shoes", "accessories", "style",
        "collection", "wear", "boutique",
    ),
    "retail_other": (
        "shop", "store", "retail", "products", "shopping", "sale",
        "wholesale", "ecommerce", "cart", "brands",
    ),
    # --- Manufacturing ------------------------------------------------------------------------------------------------------------
    "automotive": (
        "automotive", "vehicles", "cars", "parts", "assembly", "motors",
        "aircraft", "manufacturer", "oem",
    ),
    "food_mfg": (
        "food", "beverage", "production", "processing", "bottling",
        "ingredients", "brewing", "factory",
    ),
    "textiles": (
        "textile", "fabric", "apparel", "garment", "mill", "weaving",
        "yarn", "manufacturing",
    ),
    "machinery": (
        "machinery", "equipment", "industrial", "machines", "tooling",
        "fabrication", "engineering", "manufacturer",
    ),
    "chemical": (
        "chemical", "pharmaceutical", "compounds", "formulation",
        "laboratory", "production", "polymers", "drugs",
    ),
    "electronics": (
        "electronics", "semiconductor", "components", "circuit", "chips",
        "capacitor", "resistor", "battery", "devices", "pcb",
    ),
    "manufacturing_other": (
        "manufacturing", "factory", "production", "industrial", "plant",
        "quality",
    ),
    # --- Other ------------------------------------------------------------------------------------------------------------------------
    "individually_owned": (
        "personal", "individual", "private", "homepage", "hobby",
    ),
    "other_other": (
        "organization", "general", "miscellaneous",
    ),
}

#: Generic words present on nearly every website, regardless of industry.
GENERIC_WEB_WORDS: Tuple[str, ...] = (
    "home", "about", "contact", "welcome", "our", "team", "services",
    "company", "us", "news", "careers", "privacy", "terms", "copyright",
    "email", "address", "more", "learn", "today", "world", "customers",
    "quality", "experience", "trusted", "leading", "since", "mission",
)

#: Keywords the paper's scraper uses to select internal pages to visit
#: (Figure 3): pages whose link titles contain these are followed.
SCRAPER_LINK_KEYWORDS: Tuple[str, ...] = (
    "service", "solution", "about", "who", "do", "it", "us", "our",
    "company", "network", "online", "connect", "coverage", "history",
)


def keywords_for_layer2(slug: str) -> Tuple[str, ...]:
    """The keyword profile for a layer 2 category slug."""
    return KEYWORDS_LAYER2[slug]


def keywords_for_layer1(slug: str) -> Tuple[str, ...]:
    """Union of keyword profiles across a layer 1 category's children."""
    category = naicslite.layer1_by_slug(slug)
    seen: Set[str] = set()
    ordered: List[str] = []
    for sub in category.layer2:
        for word in KEYWORDS_LAYER2.get(sub.slug, ()):
            if word not in seen:
                seen.add(word)
                ordered.append(word)
    return tuple(ordered)


def _validate() -> None:
    """Every layer 2 category must have a keyword profile."""
    missing = [
        sub.slug
        for sub in naicslite.ALL_LAYER2
        if sub.slug not in KEYWORDS_LAYER2
    ]
    if missing:
        raise RuntimeError(f"missing keyword profiles: {missing}")


_validate()
