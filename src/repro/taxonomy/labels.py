"""Category labels: the common currency exchanged between ASdb components.

Every data source, classifier, labeler, and the ASdb pipeline itself emits
*category labels*.  A label always names a NAICSlite layer 1 category and
optionally a layer 2 sub-category (expert labelers occasionally can only
assign a layer 1 category; the paper's Table 8 footnote relies on this).

:class:`LabelSet` wraps a collection of labels and implements the paper's
match semantics: a data source's answer is *accurate* if at least one of its
NAICSlite categories overlaps with the ground truth ("loose" match), either
at layer 1 or at layer 2 granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from . import naicslite

__all__ = ["Label", "LabelSet"]


@dataclass(frozen=True)
class Label:
    """A single NAICSlite classification label.

    Attributes:
        layer1: Slug of the layer 1 category (e.g. ``"computer_and_it"``).
        layer2: Slug of the layer 2 category (e.g. ``"hosting"``), or None
            when only a top-level classification is known.
    """

    layer1: str
    layer2: Optional[str] = None

    def __post_init__(self) -> None:
        category = naicslite.layer1_by_slug(self.layer1)  # raises if unknown
        if self.layer2 is not None:
            sub = naicslite.layer2_by_name(self.layer2)
            if sub.layer1_code != category.code:
                raise ValueError(
                    f"layer2 {self.layer2!r} does not belong to "
                    f"layer1 {self.layer1!r}"
                )

    @classmethod
    def from_layer2(cls, layer2_slug: str) -> "Label":
        """Build a full label from a layer 2 slug alone."""
        sub = naicslite.layer2_by_name(layer2_slug)
        return cls(layer1=sub.layer1.slug, layer2=layer2_slug)

    @property
    def is_tech(self) -> bool:
        """Whether the label falls in the technology layer 1 category."""
        return naicslite.layer1_by_slug(self.layer1).tech

    @property
    def has_layer2(self) -> bool:
        """Whether a layer 2 sub-category is present."""
        return self.layer2 is not None

    @property
    def sort_key(self) -> Tuple[str, str]:
        """Deterministic ordering key (layer-1-only labels sort first
        within their layer 1)."""
        return (self.layer1, self.layer2 or "")

    @property
    def code(self) -> str:
        """The dotted NAICSlite code, e.g. ``"1.3"`` or ``"1"``."""
        category = naicslite.layer1_by_slug(self.layer1)
        if self.layer2 is None:
            return str(category.code)
        return naicslite.layer2_by_name(self.layer2).code

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        if self.layer2 is None:
            return self.layer1
        return f"{self.layer1}/{self.layer2}"


class LabelSet:
    """An immutable set of :class:`Label` with paper-style match semantics."""

    __slots__ = ("_labels",)

    def __init__(self, labels: Iterable[Label] = ()) -> None:
        self._labels: FrozenSet[Label] = frozenset(labels)

    @classmethod
    def from_layer2_slugs(cls, slugs: Iterable[str]) -> "LabelSet":
        """Build a label set from layer 2 slugs."""
        return cls(Label.from_layer2(slug) for slug in slugs)

    @classmethod
    def from_layer1_slugs(cls, slugs: Iterable[str]) -> "LabelSet":
        """Build a layer-1-only label set from layer 1 slugs."""
        return cls(Label(layer1=slug) for slug in slugs)

    @property
    def labels(self) -> FrozenSet[Label]:
        """The underlying frozen set of labels."""
        return self._labels

    def layer1_slugs(self) -> Set[str]:
        """The distinct layer 1 slugs covered by this set."""
        return {label.layer1 for label in self._labels}

    def layer2_slugs(self) -> Set[str]:
        """The distinct layer 2 slugs covered by this set (layer-1-only
        labels contribute nothing here)."""
        return {
            label.layer2 for label in self._labels if label.layer2 is not None
        }

    def overlaps_layer1(self, other: "LabelSet") -> bool:
        """Loose match at layer 1: do the two sets share a layer 1 slug?"""
        return bool(self.layer1_slugs() & other.layer1_slugs())

    def overlaps_layer2(self, other: "LabelSet") -> bool:
        """Loose match at layer 2: do the two sets share a layer 2 slug?"""
        return bool(self.layer2_slugs() & other.layer2_slugs())

    def strict_equals_layer2(self, other: "LabelSet") -> bool:
        """Strict match: identical layer 2 slug sets (Appendix B metric)."""
        return self.layer2_slugs() == other.layer2_slugs()

    def union(self, other: "LabelSet") -> "LabelSet":
        """Set union of labels."""
        return LabelSet(self._labels | other._labels)

    def intersection_layer2(self, other: "LabelSet") -> "LabelSet":
        """Labels of ``self`` whose layer 2 slug also appears in ``other``."""
        shared = self.layer2_slugs() & other.layer2_slugs()
        return LabelSet(
            label for label in self._labels if label.layer2 in shared
        )

    def restrict_to_layer1(self) -> "LabelSet":
        """Drop layer 2 information, keeping one label per layer 1 slug."""
        return LabelSet(Label(layer1=slug) for slug in self.layer1_slugs())

    @property
    def is_tech(self) -> bool:
        """Whether any label falls in the technology category."""
        return any(label.is_tech for label in self._labels)

    @property
    def has_layer2(self) -> bool:
        """Whether at least one label carries a layer 2 sub-category."""
        return any(label.has_layer2 for label in self._labels)

    def __bool__(self) -> bool:
        return bool(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Label]:
        return iter(sorted(self._labels, key=lambda l: l.sort_key))

    def __contains__(self, label: Label) -> bool:
        return label in self._labels

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabelSet):
            return NotImplemented
        return self._labels == other._labels

    def __hash__(self) -> int:
        return hash(self._labels)

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        inner = ", ".join(
            str(label)
            for label in sorted(self._labels, key=lambda l: l.sort_key)
        )
        return f"LabelSet({{{inner}}})"
