"""NAICSlite: the two-layer industry classification system introduced by ASdb.

NAICSlite (paper Appendix C) simplifies NAICS for Internet measurement: it
collapses NAICS' >2,000 hierarchical categories into 17 top-level ("layer 1")
categories and 95 lower-level ("layer 2") categories, while *expanding* the
NAICS information-technology category so that ISPs, hosting providers,
software companies, and other kinds of technology companies are
distinguishable.

This module defines the full taxonomy as immutable data plus lookup helpers.
Layer 1 categories carry a stable integer code (1-17) and a slug; layer 2
categories carry a dotted code ``"<l1>.<l2>"`` (e.g. ``"1.3"`` for Hosting).

Example:
    >>> from repro.taxonomy import naicslite
    >>> cit = naicslite.layer1_by_slug("computer_and_it")
    >>> cit.name
    'Computer and Information Technology'
    >>> naicslite.layer2_by_code("1.1").name
    'Internet Service Provider (ISP)'
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Layer1",
    "Layer2",
    "TAXONOMY",
    "ALL_LAYER1",
    "ALL_LAYER2",
    "NUM_LAYER1",
    "NUM_LAYER2",
    "TECH_LAYER1_SLUG",
    "layer1_by_slug",
    "layer1_by_code",
    "layer1_by_name",
    "layer2_by_code",
    "layer2_by_name",
    "is_tech",
    "sampleable_layer1",
]


@dataclass(frozen=True)
class Layer2:
    """A NAICSlite layer 2 (sub-) category.

    Attributes:
        code: Dotted code, e.g. ``"1.3"``.
        name: Human-readable category name from the paper's Appendix C.
        layer1_code: Integer code of the owning layer 1 category.
        slug: Short machine identifier, unique across the taxonomy.
    """

    code: str
    name: str
    layer1_code: int
    slug: str

    @property
    def layer1(self) -> "Layer1":
        """The owning layer 1 category."""
        return layer1_by_code(self.layer1_code)

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"{self.code} {self.name}"


@dataclass(frozen=True)
class Layer1:
    """A NAICSlite layer 1 (top-level) category.

    Attributes:
        code: Stable integer code, 1-17.
        name: Human-readable name from the paper's Appendix C.
        slug: Short machine identifier.
        layer2: The sub-categories, in Appendix C order.
        tech: Whether this category counts as "technology" in the paper's
            tech / non-tech splits (only Computer and Information Technology).
    """

    code: int
    name: str
    slug: str
    layer2: Tuple[Layer2, ...] = field(default_factory=tuple)

    @property
    def tech(self) -> bool:
        """True for the Computer and Information Technology category."""
        return self.slug == TECH_LAYER1_SLUG

    def layer2_by_slug(self, slug: str) -> Layer2:
        """Return the child layer 2 category with the given slug."""
        for sub in self.layer2:
            if sub.slug == slug:
                return sub
        raise KeyError(f"no layer2 slug {slug!r} under {self.slug}")

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"{self.code} {self.name}"


TECH_LAYER1_SLUG = "computer_and_it"

# (slug, name, [(slug, name), ...]) in Appendix C order.  Counts per layer 1
# follow the paper: 17 layer 1 categories and 95 layer 2 categories in total.
_RAW: Sequence[Tuple[str, str, Sequence[Tuple[str, str]]]] = (
    (
        "computer_and_it",
        "Computer and Information Technology",
        (
            ("isp", "Internet Service Provider (ISP)"),
            ("phone_provider", "Phone Provider"),
            ("hosting", "Hosting, Cloud Provider, Data Center, Server Colocation"),
            ("security", "Computer and Network Security"),
            ("software", "Software Development"),
            ("tech_consulting", "Technology Consulting Services"),
            ("satellite", "Satellite Communication"),
            ("search_engine", "Search Engine"),
            ("ixp", "Internet Exchange Point (IXP)"),
            ("it_other", "Other"),
        ),
    ),
    (
        "media",
        "Media, Publishing, and Broadcasting",
        (
            ("streaming", "Online Music and Video Streaming Services"),
            ("online_content", "Online Informational Content"),
            ("print_media", "Print Media (Newspapers, Magazines, Books)"),
            ("music_video_industry", "Music and Video Industry"),
            ("radio_tv", "Radio and Television Providers"),
            ("media_other", "Other"),
        ),
    ),
    (
        "finance",
        "Finance and Insurance",
        (
            ("banks", "Banks, Credit Card Companies, Mortgage Providers"),
            ("insurance", "Insurance Carriers and Agencies"),
            ("accounting", "Accountants, Tax Preparers, Payroll Services"),
            ("investment", "Investment, Portfolio Management, Pensions and Funds"),
            ("finance_other", "Other"),
        ),
    ),
    (
        "education",
        "Education and Research",
        (
            ("k12", "Elementary and Secondary Schools"),
            ("university", "Colleges, Universities, and Professional Schools"),
            (
                "other_schools",
                "Other Schools, Instruction, and Exam Preparation "
                "(Trade Schools, Art Schools, Driving Instruction, etc.)",
            ),
            ("research", "Research and Development Organizations"),
            ("edu_software", "Education Software"),
            ("education_other", "Other"),
        ),
    ),
    (
        "service",
        "Service",
        (
            ("consulting", "Law, Business, and Consulting Services"),
            (
                "repair",
                "Buildings, Repair, Maintenance (Pest Control, Landscaping, "
                "Cleaning, Locksmiths, Car Washes, etc)",
            ),
            (
                "personal_care",
                "Personal Care and Lifestyle (Barber Shops, Nail Salons, "
                "Diet Centers, Laundry, etc)",
            ),
            (
                "social_assistance",
                "Social Assistance (Temporary Shelters, Emergency Relief, "
                "Child Day Care, etc)",
            ),
            ("service_other", "Other"),
        ),
    ),
    (
        "agriculture",
        "Agriculture, Mining, and Refineries "
        "(Farming, Greenhouses, Mining, Forestry, and Animal Farming)",
        (
            ("crop_farming", "Crop Farming"),
            ("animal_farming", "Animal Production and Ranching"),
            ("greenhouses", "Greenhouses and Nurseries"),
            ("forestry", "Forestry and Logging"),
            ("mining", "Mining and Quarrying"),
            ("oil_gas", "Oil and Gas Extraction and Refineries"),
            ("agriculture_other", "Other"),
        ),
    ),
    (
        "nonprofit",
        "Community Groups and Nonprofits",
        (
            ("religious", "Churches and Religious Organizations"),
            (
                "advocacy",
                "Human Rights and Social Advocacy (Human Rights, "
                "Environment and Wildlife Conservation, Other)",
            ),
            ("nonprofit_other", "Other"),
        ),
    ),
    (
        "construction",
        "Construction and Real Estate",
        (
            ("buildings", "Buildings (Residential or Commercial)"),
            (
                "civil_engineering",
                "Civil Eng. Construction (Utility Lines, Roads and Bridges)",
            ),
            ("real_estate", "Real Estate (Residential and/or Commercial)"),
            ("construction_other", "Other"),
        ),
    ),
    (
        "entertainment",
        "Museums, Libraries, and Entertainment",
        (
            ("libraries", "Libraries and Archives"),
            ("recreation", "Recreation, Sports, and Performing Arts"),
            ("amusement", "Amusement Parks, Arcades, Fitness Centers, Other"),
            ("museums", "Museums, Historical Sites, Zoos, Nature Parks"),
            ("gambling", "Casinos and Gambling"),
            ("tours", "Tours and Sightseeing"),
            ("entertainment_other", "Other"),
        ),
    ),
    (
        "utilities",
        "Utilities (Excluding Internet Service)",
        (
            (
                "electric",
                "Electric Power Generation, Transmission, Distribution",
            ),
            ("natural_gas", "Natural Gas Distribution"),
            ("water", "Water Supply and Irrigation"),
            ("sewage", "Sewage Treatment"),
            ("steam", "Steam and Air-Conditioning Supply"),
            ("utilities_other", "Other"),
        ),
    ),
    (
        "healthcare",
        "Health Care Services",
        (
            ("hospitals", "Hospitals and Medical Centers"),
            ("medical_labs", "Medical Laboratories and Diagnostic Centers"),
            (
                "nursing",
                "Nursing, Residential Care Facilities, Assisted Living, "
                "and Home Health Care",
            ),
            ("healthcare_other", "Other"),
        ),
    ),
    (
        "travel",
        "Travel and Accommodation",
        (
            ("air_travel", "Air Travel"),
            ("rail_travel", "Railroad Travel"),
            ("water_travel", "Water Travel"),
            ("hotels", "Hotels, Motels, Inns, Other Traveler Accommodation"),
            ("rv_parks", "Recreational Vehicle Parks and Campgrounds"),
            ("boarding", "Boarding Houses, Dormitories, Workers' Camps"),
            ("food_services", "Food Services and Drinking Places"),
            ("travel_other", "Other"),
        ),
    ),
    (
        "freight",
        "Freight, Shipment, and Postal Services",
        (
            ("postal", "Postal Services and Couriers"),
            ("air_freight", "Air Transportation"),
            ("rail_freight", "Railroad Transportation"),
            ("water_freight", "Water Transportation"),
            ("trucking", "Trucking"),
            ("space", "Space, Satellites"),
            ("passenger_transit", "Passenger Transit (Car, Bus, Taxi, Subway)"),
            ("freight_other", "Other"),
        ),
    ),
    (
        "government",
        "Government and Public Administration",
        (
            (
                "military",
                "Military, Defense, National Security, and Intl. Affairs",
            ),
            ("law_enforcement", "Law Enforcement, Public Safety, and Justice"),
            (
                "agencies",
                "Government and Regulatory Agencies, Administrations, "
                "Departments, and Services",
            ),
            ("government_other", "Other"),
        ),
    ),
    (
        "retail",
        "Retail Stores, Wholesale, and E-commerce Sites",
        (
            ("grocery", "Food, Grocery, Beverages"),
            ("clothing", "Clothing, Fashion, Luggage"),
            ("retail_other", "Other"),
        ),
    ),
    (
        "manufacturing",
        "Manufacturing",
        (
            ("automotive", "Automotive and Transportation"),
            ("food_mfg", "Food, Beverage, and Tobacco"),
            ("textiles", "Clothing and Textiles"),
            ("machinery", "Machinery"),
            ("chemical", "Chemical and Pharmaceutical Manufacturing"),
            ("electronics", "Electronics and Computer Components"),
            ("manufacturing_other", "Other"),
        ),
    ),
    (
        "other",
        "Other",
        (
            ("individually_owned", "Individually Owned"),
            ("other_other", "Other"),
        ),
    ),
)


def _build_taxonomy() -> Tuple[Layer1, ...]:
    layer1s: List[Layer1] = []
    for index, (slug, name, subs) in enumerate(_RAW, start=1):
        layer2s = tuple(
            Layer2(
                code=f"{index}.{sub_index}",
                name=sub_name,
                layer1_code=index,
                slug=sub_slug,
            )
            for sub_index, (sub_slug, sub_name) in enumerate(subs, start=1)
        )
        layer1s.append(Layer1(code=index, name=name, slug=slug, layer2=layer2s))
    return tuple(layer1s)


TAXONOMY: Tuple[Layer1, ...] = _build_taxonomy()
ALL_LAYER1: Tuple[Layer1, ...] = TAXONOMY
ALL_LAYER2: Tuple[Layer2, ...] = tuple(
    sub for cat in TAXONOMY for sub in cat.layer2
)
NUM_LAYER1: int = len(ALL_LAYER1)
NUM_LAYER2: int = len(ALL_LAYER2)

_BY_L1_SLUG: Dict[str, Layer1] = {cat.slug: cat for cat in ALL_LAYER1}
_BY_L1_CODE: Dict[int, Layer1] = {cat.code: cat for cat in ALL_LAYER1}
_BY_L1_NAME: Dict[str, Layer1] = {cat.name.lower(): cat for cat in ALL_LAYER1}
_BY_L2_CODE: Dict[str, Layer2] = {sub.code: sub for sub in ALL_LAYER2}
_BY_L2_SLUG: Dict[str, Layer2] = {sub.slug: sub for sub in ALL_LAYER2}


def layer1_by_slug(slug: str) -> Layer1:
    """Return a layer 1 category by its slug (e.g. ``"finance"``)."""
    return _BY_L1_SLUG[slug]


def layer1_by_code(code: int) -> Layer1:
    """Return a layer 1 category by its integer code (1-17)."""
    return _BY_L1_CODE[code]


def layer1_by_name(name: str) -> Layer1:
    """Return a layer 1 category by its full name (case-insensitive)."""
    return _BY_L1_NAME[name.lower()]


def layer2_by_code(code: str) -> Layer2:
    """Return a layer 2 category by its dotted code (e.g. ``"1.3"``)."""
    return _BY_L2_CODE[code]


def layer2_by_name(slug: str) -> Layer2:
    """Return a layer 2 category by its slug (e.g. ``"hosting"``)."""
    return _BY_L2_SLUG[slug]


def is_tech(category: Layer1) -> bool:
    """Whether ``category`` counts as technology for tech/non-tech splits."""
    return category.tech


def sampleable_layer1(include_other: bool = False) -> Tuple[Layer1, ...]:
    """The layer 1 categories used for uniform sampling.

    The paper's Uniform Gold Standard samples across "all 16 NAICSlite Layer 1
    categories" - i.e. all categories except the residual "Other" bucket.

    Args:
        include_other: If True, include the residual "Other" category too.
    """
    if include_other:
        return ALL_LAYER1
    return tuple(cat for cat in ALL_LAYER1 if cat.slug != "other")
