"""A working subset of NAICS (North American Industry Classification System).

NAICS is the de facto U.S. federal standard for classifying industries; the
full 2017 edition defines over 2,000 hierarchical 2-6 digit codes across a
517-page manual.  ASdb's business-database sources (Dun & Bradstreet and
ZoomInfo) return NAICS codes, which ASdb translates to NAICSlite.

We implement the subset of 6-digit codes that actually occurs for AS-owning
organizations, spanning every NAICSlite category, plus the hierarchy helpers
(sector = first 2 digits, subsector = 3, industry group = 4).  Crucially we
include the codes the paper calls out as ambiguous - e.g. D&B uses 517911
("Telecommunications Resellers"), 541512 ("Computer Systems Design Services")
and 519190 ("All Other Information Services") interchangeably for both ISPs
and hosting providers - so the downstream translation layer reproduces the
real dataset's confusion.

Example:
    >>> from repro.taxonomy import naics
    >>> naics.lookup("517311").title
    'Wired Telecommunications Carriers'
    >>> naics.sector("517311")
    '51'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "NAICSCode",
    "ALL_CODES",
    "lookup",
    "exists",
    "sector",
    "subsector",
    "industry_group",
    "codes_in_sector",
    "SECTOR_TITLES",
]


@dataclass(frozen=True)
class NAICSCode:
    """A single 6-digit NAICS code.

    Attributes:
        code: The 6-digit code as a string (leading zeros preserved).
        title: The official industry title.
    """

    code: str
    title: str

    @property
    def sector(self) -> str:
        """The 2-digit sector prefix."""
        return self.code[:2]

    @property
    def subsector(self) -> str:
        """The 3-digit subsector prefix."""
        return self.code[:3]

    @property
    def industry_group(self) -> str:
        """The 4-digit industry-group prefix."""
        return self.code[:4]

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"{self.code} {self.title}"


SECTOR_TITLES: Dict[str, str] = {
    "11": "Agriculture, Forestry, Fishing and Hunting",
    "21": "Mining, Quarrying, and Oil and Gas Extraction",
    "22": "Utilities",
    "23": "Construction",
    "31": "Manufacturing",
    "32": "Manufacturing",
    "33": "Manufacturing",
    "42": "Wholesale Trade",
    "44": "Retail Trade",
    "45": "Retail Trade",
    "48": "Transportation and Warehousing",
    "49": "Transportation and Warehousing",
    "51": "Information",
    "52": "Finance and Insurance",
    "53": "Real Estate and Rental and Leasing",
    "54": "Professional, Scientific, and Technical Services",
    "55": "Management of Companies and Enterprises",
    "56": "Administrative and Support and Waste Management",
    "61": "Educational Services",
    "62": "Health Care and Social Assistance",
    "71": "Arts, Entertainment, and Recreation",
    "72": "Accommodation and Food Services",
    "81": "Other Services (except Public Administration)",
    "92": "Public Administration",
}

# The working 6-digit subset: (code, title).
_RAW_CODES: Sequence[Tuple[str, str]] = (
    # --- Information sector: the codes that matter most for ASes -----------
    ("517311", "Wired Telecommunications Carriers"),
    ("517312", "Wireless Telecommunications Carriers (except Satellite)"),
    ("517410", "Satellite Telecommunications"),
    ("517911", "Telecommunications Resellers"),
    ("517919", "All Other Telecommunications"),
    ("518210", "Data Processing, Hosting, and Related Services"),
    ("519130", "Internet Publishing and Broadcasting and Web Search Portals"),
    ("519190", "All Other Information Services"),
    ("511210", "Software Publishers"),
    ("541511", "Custom Computer Programming Services"),
    ("541512", "Computer Systems Design Services"),
    ("541513", "Computer Facilities Management Services"),
    ("541519", "Other Computer Related Services"),
    ("541690", "Other Scientific and Technical Consulting Services"),
    ("561621", "Security Systems Services (except Locksmiths)"),
    # --- Media / publishing / broadcasting ---------------------------------
    ("511110", "Newspaper Publishers"),
    ("511120", "Periodical Publishers"),
    ("511130", "Book Publishers"),
    ("512110", "Motion Picture and Video Production"),
    ("512230", "Music Publishers"),
    ("512240", "Sound Recording Studios"),
    ("515111", "Radio Networks"),
    ("515112", "Radio Stations"),
    ("515120", "Television Broadcasting"),
    ("515210", "Cable and Other Subscription Programming"),
    ("519110", "News Syndicates"),
    ("519120", "Libraries and Archives"),
    # --- Finance and insurance ----------------------------------------------
    ("522110", "Commercial Banking"),
    ("522130", "Credit Unions"),
    ("522210", "Credit Card Issuing"),
    ("522292", "Real Estate Credit"),
    ("523110", "Investment Banking and Securities Dealing"),
    ("523920", "Portfolio Management"),
    ("523930", "Investment Advice"),
    ("524113", "Direct Life Insurance Carriers"),
    ("524114", "Direct Health and Medical Insurance Carriers"),
    ("524126", "Direct Property and Casualty Insurance Carriers"),
    ("524210", "Insurance Agencies and Brokerages"),
    ("541211", "Offices of Certified Public Accountants"),
    ("541213", "Tax Preparation Services"),
    ("541214", "Payroll Services"),
    ("525110", "Pension Funds"),
    # --- Education and research ---------------------------------------------
    ("611110", "Elementary and Secondary Schools"),
    ("611210", "Junior Colleges"),
    ("611310", "Colleges, Universities, and Professional Schools"),
    ("611420", "Computer Training"),
    ("611513", "Apprenticeship Training"),
    ("611519", "Other Technical and Trade Schools"),
    ("611691", "Exam Preparation and Tutoring"),
    ("611692", "Automobile Driving Schools"),
    ("541715", "R&D in the Physical, Engineering, and Life Sciences"),
    ("541720", "R&D in the Social Sciences and Humanities"),
    # --- Service -------------------------------------------------------------
    ("541110", "Offices of Lawyers"),
    ("541611", "Administrative Management Consulting Services"),
    ("541613", "Marketing Consulting Services"),
    ("561612", "Security Guards and Patrol Services"),
    ("561710", "Exterminating and Pest Control Services"),
    ("561720", "Janitorial Services"),
    ("561730", "Landscaping Services"),
    ("811111", "General Automotive Repair"),
    ("811192", "Car Washes"),
    ("812111", "Barber Shops"),
    ("812113", "Nail Salons"),
    ("812191", "Diet and Weight Reducing Centers"),
    ("812320", "Drycleaning and Laundry Services"),
    ("624221", "Temporary Shelters"),
    ("624230", "Emergency and Other Relief Services"),
    ("624410", "Child Day Care Services"),
    # --- Agriculture, mining, refineries ------------------------------------
    ("111110", "Soybean Farming"),
    ("111419", "Other Food Crops Grown Under Cover"),
    ("111421", "Nursery and Tree Production"),
    ("112111", "Beef Cattle Ranching and Farming"),
    ("112310", "Chicken Egg Production"),
    ("113310", "Logging"),
    ("115112", "Soil Preparation, Planting, and Cultivating"),
    ("211120", "Crude Petroleum Extraction"),
    ("211130", "Natural Gas Extraction"),
    ("212221", "Gold Ore Mining"),
    ("212311", "Dimension Stone Mining and Quarrying"),
    ("324110", "Petroleum Refineries"),
    # --- Community groups and nonprofits ------------------------------------
    ("813110", "Religious Organizations"),
    ("813311", "Human Rights Organizations"),
    ("813312", "Environment, Conservation and Wildlife Organizations"),
    ("813319", "Other Social Advocacy Organizations"),
    ("813410", "Civic and Social Organizations"),
    ("813910", "Business Associations"),
    ("813990", "Other Similar Organizations"),
    # --- Construction and real estate ----------------------------------------
    ("236115", "New Single-Family Housing Construction"),
    ("236220", "Commercial and Institutional Building Construction"),
    ("237110", "Water and Sewer Line and Related Structures Construction"),
    ("237310", "Highway, Street, and Bridge Construction"),
    ("531110", "Lessors of Residential Buildings and Dwellings"),
    ("531120", "Lessors of Nonresidential Buildings"),
    ("531210", "Offices of Real Estate Agents and Brokers"),
    ("531311", "Residential Property Managers"),
    # --- Museums, libraries, entertainment -----------------------------------
    ("711211", "Sports Teams and Clubs"),
    ("711110", "Theater Companies and Dinner Theaters"),
    ("711130", "Musical Groups and Artists"),
    ("712110", "Museums"),
    ("712120", "Historical Sites"),
    ("712130", "Zoos and Botanical Gardens"),
    ("712190", "Nature Parks and Other Similar Institutions"),
    ("713110", "Amusement and Theme Parks"),
    ("713120", "Amusement Arcades"),
    ("713210", "Casinos (except Casino Hotels)"),
    ("713290", "Other Gambling Industries"),
    ("713940", "Fitness and Recreational Sports Centers"),
    ("561520", "Tour Operators"),
    ("487110", "Scenic and Sightseeing Transportation, Land"),
    # --- Utilities ------------------------------------------------------------
    ("221111", "Hydroelectric Power Generation"),
    ("221112", "Fossil Fuel Electric Power Generation"),
    ("221118", "Other Electric Power Generation"),
    ("221121", "Electric Bulk Power Transmission and Control"),
    ("221122", "Electric Power Distribution"),
    ("221210", "Natural Gas Distribution"),
    ("221310", "Water Supply and Irrigation Systems"),
    ("221320", "Sewage Treatment Facilities"),
    ("221330", "Steam and Air-Conditioning Supply"),
    # --- Health care ------------------------------------------------------------
    ("622110", "General Medical and Surgical Hospitals"),
    ("622210", "Psychiatric and Substance Abuse Hospitals"),
    ("621511", "Medical Laboratories"),
    ("621512", "Diagnostic Imaging Centers"),
    ("623110", "Nursing Care Facilities (Skilled Nursing Facilities)"),
    ("623312", "Assisted Living Facilities for the Elderly"),
    ("621610", "Home Health Care Services"),
    ("621111", "Offices of Physicians (except Mental Health Specialists)"),
    # --- Travel and accommodation -----------------------------------------------
    ("481111", "Scheduled Passenger Air Transportation"),
    ("482111", "Line-Haul Railroads"),
    ("483112", "Deep Sea Passenger Transportation"),
    ("721110", "Hotels (except Casino Hotels) and Motels"),
    ("721120", "Casino Hotels"),
    ("721211", "RV (Recreational Vehicle) Parks and Campgrounds"),
    ("721310", "Rooming and Boarding Houses, Dormitories, and Workers' Camps"),
    ("722511", "Full-Service Restaurants"),
    ("722515", "Snack and Nonalcoholic Beverage Bars"),
    ("561510", "Travel Agencies"),
    # --- Freight, shipment, postal ------------------------------------------------
    ("491110", "Postal Service"),
    ("492110", "Couriers and Express Delivery Services"),
    ("481112", "Scheduled Freight Air Transportation"),
    ("482112", "Short Line Railroads"),
    ("483111", "Deep Sea Freight Transportation"),
    ("484110", "General Freight Trucking, Local"),
    ("484121", "General Freight Trucking, Long-Distance, Truckload"),
    ("485110", "Urban Transit Systems"),
    ("485310", "Taxi Service"),
    ("488510", "Freight Transportation Arrangement"),
    ("493110", "General Warehousing and Storage"),
    ("927110", "Space Research and Technology"),
    # --- Government and public administration --------------------------------------
    ("928110", "National Security"),
    ("928120", "International Affairs"),
    ("922120", "Police Protection"),
    ("922130", "Legal Counsel and Prosecution"),
    ("922160", "Fire Protection"),
    ("921110", "Executive Offices"),
    ("921130", "Public Finance Activities"),
    ("921190", "Other General Government Support"),
    ("923110", "Administration of Education Programs"),
    ("926130", "Regulation and Administration of Communications, "
     "Electric, Gas, and Other Utilities"),
    # --- Retail, wholesale, e-commerce ------------------------------------------------
    ("445110", "Supermarkets and Other Grocery (except Convenience) Stores"),
    ("445310", "Beer, Wine, and Liquor Stores"),
    ("448110", "Men's Clothing Stores"),
    ("448120", "Women's Clothing Stores"),
    ("448320", "Luggage and Leather Goods Stores"),
    ("452210", "Department Stores"),
    ("454110", "Electronic Shopping and Mail-Order Houses"),
    ("423430", "Computer and Computer Peripheral Equipment and Software "
     "Merchant Wholesalers"),
    ("424410", "General Line Grocery Merchant Wholesalers"),
    # --- Manufacturing ---------------------------------------------------------------
    ("336111", "Automobile Manufacturing"),
    ("336411", "Aircraft Manufacturing"),
    ("311111", "Dog and Cat Food Manufacturing"),
    ("312111", "Soft Drink Manufacturing"),
    ("312230", "Tobacco Manufacturing"),
    ("313210", "Broadwoven Fabric Mills"),
    ("315220", "Men's and Boys' Cut and Sew Apparel Manufacturing"),
    ("333111", "Farm Machinery and Equipment Manufacturing"),
    ("333120", "Construction Machinery Manufacturing"),
    ("325412", "Pharmaceutical Preparation Manufacturing"),
    ("325199", "All Other Basic Organic Chemical Manufacturing"),
    ("334111", "Electronic Computer Manufacturing"),
    ("334413", "Semiconductor and Related Device Manufacturing"),
    ("334416", "Capacitor, Resistor, Coil, Transformer, and Other "
     "Inductor Manufacturing"),
    ("335911", "Storage Battery Manufacturing"),
    # --- Other -----------------------------------------------------------------------
    ("814110", "Private Households"),
    ("812990", "All Other Personal Services"),
)

ALL_CODES: Tuple[NAICSCode, ...] = tuple(
    NAICSCode(code=code, title=title) for code, title in _RAW_CODES
)
_BY_CODE: Dict[str, NAICSCode] = {entry.code: entry for entry in ALL_CODES}


def lookup(code: str) -> NAICSCode:
    """Return the :class:`NAICSCode` for a 6-digit code string.

    Raises:
        KeyError: if the code is not in the working subset.
    """
    return _BY_CODE[code]


def exists(code: str) -> bool:
    """Whether ``code`` is part of the working subset."""
    return code in _BY_CODE


def sector(code: str) -> str:
    """Return the 2-digit sector prefix of any 6-digit code string."""
    return code[:2]


def subsector(code: str) -> str:
    """Return the 3-digit subsector prefix of any 6-digit code string."""
    return code[:3]


def industry_group(code: str) -> str:
    """Return the 4-digit industry-group prefix of any 6-digit code string."""
    return code[:4]


def codes_in_sector(sector_prefix: str) -> List[NAICSCode]:
    """All subset codes whose sector matches ``sector_prefix``."""
    return [entry for entry in ALL_CODES if entry.sector == sector_prefix]
