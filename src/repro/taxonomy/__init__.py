"""Taxonomy substrate: NAICS, NAICSlite, labels, translation, keywords.

This package implements the classification frameworks at the heart of ASdb:

* :mod:`repro.taxonomy.naicslite` - the paper's 17x95 NAICSlite system
  (Appendix C);
* :mod:`repro.taxonomy.naics` - a working subset of 6-digit NAICS codes;
* :mod:`repro.taxonomy.labels` - the :class:`Label` / :class:`LabelSet`
  value types exchanged between all other components;
* :mod:`repro.taxonomy.translation` - the NAICS -> NAICSlite translation
  layer (Section 3.2);
* :mod:`repro.taxonomy.keywords` - per-category keyword profiles.
"""

from . import keywords, naics, naicslite, translation
from .labels import Label, LabelSet

__all__ = [
    "naicslite",
    "naics",
    "translation",
    "keywords",
    "Label",
    "LabelSet",
]
