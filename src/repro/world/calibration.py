"""Calibration constants: the paper's measured rates, in one place.

Every external data source is simulated with coverage and correctness rates
taken from the paper's own evaluation (Tables 3, 4, 5, 11 and Figure 2).
This module is the single source of truth for those parameters; the
simulators in :mod:`repro.datasources` consume them, and the benchmark
harness reproduces the paper's tables by re-measuring what the simulators
do - so a calibration change propagates end to end.

Correctness is modeled *structurally*, not as uniform label noise: when a
source errs it errs the way the paper observed (hosting labeled as ISP via
an ambiguous NAICS code, a bank labeled as investment, etc.), driven by the
confusion maps below.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "BusinessSourceCalibration",
    "DNB",
    "CRUNCHBASE",
    "ZOOMINFO",
    "CLEARBIT",
    "CONFUSION_L2",
    "CONFUSION_L1",
    "DNB_CONFIDENCE",
    "MATCHING",
]


@dataclass(frozen=True)
class BusinessSourceCalibration:
    """Coverage / correctness parameters for one business database.

    Rates are conditional probabilities:

    * ``coverage_*``: P(source has a classified entry | org tech-ness);
    * ``l1_recall_*``: P(emitted labels overlap truth at layer 1 | covered);
    * ``l2_recall_*``: P(emitted labels overlap truth at layer 2 | covered);
    * ``l2_overrides``: per-slug absolute layer 2 recall (hosting and ISP
      get explicit values straight from Table 4).
    * ``multi_label_rate``: P(the entry lists a second, adjacent category);
      80% of data-source matches assign only one category (Section 3.3).
    """

    name: str
    coverage_tech: float
    coverage_nontech: float
    l1_recall_tech: float
    l1_recall_nontech: float
    l2_recall_tech: float
    l2_recall_nontech: float
    l2_overrides: Mapping[str, float] = field(default_factory=dict)
    multi_label_rate: float = 0.20

    def coverage(self, tech: bool) -> float:
        """Coverage probability by tech-ness."""
        return self.coverage_tech if tech else self.coverage_nontech

    def l1_recall(self, tech: bool) -> float:
        """Layer 1 recall by tech-ness."""
        return self.l1_recall_tech if tech else self.l1_recall_nontech

    def l2_recall(self, tech: bool, slug: Optional[str] = None) -> float:
        """Layer 2 recall; per-slug overrides win."""
        if slug is not None and slug in self.l2_overrides:
            return self.l2_overrides[slug]
        return self.l2_recall_tech if tech else self.l2_recall_nontech


# Table 3 (coverage) + Table 4 (recall).  Fractions converted to
# probabilities; hosting/ISP overrides from Table 4's dedicated columns.
DNB = BusinessSourceCalibration(
    name="dnb",
    coverage_tech=0.76,       # 73/96
    coverage_nontech=0.94,    # 49/52
    l1_recall_tech=0.96,      # 70/73
    l1_recall_nontech=0.94,   # 46/49
    l2_recall_tech=0.63,      # 39/62
    l2_recall_nontech=0.86,   # 51/59
    l2_overrides={"hosting": 0.45, "isp": 0.70},
)

CRUNCHBASE = BusinessSourceCalibration(
    name="crunchbase",
    coverage_tech=0.29,       # 28/96
    coverage_nontech=0.52,    # 27/52
    l1_recall_tech=0.86,      # 24/28
    l1_recall_nontech=0.74,   # 20/27
    l2_recall_tech=0.54,      # 13/24
    l2_recall_nontech=0.93,   # 14/15
    l2_overrides={"hosting": 0.40, "isp": 0.62},
)

ZOOMINFO = BusinessSourceCalibration(
    name="zoominfo",
    coverage_tech=0.57,       # 55/96
    coverage_nontech=0.88,    # 46/52
    l1_recall_tech=0.71,      # 39/55
    l1_recall_nontech=0.70,   # 32/46
    l2_recall_tech=0.62,      # 23/37
    l2_recall_nontech=0.74,   # 34/46
    l2_overrides={"hosting": 0.63, "isp": 0.61},
)

CLEARBIT = BusinessSourceCalibration(
    name="clearbit",
    coverage_tech=0.51,       # 49/96 (Table 4 denominators)
    coverage_nontech=0.81,    # 42/52
    l1_recall_tech=0.06,      # 3/49 - Clearbit's 2-digit prefixes fail tech
    l1_recall_nontech=0.76,   # 32/42
    l2_recall_tech=0.05,      # Clearbit provides no usable layer 2 (Table 4: "-")
    l2_recall_nontech=0.05,
)

#: Layer 2 confusion: truth slug -> plausible wrong siblings (same layer 1).
#: Drawn from the paper's documented failure modes; anything absent falls
#: back to a random same-layer-1 sibling.
CONFUSION_L2: Dict[str, Tuple[str, ...]] = {
    # Hosting is chronically mislabeled as ISP (Section 3.3), but the
    # reverse is rare: an ISP's wrong second code is telecom-flavored.
    "hosting": ("isp", "software", "it_other", "tech_consulting"),
    "isp": ("phone_provider", "it_other"),
    "phone_provider": ("isp",),
    "security": ("software", "tech_consulting"),
    "software": ("tech_consulting", "it_other"),
    "banks": ("investment", "insurance"),
    "insurance": ("banks", "finance_other"),
    "investment": ("banks", "finance_other"),
    "university": ("research", "k12"),
    "research": ("university", "edu_software"),
    "hospitals": ("medical_labs", "healthcare_other"),
    "electric": ("natural_gas", "utilities_other"),
    "streaming": ("online_content", "music_video_industry"),
    "grocery": ("retail_other",),
    "trucking": ("freight_other",),
}

#: Layer 1 confusion: truth layer 1 slug -> plausible wrong layer 1 slugs.
CONFUSION_L1: Dict[str, Tuple[str, ...]] = {
    "computer_and_it": ("media", "service", "retail"),
    "media": ("computer_and_it", "entertainment"),
    "finance": ("service", "construction"),
    "education": ("nonprofit", "media", "computer_and_it"),
    "service": ("finance", "construction"),
    "utilities": ("agriculture", "government", "computer_and_it"),
    "government": ("nonprofit", "service"),
    "healthcare": ("service", "nonprofit"),
    "nonprofit": ("education", "service"),
    "entertainment": ("media", "travel"),
    "travel": ("entertainment", "freight"),
    "freight": ("travel", "retail"),
    "retail": ("manufacturing", "service"),
    "manufacturing": ("retail", "agriculture"),
    "construction": ("service", "manufacturing"),
    "agriculture": ("manufacturing", "utilities"),
    "other": ("service",),
}


@dataclass(frozen=True)
class DnbConfidenceModel:
    """D&B's 1-10 match-confidence behavior (Figure 2, Table 5).

    D&B returns a single candidate plus a confidence code.  Match accuracy
    rises with confidence: below 6 fewer than half of matches are correct;
    at or above 6 at least 80% are.  ``code_weights`` is the distribution
    of codes over queries that return anything.
    """

    code_weights: Mapping[int, float] = field(
        default_factory=lambda: {
            4: 0.06, 5: 0.08, 6: 0.12, 7: 0.18, 8: 0.26, 9: 0.20, 10: 0.10,
        }
    )
    accuracy_by_code: Mapping[int, float] = field(
        default_factory=lambda: {
            4: 0.25, 5: 0.45, 6: 0.80, 7: 0.85, 8: 0.90, 9: 0.95, 10: 0.99,
        }
    )
    #: P(D&B returns any candidate at all | queried) - Table 5 row "Conf >=1"
    #: shows 11% missing.
    response_rate: float = 0.89


DNB_CONFIDENCE = DnbConfidenceModel()


@dataclass(frozen=True)
class MatchingCalibration:
    """Entity-resolution rates (Table 5 and Section 3.5/5.1).

    Attributes:
        org_domain_in_whois: P(correct org domain appears among WHOIS abuse
            contacts) - 85% (Section 3.3 "Website Identification").
        ipinfo_match_accuracy: IPinfo row of Table 5.
        crunchbase_domain_accuracy: CB by-domain matching accuracy (100%).
        crunchbase_name_accuracy: CB tokenized-name matching accuracy (95%).
        entity_disagreement_rate: P(>=2 sources match different entities)
            when queried automatically - 14% (Section 3.5).
        email_domain_top10: Domains treated as third-party mail providers
            and removed from candidate pools (Figure 4 step 2).
        common_domain_threshold: Domains appearing in >= this many ASes are
            filtered when a rarer alternative exists (Figure 4 step 3).
    """

    org_domain_in_whois: float = 0.85
    ipinfo_match_accuracy: float = 0.86
    crunchbase_domain_accuracy: float = 1.00
    crunchbase_name_accuracy: float = 0.95
    entity_disagreement_rate: float = 0.14
    email_domain_top10: Tuple[str, ...] = (
        "gmail.com", "yahoo.com", "hotmail.com", "outlook.com", "aol.com",
        "mail.ru", "qq.com", "163.com", "protonmail.com", "icloud.com",
    )
    common_domain_threshold: int = 100


MATCHING = MatchingCalibration()

#: PeeringDB: 15% coverage overall, 22% tech / 2% non-tech (Table 3); ISPs
#: that register always self-identify correctly (100% TPR).
PEERINGDB_COVERAGE_TECH = 0.22
PEERINGDB_COVERAGE_NONTECH = 0.02

#: IPinfo: 30% coverage overall, 39% tech / 15% non-tech (Table 3).
IPINFO_COVERAGE_TECH = 0.39
IPINFO_COVERAGE_NONTECH = 0.15
#: IPinfo mislabel rate among covered entries (Table 4: 96% layer 1 recall,
#: ~81% layer 2 recall within its coarse scheme).
IPINFO_LABEL_NOISE = 0.15
