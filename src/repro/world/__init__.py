"""Synthetic world: ground-truth organizations, ASes, WHOIS, websites.

:func:`generate_world` builds the universe every other component runs
against; :mod:`repro.world.calibration` centralizes the paper-measured
rates used throughout the reproduction.
"""

from . import calibration, distributions, names
from .churn import ChurnStats, simulate_churn
from .generator import WorldConfig, generate_world
from .organization import ASInfo, Organization, World

__all__ = [
    "World",
    "Organization",
    "ASInfo",
    "WorldConfig",
    "generate_world",
    "ChurnStats",
    "simulate_churn",
    "calibration",
    "distributions",
    "names",
]
