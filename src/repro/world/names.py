"""Organization, AS, and domain name generation.

Names need enough structure for the matching subsystem to be meaningfully
exercised: organization names share tokens with AS handles and homepage
titles (so "most similar domain" selection works), legal suffixes vary, and
distinct organizations can collide on common stems (so entity resolution can
actually go wrong, as in the real D&B bulk API).
"""

from __future__ import annotations

import random
import re
from functools import lru_cache
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

__all__ = [
    "NameGenerator",
    "tokenize_name",
    "token_set",
    "as_handle_for",
    "domain_for",
]

# Category-flavored name stems: layer 2 slug -> (prefix stems, industry nouns)
_STEMS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "isp": (
        ("Fiber", "Net", "Sky", "Metro", "Rapid", "Coastal", "Summit",
         "Prairie", "Velo", "Nova"),
        ("Link", "Wave", "Connect", "Band", "Path", "Line", "Stream",
         "Bridge", "Net", "Com"),
    ),
    "hosting": (
        ("Cloud", "Host", "Data", "Stack", "Core", "Grid", "Node", "Vault",
         "Forge", "Apex"),
        ("Layer", "Works", "Center", "Box", "Point", "Hub", "Space",
         "Cluster", "Farm", "Systems"),
    ),
    "software": (
        ("Soft", "Code", "Logic", "Byte", "Pixel", "Quanta", "Flux",
         "Lambda", "Vector", "Kernel"),
        ("Labs", "Works", "Soft", "Systems", "Apps", "Forge", "Studio",
         "Dynamics", "Tech", "Solutions"),
    ),
    "banks": (
        ("First", "National", "United", "Heritage", "Sterling", "Pioneer",
         "Granite", "Liberty", "Anchor", "Crown"),
        ("Bank", "Trust", "Savings", "Financial", "Bancorp", "Credit Union",
         "Capital", "Banking Group", "Federal Bank", "Mutual"),
    ),
    "university": (
        ("Northern", "Eastern", "Western", "Central", "Pacific", "Atlantic",
         "Highland", "Riverside", "Lakeside", "Mountain"),
        ("University", "State University", "Institute of Technology",
         "College", "Polytechnic", "Technical University",
         "University College", "Academy of Sciences", "State College",
         "Institute"),
    ),
    "electric": (
        ("Valley", "Plains", "Northern", "Tri-County", "Regional", "Delta",
         "Cascade", "Lakeland", "Bayside", "Ridgeline"),
        ("Power", "Electric", "Energy", "Utilities", "Power Cooperative",
         "Electric Cooperative", "Power & Light", "Grid", "Energy Authority",
         "Electric Company"),
    ),
}

# Default stems for any category without a bespoke table.
_DEFAULT_STEMS: Tuple[Tuple[str, ...], Tuple[str, ...]] = (
    ("Global", "Prime", "Alpha", "Omega", "Blue", "Silver", "Golden",
     "Royal", "Grand", "Union", "Allied", "Crest", "True", "Bright",
     "North", "South", "East", "West", "New", "Old"),
    ("Group", "Holdings", "Partners", "Services", "Industries", "Company",
     "Enterprises", "Associates", "International", "Corporation",
     "Ventures", "Collective", "Alliance", "Works", "House", "Bros",
     "Organization", "Agency", "Bureau", "Office"),
)

_LEGAL_SUFFIXES: Tuple[str, ...] = (
    "", " Inc", " LLC", " Ltd", " GmbH", " S.A.", " Corp", " Co",
    " SRL", " Pty Ltd", " AG", " B.V.",
)

_CITIES: Tuple[Tuple[str, str], ...] = (
    ("Springfield", "US"), ("Riverton", "US"), ("Fairview", "US"),
    ("Milton", "CA"), ("Westbrook", "GB"), ("Karlsfeld", "DE"),
    ("Montclair", "FR"), ("Oakdale", "AU"), ("Lindhaven", "NL"),
    ("Porto Verde", "BR"), ("Nakashima", "JP"), ("Seong-ri", "KR"),
    ("Harborview", "ZA"), ("Altiplano", "AR"), ("Mirabad", "IN"),
    ("Kibwezi", "KE"), ("Tarnova", "PL"), ("Valmieras", "LV"),
    ("Qingyan", "CN"), ("Novaya Gavan", "RU"),
)

_TLDS_BY_COUNTRY: Dict[str, str] = {
    "US": "com", "CA": "ca", "GB": "co.uk", "DE": "de", "FR": "fr",
    "AU": "com.au", "NL": "nl", "BR": "com.br", "JP": "co.jp", "KR": "kr",
    "ZA": "co.za", "AR": "com.ar", "IN": "in", "KE": "co.ke", "PL": "pl",
    "LV": "lv", "CN": "cn", "RU": "ru",
}

_STOPWORDS = {
    "inc", "llc", "ltd", "gmbh", "sa", "corp", "co", "srl", "pty", "ag",
    "bv", "the", "of", "and", "group", "company",
}


@lru_cache(maxsize=65536)
def _tokenize_interned(name: str) -> Tuple[str, ...]:
    """Interned tokenization: the same AS/org name is tokenized once.

    The registry reuses a small set of organization names across ASes,
    WHOIS records, and homepage titles, so the matching hot path would
    otherwise re-run the regex thousands of times per pass.  Tuples are
    cached (immutable); :func:`tokenize_name` copies into a fresh list
    so callers can keep mutating their result.
    """
    tokens = re.findall(r"[a-z0-9]+", name.lower())
    return tuple(
        token
        for token in tokens
        if token not in _STOPWORDS and len(token) > 1
    )


def tokenize_name(name: str) -> List[str]:
    """Lowercase alphanumeric tokens of a name, minus legal stopwords.

    Single-letter fragments (e.g. the "s"/"a" of "S.A.") are dropped so
    legal-form punctuation doesn't manufacture distinguishing tokens.
    """
    return list(_tokenize_interned(name))


@lru_cache(maxsize=65536)
def token_set(name: str) -> FrozenSet[str]:
    """The name's token *set*, interned (== ``set(tokenize_name(name))``).

    The similarity kernels take this form: set operations need no order,
    and a shared frozenset per distinct name makes repeated Jaccard
    comparisons allocation-free.
    """
    return frozenset(_tokenize_interned(name))


def as_handle_for(name: str, rng: random.Random) -> str:
    """Derive an AS handle ("AS name") from an organization name."""
    tokens = tokenize_name(name)
    if not tokens:
        return f"AS-ORG{rng.randint(1, 999)}"
    core = "-".join(tokens[:2]).upper()
    suffix = rng.choice(("-AS", "-NET", "-BACKBONE", ""))
    return f"{core}{suffix}"


def domain_for(name: str, country: str, rng: random.Random) -> str:
    """Derive a plausible domain from an organization name and country."""
    tokens = tokenize_name(name)
    stem = "".join(tokens[:2]) or f"org{rng.randint(1, 9999)}"
    tld = _TLDS_BY_COUNTRY.get(country, "com")
    if rng.random() < 0.2:
        tld = rng.choice(("net", "org", "com"))
    return f"{stem}.{tld}"


class NameGenerator:
    """Deterministic generator of organization names, cities, handles.

    Args:
        rng: Seeded random source owned by the caller (typically the world
            generator) so the whole world derives from one seed.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._used: set = set()

    def city_and_country(self) -> Tuple[str, str]:
        """A (city, country) pair."""
        return self._rng.choice(_CITIES)

    def org_name(self, layer2_slug: str) -> str:
        """A fresh organization name flavored by its category.

        Uniqueness is enforced on the name's *token set* (legal suffixes
        stripped), not just the literal string - otherwise "Acme Inc" and
        "Acme LLC" would be distinct organizations that every name-keyed
        lookup conflates.
        """
        prefixes, nouns = _STEMS.get(layer2_slug, _DEFAULT_STEMS)
        for attempt in range(96):
            prefix = self._rng.choice(prefixes)
            noun = self._rng.choice(nouns)
            suffix = self._rng.choice(_LEGAL_SUFFIXES)
            joiner = "" if self._rng.random() < 0.4 else " "
            name = f"{prefix}{joiner}{noun}{suffix}"
            if attempt >= 32:
                # Stems exhausted: disambiguate with a city-like token.
                city = self._rng.choice(_CITIES)[0].split()[0]
                name = f"{prefix}{joiner}{noun} {city}{suffix}"
            key = frozenset(tokenize_name(name))
            if key and key not in self._used:
                self._used.add(key)
                return name
        # Last resort: a numbered name (the number is a fresh token).
        for _ in range(1000):
            name = (
                f"{self._rng.choice(prefixes)} {self._rng.choice(nouns)} "
                f"{self._rng.randint(2, 99999)}"
            )
            key = frozenset(tokenize_name(name))
            if key not in self._used:
                self._used.add(key)
                return name
        raise RuntimeError("name space exhausted")

    def phone(self, country: str) -> str:
        """A phone number with a country-dependent prefix."""
        prefix = {"US": "+1", "CA": "+1", "GB": "+44", "DE": "+49",
                  "FR": "+33", "AU": "+61", "NL": "+31", "BR": "+55",
                  "JP": "+81", "KR": "+82", "ZA": "+27", "AR": "+54",
                  "IN": "+91", "KE": "+254", "PL": "+48", "LV": "+371",
                  "CN": "+86", "RU": "+7"}.get(country, "+1")
        return f"{prefix}-555-{self._rng.randint(0, 9999):04d}"

    def street_address(self, city: str) -> str:
        """A street address line ending in the city."""
        number = self._rng.randint(1, 9900)
        street = self._rng.choice(
            ("Main Street", "Oak Avenue", "Harbor Road", "Industrial Way",
             "Station Road", "High Street", "Park Boulevard", "Mill Lane",
             "Commerce Drive", "Center Plaza")
        )
        return f"{number} {street}, {city}"
