"""Category and attribute distributions for the synthetic AS population.

Calibrated to the paper's measurements:

* ~64% of ASes belong to technology organizations (Section 3.3), dominated
  by ISPs (Gold Standard: 66/150) and hosting providers (13/150);
* education and finance are the largest non-technology categories;
* some technology companies are multi-service ("ISP, Hosting, Cell" -
  Section 3.4's nuanced-disagreement discussion);
* 17% of hosting providers have no domain (Section 5.2);
* field availability in WHOIS follows Section 3.1 / Appendix A.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "LAYER2_WEIGHTS",
    "sample_layer2",
    "MULTI_SERVICE_PARTNERS",
    "FIELD_AVAILABILITY",
    "RIR_WEIGHTS",
]

# Layer 2 slug -> sampling weight (normalized at load).  Tech sums to ~0.64.
LAYER2_WEIGHTS: Dict[str, float] = {
    # --- technology (0.64) --------------------------------------------------
    "isp": 0.400,
    "hosting": 0.085,
    "phone_provider": 0.030,
    "software": 0.045,
    "tech_consulting": 0.030,
    "security": 0.012,
    "satellite": 0.006,
    "search_engine": 0.003,
    "ixp": 0.009,
    "it_other": 0.020,
    # --- education and research (0.085) --------------------------------------
    "university": 0.045,
    "k12": 0.012,
    "other_schools": 0.005,
    "research": 0.018,
    "edu_software": 0.003,
    "education_other": 0.002,
    # --- finance (0.040) -------------------------------------------------------
    "banks": 0.020,
    "insurance": 0.010,
    "accounting": 0.003,
    "investment": 0.006,
    "finance_other": 0.001,
    # --- government (0.025) ------------------------------------------------------
    "military": 0.004,
    "law_enforcement": 0.004,
    "agencies": 0.016,
    "government_other": 0.001,
    # --- media (0.020) ---------------------------------------------------------------
    "streaming": 0.003,
    "online_content": 0.006,
    "print_media": 0.004,
    "music_video_industry": 0.003,
    "radio_tv": 0.003,
    "media_other": 0.001,
    # --- manufacturing (0.022) -----------------------------------------------------------
    "automotive": 0.004,
    "food_mfg": 0.003,
    "textiles": 0.002,
    "machinery": 0.004,
    "chemical": 0.004,
    "electronics": 0.004,
    "manufacturing_other": 0.001,
    # --- healthcare (0.016) -----------------------------------------------------------------
    "hospitals": 0.008,
    "medical_labs": 0.003,
    "nursing": 0.003,
    "healthcare_other": 0.002,
    # --- service (0.030) -----------------------------------------------------------------------
    "consulting": 0.015,
    "repair": 0.005,
    "personal_care": 0.003,
    "social_assistance": 0.004,
    "service_other": 0.003,
    # --- retail (0.020) --------------------------------------------------------------------------
    "grocery": 0.005,
    "clothing": 0.004,
    "retail_other": 0.011,
    # --- utilities (0.012) ------------------------------------------------------------------------
    "electric": 0.007,
    "natural_gas": 0.002,
    "water": 0.002,
    "sewage": 0.0005,
    "steam": 0.0002,
    "utilities_other": 0.0003,
    # --- construction (0.014) ----------------------------------------------------------------------
    "buildings": 0.004,
    "civil_engineering": 0.003,
    "real_estate": 0.006,
    "construction_other": 0.001,
    # --- travel (0.012) ----------------------------------------------------------------------------
    "air_travel": 0.002,
    "rail_travel": 0.001,
    "water_travel": 0.001,
    "hotels": 0.004,
    "rv_parks": 0.0005,
    "boarding": 0.0005,
    "food_services": 0.002,
    "travel_other": 0.001,
    # --- freight (0.012) ----------------------------------------------------------------------------
    "postal": 0.002,
    "air_freight": 0.001,
    "rail_freight": 0.001,
    "water_freight": 0.002,
    "trucking": 0.003,
    "space": 0.0005,
    "passenger_transit": 0.0015,
    "freight_other": 0.001,
    # --- nonprofit (0.014) ----------------------------------------------------------------------------
    "religious": 0.004,
    "advocacy": 0.005,
    "nonprofit_other": 0.005,
    # --- entertainment (0.010) --------------------------------------------------------------------------
    "libraries": 0.002,
    "recreation": 0.002,
    "amusement": 0.001,
    "museums": 0.002,
    "gambling": 0.001,
    "tours": 0.001,
    "entertainment_other": 0.001,
    # --- agriculture (0.006) ----------------------------------------------------------------------------
    "crop_farming": 0.001,
    "animal_farming": 0.001,
    "greenhouses": 0.0005,
    "forestry": 0.0005,
    "mining": 0.001,
    "oil_gas": 0.0015,
    "agriculture_other": 0.0005,
    # --- other (0.004) -----------------------------------------------------------------------------------
    "individually_owned": 0.003,
    "other_other": 0.001,
}

_SLUGS: Tuple[str, ...] = tuple(LAYER2_WEIGHTS)
_TOTAL = sum(LAYER2_WEIGHTS.values())
_CUMULATIVE: List[float] = []
_acc = 0.0
for _slug in _SLUGS:
    _acc += LAYER2_WEIGHTS[_slug] / _TOTAL
    _CUMULATIVE.append(_acc)


def sample_layer2(rng: random.Random) -> str:
    """Sample a layer 2 slug from the AS-population distribution."""
    roll = rng.random()
    for slug, edge in zip(_SLUGS, _CUMULATIVE):
        if roll <= edge:
            return slug
    return _SLUGS[-1]


#: Multi-service technology companies: primary slug -> possible secondary
#: service slugs (Section 3.4: "technology companies offer multiple
#: services (e.g., ISP, Hosting, Cell)").
MULTI_SERVICE_PARTNERS: Dict[str, Tuple[str, ...]] = {
    "isp": ("hosting", "phone_provider"),
    "hosting": ("isp", "software"),
    "phone_provider": ("isp",),
    "edu_software": ("software",),
    "streaming": ("online_content",),
}

#: Probability a tech org with a partner entry is multi-service.
MULTI_SERVICE_PROBABILITY = 0.12

#: WHOIS field availability (Section 3.1 / Appendix A).
FIELD_AVAILABILITY: Dict[str, float] = {
    "org_name": 0.8019,
    "description": 0.2481,
    "address": 0.617,
    "phone": 0.45,
    "country": 0.997,
    "domain_in_whois": 0.871,  # some kind of domain present
}

#: RIR market shares for new registrations (approximate real-world split).
RIR_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("ripe", 0.35),
    ("arin", 0.25),
    ("apnic", 0.20),
    ("lacnic", 0.12),
    ("afrinic", 0.08),
)

#: Fraction of hosting providers with no domain at all (Section 5.2: "17%
#: of all hosting providers do not have domains").
HOSTING_NO_DOMAIN = 0.17

#: Fraction of non-hosting orgs with no domain.
DEFAULT_NO_DOMAIN = 0.06

#: Fraction of orgs whose contact emails use a third-party mail provider
#: (gmail-like) *in addition to* or instead of their own domain.
THIRD_PARTY_EMAIL = 0.25

#: Website failure-mode rates (Section 4.1 / Appendix B).
SITE_NON_ENGLISH = 0.49
SITE_UNINFORMATIVE = 0.04
SITE_TEXT_IN_IMAGES = 0.03
SITE_HIDDEN_INFO = 0.06
SITE_MISLEADING = 0.02
SITE_DOWN = 0.04

#: Startup probability by tech-ness (Crunchbase coverage skew).
STARTUP_PROBABILITY_TECH = 0.30
STARTUP_PROBABILITY_NONTECH = 0.10

#: Content identity swaps: some organizations' websites read as a
#: *different* category entirely - many hosting providers market
#: themselves as ISPs / connectivity companies.  This irreducible overlap
#: is what caps the hosting classifier's AUC at ~.80 (Table 6) where the
#: ISP classifier reaches ~.94.
SITE_CONTENT_SWAP: Dict[str, Tuple[str, float]] = {
    "hosting": ("it_other", 0.30),
    "isp": ("hosting", 0.02),
}
