"""Registry churn simulation (Section 5.3).

Between October 2020 and February 2021 the paper measured an average of 21
new ASes per day belonging to ~19 new organizations, and 4% of all
registered ASes changing ownership metadata during the period, implying
~140 updates per week at Internet scale.

:func:`simulate_churn` applies those *rates* to a synthetic world, scaled
to its size, so the maintenance bench can measure the same quantities
(ASes/day, orgs/day, metadata-churn fraction) from simulated history.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..whois.render import render
from . import names
from .generator import _choose_rir, _sample_truth, _whois_facts
from .organization import ASInfo, Organization, World

__all__ = ["ChurnStats", "simulate_churn"]

#: Internet-scale daily registration rate per registered AS (21 new ASes a
#: day against ~100K registered ASes).
NEW_AS_RATE_PER_DAY = 21.0 / 100_000.0

#: New organizations per new AS (19 orgs per 21 ASes).
NEW_ORG_PER_NEW_AS = 19.0 / 21.0

#: Fraction of ASes whose ownership metadata changes over the measurement
#: window (~135 days).
METADATA_CHURN = 0.04
CHURN_WINDOW_DAYS = 135


@dataclass(frozen=True)
class ChurnStats:
    """What a churn simulation did to the registry.

    Attributes:
        days: Simulated days.
        new_asns: ASNs registered during the simulation.
        updated_asns: Existing ASNs whose metadata changed.
        new_orgs: Organizations created.
    """

    days: int
    new_asns: Tuple[int, ...]
    updated_asns: Tuple[int, ...]
    new_orgs: int

    @property
    def ases_per_day(self) -> float:
        """New-AS registration rate."""
        return len(self.new_asns) / self.days if self.days else 0.0

    @property
    def orgs_per_day(self) -> float:
        """New-organization rate."""
        return self.new_orgs / self.days if self.days else 0.0

    @property
    def changed_asns(self) -> Tuple[int, ...]:
        """Every ASN the simulation touched, ascending — the exact set
        a bounded maintenance sweep over the window must reclassify."""
        return tuple(sorted(set(self.new_asns) | set(self.updated_asns)))


def simulate_churn(
    world: World, days: int, seed: int = 0, start_day: int = 1
) -> ChurnStats:
    """Apply ``days`` of scaled registration + metadata churn to a world.

    New organizations get full WHOIS records (and occasionally share an
    org with an existing AS); a scaled fraction of existing ASes have
    their records re-rendered with updated ownership metadata.
    """
    rng = random.Random(("churn", seed).__repr__())
    namegen = names.NameGenerator(rng)
    base_asns = list(world.asns())
    n_base = len(base_asns)
    next_asn = max(base_asns) + 100 if base_asns else 70000

    expected_new = NEW_AS_RATE_PER_DAY * n_base * days
    new_asns: List[int] = []
    new_orgs = 0
    org_counter = len(world.organizations)
    day = start_day
    accumulator = 0.0
    per_day = expected_new / days if days else 0.0
    for offset in range(days):
        day = start_day + offset
        accumulator += per_day
        while accumulator >= 1.0:
            accumulator -= 1.0
            if rng.random() < NEW_ORG_PER_NEW_AS or not base_asns:
                truth = _sample_truth(rng)
                primary = sorted(truth.layer2_slugs())[0]
                name = namegen.org_name(primary)
                city, country = namegen.city_and_country()
                org = Organization(
                    org_id=f"org-churn-{org_counter:05d}",
                    name=name,
                    truth=truth,
                    country=country,
                    city=city,
                    address=namegen.street_address(city),
                    phone=namegen.phone(country),
                    domain=names.domain_for(name, country, rng),
                )
                world.add_organization(org)
                org_counter += 1
                new_orgs += 1
            else:
                # A new AS for an existing organization.
                existing_asn = rng.choice(base_asns)
                org = world.org_of_asn(existing_asn)
            asn = next_asn
            next_asn += rng.randint(1, 3)
            rir = _choose_rir(rng)
            as_name = names.as_handle_for(org.name, rng)
            facts = _whois_facts(rng, org, asn, as_name, rir, ())
            world.registry.register(render(facts, rir), day=day)
            world.add_as(
                ASInfo(asn=asn, org_id=org.org_id, rir=rir,
                       as_name=as_name)
            )
            new_asns.append(asn)

    # Metadata churn over the window, scaled to the simulated days.
    # Updates are dated across the window (not piled on its last day)
    # so bounded sweep windows see a realistic change distribution.
    churn_fraction = METADATA_CHURN * days / CHURN_WINDOW_DAYS
    n_updates = round(churn_fraction * n_base)
    updated = rng.sample(base_asns, min(n_updates, n_base))
    for asn in updated:
        info = world.ases[asn]
        org = world.org_of_asn(asn)
        facts = _whois_facts(rng, org, asn, info.as_name, info.rir, ())
        update_day = start_day + rng.randrange(days) if days else start_day
        world.registry.update(render(facts, info.rir), day=update_day)

    return ChurnStats(
        days=days,
        new_asns=tuple(new_asns),
        updated_asns=tuple(sorted(updated)),
        new_orgs=new_orgs,
    )
