"""Synthetic world generation.

:func:`generate_world` builds a complete, internally consistent universe
from one seed: organizations with ground-truth categories, their ASes with
raw per-RIR WHOIS records (honoring the paper's field-availability rates),
and their websites (honoring the paper's failure-mode rates).  External
data-source simulators are then constructed over the same world, so every
component observes one consistent reality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..taxonomy import Label, LabelSet
from ..web import SiteTraits, by_code, generate_site
from ..web.language import LANGUAGES
from ..whois.records import RIR
from ..whois.render import WhoisFacts, render
from . import calibration, distributions, names
from .organization import ASInfo, Organization, World

__all__ = [
    "WorldConfig",
    "generate_world",
    "iter_world_shards",
    "iter_record_shards",
]

_NON_ENGLISH = [lang for lang in LANGUAGES if not lang.is_english]

#: Misleading-keyword injections: truth slug -> off-category words its
#: websites sometimes feature (the meteorology-institute "clouds" case).
_MISLEADING: Dict[str, Tuple[str, ...]] = {
    "research": ("cloud", "computing", "performance", "data"),
    "university": ("network", "computing", "internet"),
    "electric": ("network", "coverage", "connect"),
    "libraries": ("online", "digital", "internet"),
}


@dataclass(frozen=True)
class WorldConfig:
    """Knobs for world generation.

    Attributes:
        n_orgs: Number of organizations to generate.
        seed: Master seed; every world attribute derives from it.
        first_asn: Lowest ASN to assign.
        multi_as_probability: P(an org owns more than one AS).
        big_provider_count: Number of early ISPs whose domains leak into
            other orgs' WHOIS records (exercises common-domain filtering).
        first_org_index: Index of the first generated organization
            (org ids are ``org-{index:05d}``).  Sharded generation
            offsets this per shard so ids stay globally unique; the
            default 0 leaves single-world generation byte-identical.
    """

    n_orgs: int = 500
    seed: int = 20211102  # IMC'21 dates
    first_asn: int = 64512
    multi_as_probability: float = 0.10
    big_provider_count: int = 5
    first_org_index: int = 0


def _sample_truth(rng: random.Random) -> LabelSet:
    primary = distributions.sample_layer2(rng)
    slugs = {primary}
    partners = distributions.MULTI_SERVICE_PARTNERS.get(primary)
    if partners and rng.random() < distributions.MULTI_SERVICE_PROBABILITY:
        slugs.add(rng.choice(partners))
    return LabelSet.from_layer2_slugs(slugs)


def _site_traits(rng: random.Random, primary: str) -> SiteTraits:
    language = by_code("en")
    if rng.random() < distributions.SITE_NON_ENGLISH:
        language = rng.choice(_NON_ENGLISH)
    misleading: Tuple[str, ...] = ()
    if primary in _MISLEADING and rng.random() < 0.25:
        misleading = _MISLEADING[primary]
    elif rng.random() < distributions.SITE_MISLEADING:
        misleading = ("cloud", "network", "computing")
    return SiteTraits(
        language=language,
        uninformative=rng.random() < distributions.SITE_UNINFORMATIVE,
        text_in_images=rng.random() < distributions.SITE_TEXT_IN_IMAGES,
        hidden_info=rng.random() < distributions.SITE_HIDDEN_INFO,
        misleading_keywords=misleading,
    )


def _choose_rir(rng: random.Random) -> RIR:
    roll = rng.random()
    acc = 0.0
    for code, weight in distributions.RIR_WEIGHTS:
        acc += weight
        if roll <= acc:
            return RIR(code)
    return RIR.RIPE


def _whois_facts(
    rng: random.Random,
    org: Organization,
    asn: int,
    as_name: str,
    rir: RIR,
    leaked_domains: Tuple[str, ...],
) -> WhoisFacts:
    availability = distributions.FIELD_AVAILABILITY
    org_name = org.name if rng.random() < availability["org_name"] else None
    description = None
    if rng.random() < availability["description"]:
        description = f"{org.name} - {org.city}"
    address_lines: Tuple[str, ...] = ()
    if rir is RIR.ARIN or rng.random() < availability["address"]:
        address_lines = (org.address,)
    country = org.country if rng.random() < availability["country"] else None

    emails: List[str] = []
    remark_urls: List[str] = []
    if rir.provides_emails:
        handles = ("abuse", "noc", "admin", "info")
        pool = list(org.email_domains)
        # The correct org domain is present among abuse contacts for 85% of
        # ASes (Section 3.3) when the org has one at all.
        if org.domain and org.domain in pool:
            if rng.random() >= calibration.MATCHING.org_domain_in_whois:
                pool = [d for d in pool if d != org.domain]
        for domain in pool:
            emails.append(f"{rng.choice(handles)}@{domain}")
        for leaked in leaked_domains:
            emails.append(f"{rng.choice(handles)}@{leaked}")
        if org.domain and rng.random() < 0.25:
            remark_urls.append(f"http://www.{org.domain}")
    return WhoisFacts(
        asn=asn,
        as_name=as_name,
        org_name=org_name,
        description=description,
        address_lines=address_lines,
        city=org.city,
        country=country,
        phone=org.phone,  # rendered only by APNIC/ARIN
        emails=tuple(emails),
        remark_urls=tuple(remark_urls),
        obfuscate_address=(rir is RIR.AFRINIC and rng.random() < 0.92),
    )


def generate_world(config: WorldConfig = WorldConfig()) -> World:
    """Generate a complete synthetic world from ``config.seed``."""
    rng = random.Random(config.seed)
    namegen = names.NameGenerator(rng)
    world = World()
    next_asn = config.first_asn
    big_provider_domains: List[str] = []
    used_domains: set = set()

    for index in range(config.n_orgs):
        org_id = f"org-{config.first_org_index + index:05d}"
        truth = _sample_truth(rng)
        primary = sorted(truth.layer2_slugs())[0]
        name = namegen.org_name(primary)
        city, country = namegen.city_and_country()
        is_tech = truth.is_tech

        # Domain presence: hosting providers lack domains more often.
        no_domain_rate = (
            distributions.HOSTING_NO_DOMAIN
            if "hosting" in truth.layer2_slugs()
            else distributions.DEFAULT_NO_DOMAIN
        )
        domain: Optional[str] = None
        if rng.random() >= no_domain_rate:
            domain = names.domain_for(name, country, rng)
            while domain in used_domains:
                stem, _, tld = domain.partition(".")
                domain = f"{stem}{rng.randint(2, 99)}.{tld}"
            used_domains.add(domain)

        email_domains: List[str] = []
        if domain:
            email_domains.append(domain)
        if rng.random() < distributions.THIRD_PARTY_EMAIL or not domain:
            email_domains.append(
                rng.choice(calibration.MATCHING.email_domain_top10)
            )

        startup_p = (
            distributions.STARTUP_PROBABILITY_TECH
            if is_tech
            else distributions.STARTUP_PROBABILITY_NONTECH
        )
        org = Organization(
            org_id=org_id,
            name=name,
            truth=truth,
            country=country,
            city=city,
            address=namegen.street_address(city),
            phone=namegen.phone(country),
            domain=domain,
            email_domains=tuple(email_domains),
            has_website=bool(domain)
            and rng.random() >= distributions.SITE_DOWN,
            is_startup=rng.random() < startup_p,
            employees=max(1, int(rng.lognormvariate(3.5, 1.5))),
            founded_year=rng.randint(1950, 2020),
        )
        world.add_organization(org)

        # Website.  A fraction of sites read as an adjacent category
        # (hosting providers marketing themselves as ISPs).
        if org.domain:
            if org.has_website:
                content_slug = primary
                swap = distributions.SITE_CONTENT_SWAP.get(primary)
                if swap is not None and rng.random() < swap[1]:
                    content_slug = swap[0]
                site = generate_site(
                    rng,
                    org.name,
                    org.domain,
                    content_slug,
                    _site_traits(rng, primary),
                )
                world.web.add(site)
            else:
                world.web.mark_down(org.domain)

        # Track a few early big ISPs whose domains leak into customers'
        # WHOIS records (they appear in >= 100 ASes in the full world).
        if (
            "isp" in truth.layer2_slugs()
            and org.domain
            and len(big_provider_domains) < config.big_provider_count
        ):
            big_provider_domains.append(org.domain)

        # ASes.
        n_ases = 1
        while (
            rng.random() < config.multi_as_probability and n_ases < 6
        ):
            n_ases += 1
        for _ in range(n_ases):
            asn = next_asn
            next_asn += rng.randint(1, 3)
            rir = _choose_rir(rng)
            as_name = names.as_handle_for(name, rng)
            leaked: Tuple[str, ...] = ()
            if big_provider_domains and rng.random() < 0.28:
                # Upstream-provider domains leak into customer WHOIS
                # records (NOC/abuse contacts at the transit provider);
                # they are exactly what domain-selection must filter out.
                leaked = (rng.choice(big_provider_domains),)
            facts = _whois_facts(rng, org, asn, as_name, rir, leaked)
            world.registry.register(render(facts, rir))
            world.add_as(
                ASInfo(asn=asn, org_id=org_id, rir=rir, as_name=as_name)
            )

    return world


#: Worst-case ASN consumption per organization: up to 6 ASes, each
#: advancing the allocator by up to 3, rounded up — sized so sharded
#: ASN bands can never overlap.
_ASN_STRIDE_PER_ORG = 20


def _shard_seed(seed: int, shard_index: int) -> int:
    """Derived per-shard seed: deterministic, hash-randomization-free."""
    return (seed * 1_000_003 + shard_index * 2_654_435_761) % (2 ** 63)


def iter_world_shards(
    config: WorldConfig = WorldConfig(),
    shard_orgs: int = 200,
):
    """Generate ``config.n_orgs`` organizations as a stream of
    independent :class:`World` shards of ``shard_orgs`` orgs each.

    Tests and benchmarks that need 1M+ synthetic ASes iterate the
    shards, classify (or load) each, and drop it — only one shard is
    ever resident.  Each shard is a complete world drawn from a seed
    derived from ``(config.seed, shard_index)``, with disjoint ASN
    bands (stride ``shard_orgs * 20`` covers the worst-case per-org
    allocation) and globally unique org ids via ``first_org_index``.

    Shards are *not* a partition of ``generate_world(config)`` — each
    has its own RNG stream — but the whole sequence is deterministic
    in ``(config, shard_orgs)``.
    """
    if shard_orgs < 1:
        raise ValueError(f"shard_orgs must be >= 1, got {shard_orgs}")
    produced = 0
    shard_index = 0
    while produced < config.n_orgs:
        count = min(shard_orgs, config.n_orgs - produced)
        yield generate_world(
            WorldConfig(
                n_orgs=count,
                seed=_shard_seed(config.seed, shard_index),
                first_asn=(
                    config.first_asn
                    + shard_index * shard_orgs * _ASN_STRIDE_PER_ORG
                ),
                multi_as_probability=config.multi_as_probability,
                big_provider_count=config.big_provider_count,
                first_org_index=config.first_org_index + produced,
            )
        )
        produced += count
        shard_index += 1


def iter_record_shards(
    n_records: int,
    seed: int = 20211102,
    shard_size: int = 10_000,
    first_asn: int = 64512,
):
    """Synthetic *dataset records* in ASN-ascending shards, fast.

    The store-level counterpart of :func:`iter_world_shards`: where
    that streams full worlds to classify, this streams ready-made
    :class:`~repro.core.database.ASdbRecord` lists cheap enough to
    exercise a dataset store at millions of records — the 1M-AS
    streaming-sweep benchmark feeds on these.  Deterministic in
    ``(n_records, seed, shard_size, first_asn)``; ASNs strictly
    ascend across shards and label/stage/source mixes rotate through
    the taxonomy so exports and index queries see realistic variety.
    """
    if n_records < 0:
        raise ValueError(f"n_records must be >= 0, got {n_records}")
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    # Imported here: the world package is imported by core.cache, so a
    # module-level core import would be cyclic.
    from ..core.database import ASdbRecord
    from ..core.stages import Stage

    slugs = tuple(distributions.LAYER2_WEIGHTS)
    stages = tuple(Stage)
    rotation = random.Random(seed).randrange(1_000_000)
    source_mixes = (("whois",), ("whois", "website"), ("website",))
    produced = 0
    asn = first_asn
    while produced < n_records:
        count = min(shard_size, n_records - produced)
        shard = []
        for offset in range(count):
            index = produced + offset
            turn = index + rotation
            labels = [Label.from_layer2(slugs[turn % len(slugs)])]
            if turn % 7 == 0:
                labels.append(
                    Label.from_layer2(slugs[(turn // 7) % len(slugs)])
                )
            shard.append(
                ASdbRecord(
                    asn=asn,
                    labels=LabelSet(labels),
                    stage=stages[turn % len(stages)],
                    domain=f"org-{index}.example",
                    sources=source_mixes[turn % len(source_mixes)],
                    org_key=f"org::synthetic-{index}",
                )
            )
            asn += 1 + (turn % 2)
        produced += count
        yield shard
