"""Synthetic world generation.

:func:`generate_world` builds a complete, internally consistent universe
from one seed: organizations with ground-truth categories, their ASes with
raw per-RIR WHOIS records (honoring the paper's field-availability rates),
and their websites (honoring the paper's failure-mode rates).  External
data-source simulators are then constructed over the same world, so every
component observes one consistent reality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..taxonomy import Label, LabelSet
from ..web import SiteTraits, by_code, generate_site
from ..web.language import LANGUAGES
from ..whois.records import RIR
from ..whois.render import WhoisFacts, render
from . import calibration, distributions, names
from .organization import ASInfo, Organization, World

__all__ = ["WorldConfig", "generate_world"]

_NON_ENGLISH = [lang for lang in LANGUAGES if not lang.is_english]

#: Misleading-keyword injections: truth slug -> off-category words its
#: websites sometimes feature (the meteorology-institute "clouds" case).
_MISLEADING: Dict[str, Tuple[str, ...]] = {
    "research": ("cloud", "computing", "performance", "data"),
    "university": ("network", "computing", "internet"),
    "electric": ("network", "coverage", "connect"),
    "libraries": ("online", "digital", "internet"),
}


@dataclass(frozen=True)
class WorldConfig:
    """Knobs for world generation.

    Attributes:
        n_orgs: Number of organizations to generate.
        seed: Master seed; every world attribute derives from it.
        first_asn: Lowest ASN to assign.
        multi_as_probability: P(an org owns more than one AS).
        big_provider_count: Number of early ISPs whose domains leak into
            other orgs' WHOIS records (exercises common-domain filtering).
    """

    n_orgs: int = 500
    seed: int = 20211102  # IMC'21 dates
    first_asn: int = 64512
    multi_as_probability: float = 0.10
    big_provider_count: int = 5


def _sample_truth(rng: random.Random) -> LabelSet:
    primary = distributions.sample_layer2(rng)
    slugs = {primary}
    partners = distributions.MULTI_SERVICE_PARTNERS.get(primary)
    if partners and rng.random() < distributions.MULTI_SERVICE_PROBABILITY:
        slugs.add(rng.choice(partners))
    return LabelSet.from_layer2_slugs(slugs)


def _site_traits(rng: random.Random, primary: str) -> SiteTraits:
    language = by_code("en")
    if rng.random() < distributions.SITE_NON_ENGLISH:
        language = rng.choice(_NON_ENGLISH)
    misleading: Tuple[str, ...] = ()
    if primary in _MISLEADING and rng.random() < 0.25:
        misleading = _MISLEADING[primary]
    elif rng.random() < distributions.SITE_MISLEADING:
        misleading = ("cloud", "network", "computing")
    return SiteTraits(
        language=language,
        uninformative=rng.random() < distributions.SITE_UNINFORMATIVE,
        text_in_images=rng.random() < distributions.SITE_TEXT_IN_IMAGES,
        hidden_info=rng.random() < distributions.SITE_HIDDEN_INFO,
        misleading_keywords=misleading,
    )


def _choose_rir(rng: random.Random) -> RIR:
    roll = rng.random()
    acc = 0.0
    for code, weight in distributions.RIR_WEIGHTS:
        acc += weight
        if roll <= acc:
            return RIR(code)
    return RIR.RIPE


def _whois_facts(
    rng: random.Random,
    org: Organization,
    asn: int,
    as_name: str,
    rir: RIR,
    leaked_domains: Tuple[str, ...],
) -> WhoisFacts:
    availability = distributions.FIELD_AVAILABILITY
    org_name = org.name if rng.random() < availability["org_name"] else None
    description = None
    if rng.random() < availability["description"]:
        description = f"{org.name} - {org.city}"
    address_lines: Tuple[str, ...] = ()
    if rir is RIR.ARIN or rng.random() < availability["address"]:
        address_lines = (org.address,)
    country = org.country if rng.random() < availability["country"] else None

    emails: List[str] = []
    remark_urls: List[str] = []
    if rir.provides_emails:
        handles = ("abuse", "noc", "admin", "info")
        pool = list(org.email_domains)
        # The correct org domain is present among abuse contacts for 85% of
        # ASes (Section 3.3) when the org has one at all.
        if org.domain and org.domain in pool:
            if rng.random() >= calibration.MATCHING.org_domain_in_whois:
                pool = [d for d in pool if d != org.domain]
        for domain in pool:
            emails.append(f"{rng.choice(handles)}@{domain}")
        for leaked in leaked_domains:
            emails.append(f"{rng.choice(handles)}@{leaked}")
        if org.domain and rng.random() < 0.25:
            remark_urls.append(f"http://www.{org.domain}")
    return WhoisFacts(
        asn=asn,
        as_name=as_name,
        org_name=org_name,
        description=description,
        address_lines=address_lines,
        city=org.city,
        country=country,
        phone=org.phone,  # rendered only by APNIC/ARIN
        emails=tuple(emails),
        remark_urls=tuple(remark_urls),
        obfuscate_address=(rir is RIR.AFRINIC and rng.random() < 0.92),
    )


def generate_world(config: WorldConfig = WorldConfig()) -> World:
    """Generate a complete synthetic world from ``config.seed``."""
    rng = random.Random(config.seed)
    namegen = names.NameGenerator(rng)
    world = World()
    next_asn = config.first_asn
    big_provider_domains: List[str] = []
    used_domains: set = set()

    for index in range(config.n_orgs):
        org_id = f"org-{index:05d}"
        truth = _sample_truth(rng)
        primary = sorted(truth.layer2_slugs())[0]
        name = namegen.org_name(primary)
        city, country = namegen.city_and_country()
        is_tech = truth.is_tech

        # Domain presence: hosting providers lack domains more often.
        no_domain_rate = (
            distributions.HOSTING_NO_DOMAIN
            if "hosting" in truth.layer2_slugs()
            else distributions.DEFAULT_NO_DOMAIN
        )
        domain: Optional[str] = None
        if rng.random() >= no_domain_rate:
            domain = names.domain_for(name, country, rng)
            while domain in used_domains:
                stem, _, tld = domain.partition(".")
                domain = f"{stem}{rng.randint(2, 99)}.{tld}"
            used_domains.add(domain)

        email_domains: List[str] = []
        if domain:
            email_domains.append(domain)
        if rng.random() < distributions.THIRD_PARTY_EMAIL or not domain:
            email_domains.append(
                rng.choice(calibration.MATCHING.email_domain_top10)
            )

        startup_p = (
            distributions.STARTUP_PROBABILITY_TECH
            if is_tech
            else distributions.STARTUP_PROBABILITY_NONTECH
        )
        org = Organization(
            org_id=org_id,
            name=name,
            truth=truth,
            country=country,
            city=city,
            address=namegen.street_address(city),
            phone=namegen.phone(country),
            domain=domain,
            email_domains=tuple(email_domains),
            has_website=bool(domain)
            and rng.random() >= distributions.SITE_DOWN,
            is_startup=rng.random() < startup_p,
            employees=max(1, int(rng.lognormvariate(3.5, 1.5))),
            founded_year=rng.randint(1950, 2020),
        )
        world.add_organization(org)

        # Website.  A fraction of sites read as an adjacent category
        # (hosting providers marketing themselves as ISPs).
        if org.domain:
            if org.has_website:
                content_slug = primary
                swap = distributions.SITE_CONTENT_SWAP.get(primary)
                if swap is not None and rng.random() < swap[1]:
                    content_slug = swap[0]
                site = generate_site(
                    rng,
                    org.name,
                    org.domain,
                    content_slug,
                    _site_traits(rng, primary),
                )
                world.web.add(site)
            else:
                world.web.mark_down(org.domain)

        # Track a few early big ISPs whose domains leak into customers'
        # WHOIS records (they appear in >= 100 ASes in the full world).
        if (
            "isp" in truth.layer2_slugs()
            and org.domain
            and len(big_provider_domains) < config.big_provider_count
        ):
            big_provider_domains.append(org.domain)

        # ASes.
        n_ases = 1
        while (
            rng.random() < config.multi_as_probability and n_ases < 6
        ):
            n_ases += 1
        for _ in range(n_ases):
            asn = next_asn
            next_asn += rng.randint(1, 3)
            rir = _choose_rir(rng)
            as_name = names.as_handle_for(name, rng)
            leaked: Tuple[str, ...] = ()
            if big_provider_domains and rng.random() < 0.28:
                # Upstream-provider domains leak into customer WHOIS
                # records (NOC/abuse contacts at the transit provider);
                # they are exactly what domain-selection must filter out.
                leaked = (rng.choice(big_provider_domains),)
            facts = _whois_facts(rng, org, asn, as_name, rir, leaked)
            world.registry.register(render(facts, rir))
            world.add_as(
                ASInfo(asn=asn, org_id=org_id, rir=rir, as_name=as_name)
            )

    return world
