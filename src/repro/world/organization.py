"""Ground-truth model of AS-owning organizations.

The synthetic world is the reproduction's stand-in for "the Internet":
a population of organizations with known (ground-truth) NAICSlite
categories, each owning one or more Autonomous Systems, with WHOIS records,
websites, and presence in external business databases.  Everything the
pipeline later infers is measured against this ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..taxonomy import LabelSet
from ..web.site import WebUniverse
from ..whois.records import RIR
from ..whois.registry import WhoisRegistry

__all__ = ["Organization", "ASInfo", "World"]


@dataclass(frozen=True)
class Organization:
    """One AS-owning organization with ground truth attached.

    Attributes:
        org_id: Stable unique identifier.
        name: Canonical organization name.
        truth: Ground-truth NAICSlite labels.  Usually a single layer 2
            category; multi-service technology companies (e.g. ISP+hosting)
            carry several, reproducing the paper's "nuanced disagreement".
        country: ISO-3166 alpha-2 country code.
        city: Headquarters city.
        address: Street address.
        phone: Contact phone number.
        domain: The organization's canonical domain, or None for the 17% of
            hosting providers (and others) without one.
        email_domains: Domains appearing in the org's contact emails; may
            include third-party mail providers like gmail.
        has_website: Whether a working website exists at ``domain``.
        is_startup: Drives Crunchbase's startup-skewed coverage.
        employees: Headcount (firmographic flavor for business DBs).
        founded_year: Founding year.
    """

    org_id: str
    name: str
    truth: LabelSet
    country: str
    city: str
    address: str
    phone: str
    domain: Optional[str] = None
    email_domains: Tuple[str, ...] = ()
    has_website: bool = True
    is_startup: bool = False
    employees: int = 50
    founded_year: int = 2000

    @property
    def is_tech(self) -> bool:
        """Whether the ground truth is a technology category."""
        return self.truth.is_tech

    @property
    def primary_layer2(self) -> Optional[str]:
        """The first (sorted) ground-truth layer 2 slug, if any."""
        slugs = sorted(self.truth.layer2_slugs())
        return slugs[0] if slugs else None


@dataclass(frozen=True)
class ASInfo:
    """One Autonomous System and its owner.

    Attributes:
        asn: The AS number.
        org_id: Owning organization's id.
        rir: The registry the AS is registered with.
        as_name: The registered AS handle.
    """

    asn: int
    org_id: str
    rir: RIR
    as_name: str


class World:
    """The complete synthetic universe the pipeline runs against.

    Holds organizations, their ASes, the bulk WHOIS registry (raw text the
    pipeline must parse), and the web universe (sites the scraper visits).
    External data-source simulators are constructed *from* a world, so all
    components observe one consistent reality.
    """

    def __init__(self) -> None:
        self.organizations: Dict[str, Organization] = {}
        self.ases: Dict[int, ASInfo] = {}
        self.registry = WhoisRegistry()
        self.web = WebUniverse()

    # -- population ---------------------------------------------------------

    def add_organization(self, org: Organization) -> None:
        """Register an organization (id must be fresh)."""
        if org.org_id in self.organizations:
            raise ValueError(f"duplicate org_id {org.org_id}")
        self.organizations[org.org_id] = org

    def add_as(self, info: ASInfo) -> None:
        """Attach an AS to an existing organization."""
        if info.asn in self.ases:
            raise ValueError(f"duplicate ASN {info.asn}")
        if info.org_id not in self.organizations:
            raise KeyError(f"unknown org {info.org_id}")
        self.ases[info.asn] = info

    def replace_organization(self, org: Organization) -> None:
        """Update an existing organization in place (ownership churn)."""
        if org.org_id not in self.organizations:
            raise KeyError(f"unknown org {org.org_id}")
        self.organizations[org.org_id] = org

    # -- ground-truth queries ----------------------------------------------

    def org_of_asn(self, asn: int) -> Organization:
        """The owning organization of an AS."""
        return self.organizations[self.ases[asn].org_id]

    def truth(self, asn: int) -> LabelSet:
        """Ground-truth NAICSlite labels for an AS."""
        return self.org_of_asn(asn).truth

    def asns(self) -> List[int]:
        """All ASNs, ascending."""
        return sorted(self.ases)

    def asns_of_org(self, org_id: str) -> List[int]:
        """All ASNs owned by one organization."""
        return sorted(
            asn for asn, info in self.ases.items() if info.org_id == org_id
        )

    def iter_organizations(self) -> Iterator[Organization]:
        """Organizations in org_id order."""
        for org_id in sorted(self.organizations):
            yield self.organizations[org_id]

    def __len__(self) -> int:
        return len(self.ases)
