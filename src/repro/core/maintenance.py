"""Maintaining ASdb over time (Section 5.3).

Between October 2020 and February 2021 an average 21 ASes were registered
per day (19 new organizations/day) and 4% of registered ASes changed their
ownership metadata at least once, implying ~140 updates per week.  This
module implements the machinery that keeps the dataset fresh:

* :class:`MaintenanceDaemon` - periodically sweeps the WHOIS registry for
  registrations/updates since the last sweep and (re)classifies them;
* :class:`CorrectionQueue` - the community-corrections workflow: anyone
  may submit a correction, a human reviewer verifies it, and only then is
  it integrated into the dataset.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..taxonomy import LabelSet
from .database import ASdbRecord
from .pipeline import ASdb
from .stages import Stage

__all__ = [
    "SweepReport",
    "MaintenanceDaemon",
    "Correction",
    "CorrectionStatus",
    "CorrectionQueue",
]


@dataclass(frozen=True)
class SweepReport:
    """Outcome of one maintenance sweep.

    Attributes:
        since_day: Sweep covered changes strictly after this day.
        through_day: ... up to and including this day.
        new_asns: ASNs first registered in the window.
        updated_asns: Previously known ASNs whose metadata changed.
        reclassified: Number of ASes re-run through the pipeline.
    """

    since_day: int
    through_day: int
    new_asns: Tuple[int, ...]
    updated_asns: Tuple[int, ...]
    reclassified: int

    @property
    def updates_per_week(self) -> float:
        """Average (new + updated) ASes per 7-day window."""
        days = max(1, self.through_day - self.since_day)
        total = len(self.new_asns) + len(self.updated_asns)
        return total * 7.0 / days


class MaintenanceDaemon:
    """Sweeps the registry and keeps the ASdb dataset current."""

    def __init__(self, asdb: ASdb) -> None:
        self._asdb = asdb
        self._last_day = -1

    @property
    def last_swept_day(self) -> int:
        """The day the previous sweep ran (-1 before the first sweep)."""
        return self._last_day

    def sweep(self, current_day: int) -> SweepReport:
        """Classify everything registered/updated since the last sweep."""
        registry = self._asdb._registry
        changed = registry.changed_since(self._last_day)
        new_asns: List[int] = []
        updated_asns: List[int] = []
        for asn in changed:
            entry = registry.entry(asn)
            if entry.registered_day > self._last_day:
                new_asns.append(asn)
            else:
                updated_asns.append(asn)
        reclassified = 0
        for asn in changed:
            self._asdb.reclassify(asn)
            reclassified += 1
        report = SweepReport(
            since_day=self._last_day,
            through_day=current_day,
            new_asns=tuple(new_asns),
            updated_asns=tuple(updated_asns),
            reclassified=reclassified,
        )
        self._last_day = current_day
        return report


class CorrectionStatus(enum.Enum):
    """Lifecycle of a community-submitted correction."""

    PENDING = "pending"
    APPROVED = "approved"
    REJECTED = "rejected"


@dataclass
class Correction:
    """One community-submitted classification correction.

    Attributes:
        asn: The AS the correction concerns.
        proposed: The proposed NAICSlite labels.
        submitter: Free-form submitter identity.
        rationale: Why the current classification is wrong.
        status: Review status (pending until a human verifies).
    """

    asn: int
    proposed: LabelSet
    submitter: str
    rationale: str = ""
    status: CorrectionStatus = CorrectionStatus.PENDING


class CorrectionQueue:
    """Submit -> human review -> integrate workflow (Section 5.3).

    Submitted corrections are verified by a human prior to integration;
    approved corrections overwrite the dataset record with a
    ``MULTI_AGREE``-equivalent manual stage.
    """

    def __init__(self, asdb: ASdb) -> None:
        self._asdb = asdb
        self._queue: List[Correction] = []

    def submit(self, correction: Correction) -> int:
        """Queue a correction; returns its review ticket id."""
        if not correction.proposed:
            raise ValueError("a correction must propose at least one label")
        self._queue.append(correction)
        return len(self._queue) - 1

    def pending(self) -> List[Correction]:
        """Corrections awaiting human review."""
        return [
            correction
            for correction in self._queue
            if correction.status is CorrectionStatus.PENDING
        ]

    def review(self, ticket: int, approve: bool) -> Correction:
        """Human review: approve integrates the correction."""
        correction = self._queue[ticket]
        if correction.status is not CorrectionStatus.PENDING:
            raise ValueError(f"ticket {ticket} already reviewed")
        if not approve:
            correction.status = CorrectionStatus.REJECTED
            return correction
        correction.status = CorrectionStatus.APPROVED
        old = self._asdb.dataset.get(correction.asn)
        record = ASdbRecord(
            asn=correction.asn,
            labels=correction.proposed,
            stage=old.stage if old else Stage.ONE_SOURCE,
            domain=old.domain if old else None,
            sources=("community",),
            org_key=old.org_key if old else None,
        )
        self._asdb.dataset.add(record)
        if record.org_key is not None:
            self._asdb.cache.put(record.org_key, record)
        return correction
