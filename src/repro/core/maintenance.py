"""Maintaining ASdb over time (Section 5.3).

Between October 2020 and February 2021 an average 21 ASes were registered
per day (19 new organizations/day) and 4% of registered ASes changed their
ownership metadata at least once, implying ~140 updates per week.  This
module implements the machinery that keeps the dataset fresh:

* :class:`MaintenanceDaemon` - the incremental refresh engine: each
  sweep collects the registry changes inside a *bounded* window
  ``(last_day, current_day]``, purges every cache alias of every
  touched organization, drives the changed ASNs through
  :meth:`~repro.core.pipeline.ASdb.classify_batch` (so workers, retry,
  circuit breakers, and graceful degradation all apply), and — when a
  :class:`~repro.core.snapshots.SnapshotStore` is attached — records
  the result as a new dataset version with the window as provenance;
* :class:`CorrectionQueue` - the community-corrections workflow: anyone
  may submit a correction, a human reviewer verifies it, and only then is
  it integrated into the dataset.

Sweeps are observable: counters/gauges/histograms land in the pipeline's
:class:`~repro.obs.MetricsRegistry` (``asdb_sweep_*``), and with tracing
enabled each :class:`SweepReport` carries a per-phase span trace
(window -> purge -> classify -> snapshot).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.trace import ClassificationTrace, trace_builder
from ..taxonomy import LabelSet
from .database import ASdbRecord
from .pipeline import ASdb
from .snapshots import SnapshotStore
from .stages import Stage

__all__ = [
    "SweepReport",
    "MaintenanceDaemon",
    "Correction",
    "CorrectionStatus",
    "CorrectionError",
    "UnknownTicketError",
    "TicketAlreadyReviewedError",
    "CorrectionQueue",
]


@dataclass(frozen=True)
class SweepReport:
    """Outcome of one maintenance sweep.

    Attributes:
        since_day: Sweep covered changes strictly after this day (-1
            marks the baseline sweep, which covers all of history from
            day 0).
        through_day: ... up to and including this day.  Changes dated
            later are left for the next sweep.
        new_asns: ASNs first registered in the window.
        updated_asns: Previously known ASNs whose metadata changed.
        reclassified: Number of ASes re-run through the pipeline.
        snapshot_version: Version the sweep stored, when the daemon has
            a snapshot store attached.
        trace: Per-phase span trace, when tracing is enabled (excluded
            from equality: two sweeps with the same outcome are the
            same sweep).
    """

    since_day: int
    through_day: int
    new_asns: Tuple[int, ...]
    updated_asns: Tuple[int, ...]
    reclassified: int
    snapshot_version: Optional[int] = None
    trace: Optional[ClassificationTrace] = field(
        default=None, compare=False, repr=False
    )

    @property
    def is_baseline(self) -> bool:
        """Whether this was the first sweep (full-history window)."""
        return self.since_day < 0

    @property
    def window_days(self) -> int:
        """Days the sweep window covers, with the first sweep explicit.

        The baseline sweep covers days ``0..through_day`` inclusive —
        ``through_day + 1`` days — rather than inheriting the sentinel
        ``since_day=-1`` as if it were a real day.  A same-day
        incremental sweep covers 0 days (and can have found nothing).
        """
        if self.is_baseline:
            return self.through_day + 1
        return self.through_day - self.since_day

    @property
    def changed_asns(self) -> Tuple[int, ...]:
        """Every ASN the sweep touched, ascending."""
        return tuple(sorted(self.new_asns + self.updated_asns))

    @property
    def updates_per_week(self) -> float:
        """Average (new + updated) ASes per 7-day window.

        An empty window (same-day sweep) reports 0.0 instead of
        silently clamping the divisor to one day.
        """
        days = self.window_days
        if days <= 0:
            return 0.0
        total = len(self.new_asns) + len(self.updated_asns)
        return total * 7.0 / days


class MaintenanceDaemon:
    """Sweeps the registry and keeps the ASdb dataset current.

    Args:
        asdb: The pipeline whose dataset/cache the daemon maintains.
        workers: Default worker count for each sweep's batch pass.
        snapshots: Optional store; every sweep then records a dataset
            version carrying the sweep window and provenance.
        last_day: Day the previous sweep ran (-1 before the first);
            pass a stored value to resume a release history across
            processes.
        batch_size: Default ASN-window size for the classify phase.
            ``None`` (the default) classifies each sweep's changed set
            in one batch, exactly as before; a bound makes the sweep
            *streaming* — changed ASNs are classified in consecutive
            ascending windows with the dataset flushed after each, so
            a store-backed sweep holds O(batch) records resident.
    """

    def __init__(
        self,
        asdb: ASdb,
        workers: int = 1,
        snapshots: Optional[SnapshotStore] = None,
        last_day: int = -1,
        batch_size: Optional[int] = None,
    ) -> None:
        if batch_size is not None and batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1 or None, got {batch_size}"
            )
        self._asdb = asdb
        self._workers = max(1, workers)
        self._snapshots = snapshots
        self._last_day = last_day
        self._batch_size = batch_size

        metrics = asdb.metrics
        self._m_sweeps = metrics.counter(
            "asdb_sweep_total", "Maintenance sweeps run."
        )
        self._m_changed = metrics.counter(
            "asdb_sweep_changed_total",
            "Registry changes collected by sweeps, by kind.",
            ("kind",),
        )
        for kind in ("new", "updated"):
            self._m_changed.inc(0, kind=kind)
        self._m_reclassified = metrics.counter(
            "asdb_sweep_reclassified_total",
            "ASes re-run through the pipeline by sweeps.",
        )
        self._m_last_day = metrics.gauge(
            "asdb_sweep_last_day", "Day the most recent sweep covered."
        )
        self._m_seconds = metrics.histogram(
            "asdb_sweep_seconds", "Wall time per maintenance sweep."
        )
        self._m_windows = metrics.counter(
            "asdb_sweep_windows_total",
            "Classify windows processed by streaming sweeps.",
        )
        self._m_snapshot_version = metrics.gauge(
            "asdb_snapshot_version",
            "Latest dataset version stored by a sweep.",
        )

    @property
    def last_swept_day(self) -> int:
        """The day the previous sweep ran (-1 before the first sweep)."""
        return self._last_day

    @property
    def snapshots(self) -> Optional[SnapshotStore]:
        """The attached snapshot store, if any."""
        return self._snapshots

    def sweep(
        self,
        current_day: int,
        workers: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> SweepReport:
        """Reclassify everything that changed in ``(last_day,
        current_day]``.

        The window is bounded above: an AS registered *after*
        ``current_day`` is not swept early (and then again), it simply
        belongs to the next sweep.  Changed ASNs are purged from the
        dataset and the organization cache first — stale sibling
        aliases included — then classified.

        With a ``batch_size`` (here or on the daemon), the classify
        phase streams: the ascending changed-ASN list is split into
        consecutive windows, each classified with
        :meth:`~repro.core.pipeline.ASdb.classify_batch` and flushed to
        the dataset store before the next begins, and each window emits
        a ``sweep.window`` ledger event.  Because the batch engine is
        byte-identical to sequential ascending classification and the
        organization cache persists across windows, the swept dataset
        is byte-identical to the single-batch sweep — only peak
        residency changes.
        """
        if current_day < self._last_day:
            raise ValueError(
                f"sweep day {current_day} precedes the last swept day "
                f"{self._last_day}"
            )
        effective = self._workers if workers is None else max(1, workers)
        registry = self._asdb._registry
        runlog = self._asdb.runlog
        tb = trace_builder(current_day, self._asdb._trace_enabled)

        # Provenance stamped on every per-AS trace this sweep produces
        # (and thus on its ``as.trace`` ledger events): which sweep —
        # window and run — caused the reclassification.
        sweep_tags: Dict[str, object] = {
            "sweep_since": self._last_day,
            "sweep_through": current_day,
        }
        if runlog.enabled:
            sweep_tags["run"] = runlog.run_id

        with self._m_seconds.time():
            with tb.span("window") as span:
                changed = registry.changed_since(
                    self._last_day, through=current_day
                )
                new_asns: List[int] = []
                updated_asns: List[int] = []
                for asn in changed:
                    entry = registry.entry(asn)
                    if entry.registered_day > self._last_day:
                        new_asns.append(asn)
                    else:
                        updated_asns.append(asn)
                span.set_status(f"{len(changed)} changed")
                span.note(
                    since_day=self._last_day,
                    through_day=current_day,
                    new=len(new_asns),
                    updated=len(updated_asns),
                )

            # Purge before classifying: every touched organization's
            # record and cache aliases go, so no reclassification can
            # be served a stale sibling entry.
            with tb.span("purge") as span:
                purged = 0
                for asn in changed:
                    if self._asdb.forget(asn) is not None:
                        purged += 1
                span.set_status(f"{purged} purged")

            with tb.span("classify") as span:
                step = (
                    batch_size
                    if batch_size is not None
                    else self._batch_size
                )
                if step is not None and step < 1:
                    raise ValueError(
                        f"batch_size must be >= 1 or None, got {step}"
                    )
                windows = 0
                if changed:
                    stride = step if step is not None else len(changed)
                    with self._asdb.tag_traces(**sweep_tags):
                        for offset in range(0, len(changed), stride):
                            window_asns = changed[offset:offset + stride]
                            self._asdb.classify_batch(
                                asns=window_asns, workers=effective
                            )
                            self._asdb.dataset.flush()
                            windows += 1
                            runlog.emit(
                                "sweep.window",
                                since_day=self._last_day,
                                through_day=current_day,
                                window=windows,
                                start_asn=window_asns[0],
                                stop_asn=window_asns[-1],
                                size=len(window_asns),
                            )
                span.set_status(f"{len(changed)} reclassified")
                span.note(workers=effective, windows=windows)
            self._m_windows.inc(windows)

            version: Optional[int] = None
            if self._snapshots is not None:
                with tb.span("snapshot") as span:
                    info = self._snapshots.save(
                        self._asdb.dataset,
                        window=(self._last_day, current_day),
                        provenance={
                            "new_asns": list(new_asns),
                            "updated_asns": list(updated_asns),
                            "reclassified": len(changed),
                        },
                        runlog=runlog if runlog.enabled else None,
                    )
                    version = info.version
                    span.set_status(f"v{version} ({info.kind})")
                self._m_snapshot_version.set(version)

        self._m_sweeps.inc(1)
        self._m_changed.inc(len(new_asns), kind="new")
        self._m_changed.inc(len(updated_asns), kind="updated")
        self._m_reclassified.inc(len(changed))
        self._m_last_day.set(current_day)

        report = SweepReport(
            since_day=self._last_day,
            through_day=current_day,
            new_asns=tuple(new_asns),
            updated_asns=tuple(updated_asns),
            reclassified=len(changed),
            snapshot_version=version,
            trace=tb.finish(),
        )
        runlog.emit(
            "sweep.report",
            since_day=report.since_day,
            through_day=report.through_day,
            new=len(report.new_asns),
            updated=len(report.updated_asns),
            reclassified=report.reclassified,
            snapshot_version=report.snapshot_version,
        )
        self._last_day = current_day
        return report


class CorrectionStatus(enum.Enum):
    """Lifecycle of a community-submitted correction."""

    PENDING = "pending"
    APPROVED = "approved"
    REJECTED = "rejected"


class CorrectionError(ValueError):
    """A corrections-workflow operation could not proceed."""


class UnknownTicketError(CorrectionError):
    """Review was requested for a ticket that was never issued."""


class TicketAlreadyReviewedError(CorrectionError):
    """Review was requested for a ticket a human already settled."""


@dataclass
class Correction:
    """One community-submitted classification correction.

    Attributes:
        asn: The AS the correction concerns.
        proposed: The proposed NAICSlite labels.
        submitter: Free-form submitter identity.
        rationale: Why the current classification is wrong.
        status: Review status (pending until a human verifies).
    """

    asn: int
    proposed: LabelSet
    submitter: str
    rationale: str = ""
    status: CorrectionStatus = CorrectionStatus.PENDING


class CorrectionQueue:
    """Submit -> human review -> integrate workflow (Section 5.3).

    Submitted corrections are verified by a human prior to integration;
    approved corrections overwrite the dataset record with a
    ``MULTI_AGREE``-equivalent manual stage.
    """

    def __init__(self, asdb: ASdb) -> None:
        self._asdb = asdb
        self._queue: List[Correction] = []

    def submit(self, correction: Correction) -> int:
        """Queue a correction; returns its review ticket id."""
        if not correction.proposed:
            raise ValueError("a correction must propose at least one label")
        self._queue.append(correction)
        return len(self._queue) - 1

    def pending(self) -> List[Correction]:
        """Corrections awaiting human review."""
        return [
            correction
            for correction in self._queue
            if correction.status is CorrectionStatus.PENDING
        ]

    def review(self, ticket: int, approve: bool) -> Correction:
        """Human review: approve integrates the correction.

        Raises :class:`UnknownTicketError` for a ticket that was never
        issued and :class:`TicketAlreadyReviewedError` for one already
        settled — re-applying a reviewed correction could silently
        overwrite a later reclassification.
        """
        if not 0 <= ticket < len(self._queue):
            raise UnknownTicketError(
                f"no correction ticket {ticket} "
                f"({len(self._queue)} issued)"
            )
        correction = self._queue[ticket]
        if correction.status is not CorrectionStatus.PENDING:
            raise TicketAlreadyReviewedError(
                f"ticket {ticket} already reviewed "
                f"({correction.status.value})"
            )
        if not approve:
            correction.status = CorrectionStatus.REJECTED
            return correction
        correction.status = CorrectionStatus.APPROVED
        old = self._asdb.dataset.get(correction.asn)
        record = ASdbRecord(
            asn=correction.asn,
            labels=correction.proposed,
            stage=old.stage if old else Stage.ONE_SOURCE,
            domain=old.domain if old else None,
            sources=("community",),
            org_key=old.org_key if old else None,
        )
        # The superseded record may be cached under several aliases
        # (name key, domain key, bare org key); every one of them must
        # stop serving the pre-correction answer.
        if old is not None:
            self._asdb.cache.invalidate_keys(
                old.cache_keys + (old.org_key,)
            )
            self._asdb.cache.invalidate_record(old)
        self._asdb.dataset.add(record)
        if record.org_key is not None:
            self._asdb.cache.put(record.org_key, record)
        return correction
