"""The parallel batch classification engine.

:func:`run_batch` classifies many ASes through the same Figure-4 stage
logic as the sequential pipeline, restructured for throughput:

1. **Cluster planning** (:func:`plan_clusters`) — ASNs are grouped into
   *organization-sibling clusters* by their pre-domain cache key (the
   normalized-name key the pipeline's cache stage reads).  The lowest
   ASN of each cluster is its *leader*; siblings ride the cache entry
   the leader writes, so each organization is classified exactly once
   per batch.  ASes with no usable name key form singleton clusters, as
   does everything when caching is disabled.
2. **Leader fan-out** — every leader's stage generator
   (:meth:`~repro.core.pipeline.ASdb._classify_steps`) is advanced on a
   ``ThreadPoolExecutor``.  Whenever generators suspend on an external
   request, the engine serves each request kind through the bulk
   endpoints: PeeringDB/IPinfo ``lookup_many`` for the ASN-match stage,
   ``WebClassificationPipeline.classify_domains`` for the ML stage, and
   ``EntityResolver.match_sources_many`` for the source-match stage.
3. **Sibling pass** — after the leaders (and their cache writes)
   finish, each cluster's remaining members run the scalar per-AS pass
   as an in-order chain on the pool (chains of different clusters in
   parallel); almost all of them resolve from the now-warm cache.
4. **Deterministic merge** — records are returned in ascending ASN
   order and the caller merges them into the dataset.

Determinism argument (why batch output is byte-identical to the
sequential ascending-ASN pass):

* The pipeline's cache *reads* use only the pre-domain name key, and
  clusters partition ASNs by exactly that key — so no AS ever reads a
  cache entry written by another cluster.  (Name keys and domain keys
  live in disjoint ``name:`` / ``domain:`` namespaces, so cross-cluster
  domain-key writes cannot be read as some other cluster's name key.)
* Within a cluster, members run strictly in ascending order — leader
  first, then the sibling chain — because cache state evolves member
  by member: a leader whose classification comes back empty writes no
  entry, and a *later* member may be the one that populates the key
  its successors hit, exactly as in the sequential pass.
* Every external call is deterministic per query (sources derive
  per-query RNGs from the query content; scraping, translation, and
  the ML transforms are pure functions of their input), and every bulk
  endpoint is contractually elementwise identical to its scalar
  counterpart.
* The dataset orders records by ASN, so merge order cannot leak
  thread scheduling into the output.

Tracing caveat: with ``trace=True``, span *contents* (statuses, noted
attributes) are unchanged, but span durations around batched stages
measure time-to-resume rather than per-AS work — batch traces are for
decisions, not for per-stage timing.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..datasources.base import Query
from ..obs.trace import trace_builder
from .cache import org_cache_key
from .database import ASdbRecord
from .pipeline import REQUEST_ASN_MATCH, REQUEST_ML, REQUEST_SOURCES
from .procpool import map_chunked

__all__ = ["Cluster", "plan_clusters", "run_batch", "map_chunked"]


@dataclass(frozen=True)
class Cluster:
    """One organization-sibling cluster in a batch plan.

    Attributes:
        key: The shared pre-domain cache key (None for keyless
            singletons).
        members: The cluster's ASNs, ascending; ``members[0]`` is the
            leader that runs the full pipeline.
    """

    key: Optional[str]
    members: Tuple[int, ...]

    @property
    def leader(self) -> int:
        """The ASN classified first (lowest in the cluster)."""
        return self.members[0]


def plan_clusters(
    registry,
    asns: Optional[Sequence[int]] = None,
    group_siblings: bool = True,
) -> List[Cluster]:
    """Group ``asns`` (default: the whole registry, ascending) into
    organization-sibling clusters keyed by the pre-domain cache key.

    ASes whose contact yields no key are never cached, so they become
    singleton clusters; with ``group_siblings=False`` (cache disabled)
    everything does.  Clusters are ordered by leader ASN.
    """
    ordered = sorted(registry.asns() if asns is None else asns)
    if not group_siblings:
        return [Cluster(key=None, members=(asn,)) for asn in ordered]
    by_key: Dict[str, List[int]] = {}
    clusters: List[Cluster] = []
    for asn in ordered:
        key = org_cache_key(registry.contact(asn), domain=None)
        if key is None:
            clusters.append(Cluster(key=None, members=(asn,)))
        else:
            by_key.setdefault(key, []).append(asn)
    clusters.extend(
        Cluster(key=key, members=tuple(members))
        for key, members in by_key.items()
    )
    clusters.sort(key=lambda cluster: cluster.leader)
    return clusters


class _LeaderState:
    """One in-flight leader: its stage generator plus bookkeeping."""

    __slots__ = (
        "asn", "gen", "tb", "request", "record", "active_seconds",
        "runlog", "parent_id",
    )

    def __init__(self, asn: int, gen, tb, runlog=None, parent_id=None) -> None:
        self.asn = asn
        self.gen = gen
        self.tb = tb
        self.request: Optional[Tuple] = None
        self.record: Optional[ASdbRecord] = None
        self.active_seconds = 0.0
        self.runlog = runlog
        self.parent_id = parent_id

    def advance(self, reply: object = None) -> None:
        """Resume the generator until its next request (or its return).

        Runs on a pool thread; when the generator returns, the leader's
        accumulated active time is emitted as a worker-side ledger span
        (``batch.leader``) from that thread, so the ledger's causal tree
        shows which thread classified which organization.
        """
        start = time.perf_counter()
        try:
            if reply is None:
                self.request = next(self.gen)
            else:
                self.request = self.gen.send(reply)
        except StopIteration as stop:
            self.request = None
            self.record = stop.value
            if self.runlog is not None and self.runlog.enabled:
                self.runlog.emit(
                    "span",
                    span_id=f"leader-{self.asn}",
                    parent_id=self.parent_id,
                    name="batch.leader",
                    duration=self.active_seconds
                    + (time.perf_counter() - start),
                    status="ok",
                    attributes={"asn": self.asn},
                    worker=self.runlog.worker_stanza(),
                )
        finally:
            self.active_seconds += time.perf_counter() - start


def run_batch(
    asdb,
    asns: Optional[Sequence[int]] = None,
    workers: int = 1,
) -> List[ASdbRecord]:
    """Classify ``asns`` through the cluster/batch engine; records are
    returned in ascending ASN order (the caller merges them).

    ``asdb`` is the :class:`~repro.core.pipeline.ASdb` instance; the
    engine is a core-package friend and drives its private stage
    generator directly.
    """
    workers = max(1, workers)
    metrics = asdb.metrics
    m_workers = metrics.gauge(
        "asdb_batch_workers", "Worker threads of the last batch run."
    )
    m_asns = metrics.gauge(
        "asdb_batch_asns", "ASNs in the last batch run."
    )
    m_clusters = metrics.gauge(
        "asdb_batch_clusters",
        "Organization clusters in the last batch run.",
    )
    m_cluster_size = metrics.histogram(
        "asdb_batch_cluster_size",
        "ASes per organization cluster.",
        buckets=(1, 2, 3, 5, 10, 25, 100),
    )
    m_phase_seconds = metrics.histogram(
        "asdb_batch_seconds",
        "Batch engine wall time per phase.",
        ("phase",),
    )

    clusters = plan_clusters(
        asdb._registry, asns=asns, group_siblings=asdb._use_cache
    )
    m_workers.set(workers)
    m_asns.set(sum(len(cluster.members) for cluster in clusters))
    m_clusters.set(len(clusters))
    for cluster in clusters:
        m_cluster_size.observe(len(cluster.members))

    # An empty batch (e.g. a maintenance sweep over an unchanged
    # registry) needs no thread pool.
    if not clusters:
        return []

    runlog = asdb.runlog
    records: List[ASdbRecord] = []
    with runlog.span("classify_batch") as batch_span:
        batch_span.note(
            workers=workers,
            asns=sum(len(cluster.members) for cluster in clusters),
            clusters=len(clusters),
            executor=asdb._executor,
        )
        batch_id = batch_span.span_id
        with ThreadPoolExecutor(max_workers=workers) as pool:
            leaders = [
                _LeaderState(
                    cluster.leader,
                    asdb._classify_steps(
                        cluster.leader,
                        tb := (
                            trace_builder(
                                cluster.leader,
                                asdb._trace_enabled,
                                tags=asdb._trace_tags,
                            )
                            if asdb._trace_tags
                            else trace_builder(
                                cluster.leader, asdb._trace_enabled
                            )
                        ),
                    ),
                    tb,
                    runlog=runlog,
                    parent_id=batch_id,
                )
                for cluster in clusters
            ]

            try:
                # Phase: leader fronts (cache probe, WHOIS parse) on the
                # pool.
                with m_phase_seconds.time(phase="front"), \
                        runlog.span("batch.front", parent=batch_id):
                    list(pool.map(_LeaderState.advance, leaders))

                # Phases: serve suspended requests through the bulk
                # endpoints until every leader generator has returned.
                pending = [
                    state for state in leaders if state.request is not None
                ]
                while pending:
                    _serve_round(
                        asdb, pool, pending, m_phase_seconds, workers,
                        runlog=runlog, parent_id=batch_id,
                    )
                    pending = [
                        state for state in pending
                        if state.request is not None
                    ]
            except BaseException as exc:
                for state in leaders:
                    if state.record is None:
                        state.tb.fail(f"{type(exc).__name__}: {exc}")
                raise
            finally:
                # A bulk call that raised leaves other leaders suspended
                # mid-stage; closing their generators unwinds the open
                # ``tb.span`` blocks so no span (or half-mutated cache
                # write) leaks past the failed batch.
                for state in leaders:
                    if state.record is None:
                        state.gen.close()

            for state in leaders:
                records.append(_finalize_leader(asdb, state))

            # Phase: organization siblings ride the leaders' cache
            # entries (scalar per-AS pass; nearly all are cache hits).
            # Members of one cluster run as an in-order chain on a
            # single worker: a leader with an empty classification
            # writes no cache entry, so a *later* member may be the one
            # that populates the key its successors hit — exactly as in
            # the sequential pass.  Chains of different clusters never
            # share a name key, so they are free to run concurrently.
            with m_phase_seconds.time(phase="siblings"), \
                    runlog.span("batch.siblings", parent=batch_id):
                chains = [
                    cluster.members[1:]
                    for cluster in clusters
                    if len(cluster.members) > 1
                ]
                for chain in pool.map(
                    _classify_chain,
                    [asdb] * len(chains),
                    chains,
                    [batch_id] * len(chains),
                ):
                    records.extend(chain)

    records.sort(key=lambda record: record.asn)
    return records


def _classify_chain(
    asdb, members: Sequence[int], parent_id=None
) -> List[ASdbRecord]:
    """Classify one cluster's non-leader members, in ascending order.

    Runs on a pool thread; with a ledger configured the chain emits a
    worker-side ``batch.chain`` span from that thread.
    """
    runlog = asdb.runlog
    start = time.perf_counter()
    chain = [asdb._classify_one(asn) for asn in members]
    if runlog.enabled and members:
        runlog.emit(
            "span",
            span_id=f"chain-{members[0]}",
            parent_id=parent_id,
            name="batch.chain",
            duration=time.perf_counter() - start,
            status="ok",
            attributes={"members": len(members)},
            worker=runlog.worker_stanza(),
        )
    return chain


def _serve_round(
    asdb, pool, pending, m_phase_seconds, workers=1,
    runlog=None, parent_id=None,
) -> None:
    """Serve one round of suspended requests, one bulk call per kind.

    With the ``"process"`` executor configured on the system, the ML
    bulk call chunks its CPU-bound scoring over ``workers`` processes
    (see :mod:`repro.core.procpool`); every other stage stays on the
    thread pool, where the I/O-shaped work already scales.  With a
    ledger configured, each bulk phase emits a ``batch.<phase>`` span
    under the batch span, and the ML phase threads a picklable span
    context into the process pool so worker-side chunk spans land in
    the same causal tree.
    """
    if runlog is None:
        runlog = asdb.runlog
    by_kind: Dict[str, List] = {}
    for state in pending:
        by_kind.setdefault(state.request[0], []).append(state)

    replies: List[Tuple] = []  # (state, reply)

    waiting = by_kind.get(REQUEST_ASN_MATCH, ())
    if waiting:
        with m_phase_seconds.time(phase="asn_match"), \
                runlog.span("batch.asn_match", parent=parent_id) as span:
            span.note(queries=len(waiting))
            queries = [Query(asn=state.request[1]) for state in waiting]
            replies.extend(zip(waiting, _asn_lookup_many(asdb, queries)))

    waiting = by_kind.get(REQUEST_ML, ())
    if waiting:
        with m_phase_seconds.time(phase="ml"), \
                runlog.span("batch.ml", parent=parent_id) as span:
            span.note(domains=len(waiting))
            span_sink: List[Dict] = []
            verdicts = asdb._ml.classify_domains(
                [state.request[1] for state in waiting],
                process_workers=(
                    workers if asdb._executor == "process" else 0
                ),
                span_context=runlog.span_context(span.span_id),
                span_sink=span_sink,
            )
            for record in span_sink:
                runlog.emit_span_record(record)
            replies.extend(zip(waiting, verdicts))

    waiting = by_kind.get(REQUEST_SOURCES, ())
    if waiting:
        with m_phase_seconds.time(phase="source_match"), \
                runlog.span("batch.source_match", parent=parent_id) as span:
            span.note(contacts=len(waiting))
            resolved = asdb._resolver.match_sources_many(
                [(state.request[1], state.request[2]) for state in waiting]
            )
            replies.extend(zip(waiting, resolved))

    with m_phase_seconds.time(phase="resume"):
        list(pool.map(
            lambda pair: pair[0].advance(pair[1]), replies
        ))


def _asn_lookup_many(asdb, queries: Sequence[Query]) -> List[Tuple]:
    """Bulk form of the scalar driver's stage-1 reply: one
    ``(peeringdb, ipinfo, degraded names)`` triple per query,
    elementwise identical to :meth:`~repro.core.pipeline.ASdb._asn_lookup`.
    """
    per_source: List[List[Tuple]] = []
    for source in (asdb._peeringdb, asdb._ipinfo):
        if hasattr(source, "try_lookup_many"):
            per_source.append([
                (outcome.match, outcome.failed)
                for outcome in source.try_lookup_many(queries)
            ])
        else:
            per_source.append([
                (match, False) for match in source.lookup_many(queries)
            ])
    replies: List[Tuple] = []
    for (pdb_match, pdb_failed), (ip_match, ip_failed) in zip(*per_source):
        degraded: List[str] = []
        if pdb_failed:
            degraded.append(asdb._peeringdb.name)
        if ip_failed:
            degraded.append(asdb._ipinfo.name)
        replies.append((pdb_match, ip_match, tuple(degraded)))
    return replies


def _finalize_leader(asdb, state: _LeaderState) -> ASdbRecord:
    """The scalar driver's per-AS epilogue, for a batch-driven leader."""
    record = state.record
    asdb._m_classify_seconds.observe(state.active_seconds)
    asdb._m_stage_total.inc(1, stage=record.stage.value)
    trace = state.tb.finish()
    if trace is not None:
        record = replace(record, trace=trace)
    return record
