"""Versioned dataset snapshots with delta encoding (Section 5.3).

The released ASdb is not one file but a *history*: quarterly releases,
each produced by sweeping the registry for changes since the previous
one.  "Back-to-the-Future Whois" makes the case that attribution
datasets need point-in-time snapshots with diffable history;
:class:`SnapshotStore` is that substrate for this system.

Layout on disk (everything under one root directory)::

    manifest.json        index of versions + free-form store metadata
    v0001.full.json      version 1: dataset_to_json output, verbatim
    v0002.delta.json     version 2: changed records + removed ASNs
    ...

Version 1 (and any version saved with ``full=True``) stores the
complete lossless JSON document from
:func:`~repro.core.persistence.dataset_to_json`, byte for byte.  Every
other version is a *delta* against its parent: the
:func:`~repro.core.persistence.record_to_item` items of records that
changed, plus the ASNs that disappeared.  Loading a delta version
replays the chain forward from the nearest full snapshot; a blake2b
digest of the materialized document, recorded at save time, guards
every reconstruction.

Each version also records the maintenance-sweep window and provenance
that produced it, so ``repro diff``/``repro refresh`` can answer "what
changed between releases, and why".
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .database import ASdbDataset, DatasetDiff
from .persistence import (
    dataset_from_json,
    dataset_to_json,
    iter_json_chunks,
    record_from_item,
    record_to_item,
)

__all__ = [
    "SnapshotError",
    "SnapshotCorruption",
    "SnapshotInfo",
    "SnapshotStore",
    "dataset_digest",
]

MANIFEST_FORMAT = "asdb-repro/snapshots/1"
DELTA_FORMAT = "asdb-repro/delta/1"
_MANIFEST = "manifest.json"


class SnapshotError(ValueError):
    """A snapshot-store operation could not proceed."""


class SnapshotCorruption(SnapshotError):
    """A stored document no longer matches its recorded digest."""


def _digest(document: str) -> str:
    return hashlib.blake2b(document.encode("utf-8"),
                           digest_size=16).hexdigest()


def dataset_digest(records) -> str:
    """Digest of a dataset's full JSON document, computed over the
    chunk stream without materializing the document (O(1) memory for
    any backend).

    The same blake2b-128 recorded in every :class:`SnapshotInfo`, so a
    caller holding a store-backed dataset can check it against a
    version's manifest digest without loading anything.
    """
    hasher = hashlib.blake2b(digest_size=16)
    for chunk in iter_json_chunks(records):
        hasher.update(chunk.encode("utf-8"))
    return hasher.hexdigest()


def _delta_by_merge(new_records, old_records):
    """Changed items + removed ASNs via ordered merge over two
    ascending-ASN record streams.

    Replaces the dict-of-every-item comparison: only the delta itself
    accumulates, so a sweep snapshot over a store-backed dataset keeps
    O(delta) memory on the new side (the parent side is materialized by
    the caller's delta-chain replay).  Items compare by their
    :func:`record_to_item` shape, exactly as the dict version did.
    """
    changed: List[Dict[str, object]] = []
    removed: List[int] = []
    sentinel = object()
    new_iter, old_iter = iter(new_records), iter(old_records)
    new = next(new_iter, sentinel)
    old = next(old_iter, sentinel)
    while new is not sentinel or old is not sentinel:
        if old is sentinel or (new is not sentinel and new.asn < old.asn):
            changed.append(record_to_item(new))
            new = next(new_iter, sentinel)
        elif new is sentinel or old.asn < new.asn:
            removed.append(old.asn)
            old = next(old_iter, sentinel)
        else:
            new_item = record_to_item(new)
            if new_item != record_to_item(old):
                changed.append(new_item)
            new = next(new_iter, sentinel)
            old = next(old_iter, sentinel)
    return changed, removed


def _write_atomic(path: str, chunks) -> None:
    """Write a document from its chunk stream via tmp file + rename, so
    a crash mid-write never leaves a truncated version on disk."""
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        for chunk in chunks:
            handle.write(chunk)
    os.replace(tmp, path)


@dataclass(frozen=True)
class SnapshotInfo:
    """Manifest entry for one stored version.

    Attributes:
        version: 1-based version number (dense, ascending).
        kind: ``full`` (verbatim dataset JSON) or ``delta``.
        parent: The version this delta applies to (None for fulls).
        filename: Document file name inside the store root.
        since_day: Sweep window lower bound (exclusive), when known.
        through_day: Sweep window upper bound (inclusive), when known.
        record_count: Records in the materialized dataset.
        changed: Records added/replaced relative to the parent.
        removed: ASNs dropped relative to the parent.
        digest: blake2b-128 of the materialized full JSON document.
        note: Free-form release note.
        provenance: Sweep provenance (new/updated ASN lists, counts).
    """

    version: int
    kind: str
    parent: Optional[int]
    filename: str
    since_day: Optional[int]
    through_day: Optional[int]
    record_count: int
    changed: int
    removed: int
    digest: str
    note: str = ""
    provenance: Dict[str, object] = field(default_factory=dict)

    def to_manifest(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "kind": self.kind,
            "parent": self.parent,
            "filename": self.filename,
            "since_day": self.since_day,
            "through_day": self.through_day,
            "record_count": self.record_count,
            "changed": self.changed,
            "removed": self.removed,
            "digest": self.digest,
            "note": self.note,
            "provenance": self.provenance,
        }

    @classmethod
    def from_manifest(cls, item: Dict[str, object]) -> "SnapshotInfo":
        return cls(
            version=int(item["version"]),
            kind=str(item["kind"]),
            parent=item.get("parent"),
            filename=str(item["filename"]),
            since_day=item.get("since_day"),
            through_day=item.get("through_day"),
            record_count=int(item.get("record_count", 0)),
            changed=int(item.get("changed", 0)),
            removed=int(item.get("removed", 0)),
            digest=str(item.get("digest", "")),
            note=str(item.get("note", "")),
            provenance=dict(item.get("provenance", {})),
        )


class SnapshotStore:
    """An on-disk, append-only history of dataset releases."""

    def __init__(self, root: str) -> None:
        self._root = str(root)
        self._versions: List[SnapshotInfo] = []
        #: Free-form store metadata (the CLI records world provenance
        #: here so ``refresh`` can rebuild the same world); persisted in
        #: the manifest.  Mutate via :meth:`set_meta`.
        self.meta: Dict[str, object] = {}
        os.makedirs(self._root, exist_ok=True)
        manifest_path = os.path.join(self._root, _MANIFEST)
        if os.path.exists(manifest_path):
            self._load_manifest(manifest_path)

    # -- manifest -----------------------------------------------------------

    def _load_manifest(self, path: str) -> None:
        with open(path) as handle:
            document = json.load(handle)
        if document.get("format") != MANIFEST_FORMAT:
            raise SnapshotError(
                f"unsupported manifest format "
                f"{document.get('format')!r} in {path}"
            )
        self._versions = [
            SnapshotInfo.from_manifest(item)
            for item in document.get("versions", ())
        ]
        for position, info in enumerate(self._versions, start=1):
            if info.version != position:
                raise SnapshotError(
                    f"manifest versions are not dense: expected "
                    f"v{position}, found v{info.version}"
                )
        self.meta = dict(document.get("meta", {}))

    def _write_manifest(self) -> None:
        document = {
            "format": MANIFEST_FORMAT,
            "meta": self.meta,
            "versions": [info.to_manifest() for info in self._versions],
        }
        path = os.path.join(self._root, _MANIFEST)
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(document, handle, indent=2)
        os.replace(tmp, path)

    def set_meta(self, meta: Dict[str, object]) -> None:
        """Replace the store metadata and persist the manifest."""
        self.meta = dict(meta)
        self._write_manifest()

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._versions)

    @property
    def root(self) -> str:
        """The store's root directory."""
        return self._root

    def versions(self) -> Tuple[SnapshotInfo, ...]:
        """Manifest entries, ascending by version."""
        return tuple(self._versions)

    def latest(self) -> Optional[SnapshotInfo]:
        """The newest version's manifest entry, or None when empty."""
        return self._versions[-1] if self._versions else None

    def info(self, version: int) -> SnapshotInfo:
        """Manifest entry for one version (SnapshotError if absent)."""
        if not 1 <= version <= len(self._versions):
            raise SnapshotError(
                f"no snapshot version {version} (store has "
                f"{len(self._versions)})"
            )
        return self._versions[version - 1]

    # -- writing ------------------------------------------------------------

    def save(
        self,
        dataset: ASdbDataset,
        window: Optional[Tuple[int, int]] = None,
        provenance: Optional[Dict[str, object]] = None,
        note: str = "",
        full: bool = False,
        runlog=None,
    ) -> SnapshotInfo:
        """Record ``dataset`` as the next version.

        The first version (or ``full=True``) stores the complete
        :func:`dataset_to_json` document verbatim; later versions store
        only the items whose serialized form changed since the parent,
        plus removed ASNs.  ``window`` is the ``(since_day,
        through_day]`` sweep window that produced the release.  With a
        run ledger passed, the save emits one ``snapshot.saved`` event
        carrying the new version's manifest facts.

        ``dataset`` may be any :class:`~repro.core.store.DatasetStore`
        backend.  Full documents stream chunk by chunk to a tmp file
        (digested incrementally, then renamed into place); delta saves
        stream the new side through an ordered merge against the
        materialized parent, so a store-backed sweep snapshot never
        holds the new dataset resident.  Both document kinds land
        atomically (tmp file + rename).
        """
        version = len(self._versions) + 1
        since_day, through_day = window if window is not None else (None,
                                                                    None)
        if version == 1 or full:
            filename = f"v{version:04d}.full.json"
            kind, parent = "full", None
            changed = len(dataset)
            removed: List[int] = []
            hasher = hashlib.blake2b(digest_size=16)

            def hashed_chunks():
                for chunk in iter_json_chunks(dataset):
                    hasher.update(chunk.encode("utf-8"))
                    yield chunk

            _write_atomic(
                os.path.join(self._root, filename), hashed_chunks()
            )
            digest = hasher.hexdigest()
        else:
            parent = version - 1
            previous = self.load(parent)
            changed_items, removed = _delta_by_merge(dataset, previous)
            filename = f"v{version:04d}.delta.json"
            payload = json.dumps(
                {
                    "format": DELTA_FORMAT,
                    "base": parent,
                    "changed": changed_items,
                    "removed": removed,
                },
                indent=2,
            )
            _write_atomic(os.path.join(self._root, filename), (payload,))
            kind, changed = "delta", len(changed_items)
            digest = dataset_digest(dataset)
        info = SnapshotInfo(
            version=version,
            kind=kind,
            parent=parent,
            filename=filename,
            since_day=since_day,
            through_day=through_day,
            record_count=len(dataset),
            changed=changed,
            removed=len(removed),
            digest=digest,
            note=note,
            provenance=dict(provenance or {}),
        )
        self._versions.append(info)
        self._write_manifest()
        if runlog is not None:
            runlog.emit(
                "snapshot.saved",
                version=info.version,
                kind=info.kind,
                records=info.record_count,
                changed=info.changed,
                removed=info.removed,
                digest=info.digest,
                since_day=info.since_day,
                through_day=info.through_day,
            )
        return info

    # -- reading ------------------------------------------------------------

    def _read_file(self, info: SnapshotInfo) -> str:
        path = os.path.join(self._root, info.filename)
        try:
            with open(path) as handle:
                return handle.read()
        except OSError as exc:
            raise SnapshotCorruption(
                f"cannot read v{info.version} document {path}: {exc}"
            ) from exc

    def load(
        self,
        version: Optional[int] = None,
        into=None,
    ) -> ASdbDataset:
        """Materialize one version (default: the latest).

        Walks back to the nearest full snapshot and replays the delta
        chain forward; the result is verified against the version's
        recorded digest before it is returned.

        With ``into`` (an empty :class:`~repro.core.store.DatasetStore`
        backend, e.g. a :class:`SqliteDatasetStore`), records land in
        that store instead of a fresh in-memory dataset — a sqlite
        target keeps only its write batch resident while the chain
        replays.  The digest check streams the result's chunk stream,
        so it never materializes the document either way.
        """
        if version is None:
            latest = self.latest()
            if latest is None:
                raise SnapshotError("snapshot store is empty")
            version = latest.version
        target = self.info(version)

        chain: List[SnapshotInfo] = []
        info = target
        while info.kind != "full":
            chain.append(info)
            if info.parent is None:
                raise SnapshotCorruption(
                    f"delta v{info.version} has no parent"
                )
            info = self.info(info.parent)
        if into is None:
            dataset = dataset_from_json(self._read_file(info))
        else:
            if len(into):
                raise SnapshotError(
                    "load target store is not empty: refusing to merge "
                    f"v{target.version} into {len(into)} existing records"
                )
            dataset = into
            base = json.loads(self._read_file(info))
            if base.get("format") != "asdb-repro/1":
                raise SnapshotCorruption(
                    f"v{info.version}: unsupported document format "
                    f"{base.get('format')!r}"
                )
            for item in base["records"]:
                dataset.add(record_from_item(item))
        for delta_info in reversed(chain):
            delta = json.loads(self._read_file(delta_info))
            if delta.get("format") != DELTA_FORMAT:
                raise SnapshotCorruption(
                    f"v{delta_info.version}: unsupported delta format "
                    f"{delta.get('format')!r}"
                )
            for asn in delta.get("removed", ()):
                dataset.remove(int(asn))
            for item in delta.get("changed", ()):
                dataset.add(record_from_item(item))
        dataset.flush()
        if target.digest and dataset_digest(dataset) != target.digest:
            raise SnapshotCorruption(
                f"v{target.version}: materialized document does not "
                f"match its recorded digest"
            )
        return dataset

    def materialize(
        self,
        version: Optional[int] = None,
        into=None,
    ) -> Tuple[ASdbDataset, SnapshotInfo]:
        """Materialize one version *with* its manifest identity.

        The serving layer's hook: :meth:`load` answers "give me the
        records", but an index built for query traffic also needs the
        release facts — version number, digest, record count — to stamp
        on every response.  Returns ``(dataset, info)`` where
        ``dataset`` is exactly what :meth:`load` would produce (same
        ``into`` semantics, same digest verification).
        """
        if version is None:
            latest = self.latest()
            if latest is None:
                raise SnapshotError("snapshot store is empty")
            version = latest.version
        return self.load(version, into=into), self.info(version)

    def read_json(self, version: Optional[int] = None) -> str:
        """The lossless JSON document for one version.

        For full versions this is the stored file verbatim — byte
        identical to the :func:`dataset_to_json` output at save time;
        deltas are materialized first (which re-serializes through the
        same encoder, so the bytes still match).
        """
        if version is None:
            latest = self.latest()
            if latest is None:
                raise SnapshotError("snapshot store is empty")
            version = latest.version
        info = self.info(version)
        if info.kind == "full":
            return self._read_file(info)
        return dataset_to_json(self.load(version))

    def diff(self, old_version: int, new_version: int) -> DatasetDiff:
        """What changed from ``old_version`` to ``new_version``."""
        return self.load(new_version).diff(self.load(old_version))
