"""Versioned dataset snapshots with delta encoding and periodic
checkpoints (Section 5.3).

The released ASdb is not one file but a *history*: quarterly releases,
each produced by sweeping the registry for changes since the previous
one.  "Back-to-the-Future Whois" makes the case that attribution
datasets need point-in-time snapshots with diffable history;
:class:`SnapshotStore` is that substrate for this system, and
:mod:`repro.core.history` builds the temporal query layer on top.

Layout on disk (everything under one root directory)::

    manifest.json        index of versions + free-form store metadata
    v0001.full.json      version 1: dataset_to_json output, verbatim
    v0002.delta.json     version 2: changed records + removed ASNs
    ...
    v0009.delta.json     every K-th delta also stores ...
    v0009.ckpt.json      ... a checkpoint: the full document, verbatim

Version 1 (and any version saved with ``full=True``) stores the
complete lossless JSON document from
:func:`~repro.core.persistence.dataset_to_json`, byte for byte.  Every
other version is a *delta* against its parent: the
:func:`~repro.core.persistence.record_to_item` items of records that
changed, plus the ASNs that disappeared.  With ``checkpoint_every=K``
(recorded in the manifest, so every handle on the store agrees), each
K-th consecutive delta is *promoted*: it keeps its delta document — the
chain stays uniformly scannable for timelines and churn — but also
stores the full document alongside it.  Loading any version replays the
chain forward from the nearest full document (checkpoint or full
snapshot), so reconstruction cost is O(K deltas) regardless of history
depth; a blake2b digest of the materialized document, recorded at save
time, guards every reconstruction.

Each version also records the maintenance-sweep window and provenance
that produced it, so ``repro diff``/``repro refresh`` can answer "what
changed between releases, and why".
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .database import ASdbDataset, DatasetDiff, diff_record_streams
from .persistence import (
    dataset_to_json,
    iter_json_chunks,
    record_from_item,
    record_to_item,
)

__all__ = [
    "SnapshotError",
    "SnapshotCorruption",
    "SnapshotInfo",
    "SnapshotStore",
    "dataset_digest",
]

MANIFEST_FORMAT = "asdb-repro/snapshots/1"
DELTA_FORMAT = "asdb-repro/delta/1"
DATASET_FORMAT = "asdb-repro/1"
_MANIFEST = "manifest.json"


class SnapshotError(ValueError):
    """A snapshot-store operation could not proceed."""


class SnapshotCorruption(SnapshotError):
    """A stored document no longer matches its recorded digest."""


def dataset_digest(records) -> str:
    """Digest of a dataset's full JSON document, computed over the
    chunk stream without materializing the document (O(1) memory for
    any backend).

    The same blake2b-128 recorded in every :class:`SnapshotInfo`, so a
    caller holding a store-backed dataset can check it against a
    version's manifest digest without loading anything.
    """
    hasher = hashlib.blake2b(digest_size=16)
    for chunk in iter_json_chunks(records):
        hasher.update(chunk.encode("utf-8"))
    return hasher.hexdigest()


def _delta_by_merge(new_records, old_records):
    """Changed items + removed ASNs via ordered merge over two
    ascending-ASN record streams.

    Replaces the dict-of-every-item comparison: only the delta itself
    accumulates, so a sweep snapshot over a store-backed dataset keeps
    O(delta) memory on the new side (the parent side is materialized by
    the caller's delta-chain replay).  Items compare by their
    :func:`record_to_item` shape, exactly as the dict version did.
    """
    changed: List[Dict[str, object]] = []
    removed: List[int] = []
    sentinel = object()
    new_iter, old_iter = iter(new_records), iter(old_records)
    new = next(new_iter, sentinel)
    old = next(old_iter, sentinel)
    while new is not sentinel or old is not sentinel:
        if old is sentinel or (new is not sentinel and new.asn < old.asn):
            changed.append(record_to_item(new))
            new = next(new_iter, sentinel)
        elif new is sentinel or old.asn < new.asn:
            removed.append(old.asn)
            old = next(old_iter, sentinel)
        else:
            new_item = record_to_item(new)
            if new_item != record_to_item(old):
                changed.append(new_item)
            new = next(new_iter, sentinel)
            old = next(old_iter, sentinel)
    return changed, removed


def _write_atomic(path: str, chunks) -> None:
    """Write a document from its chunk stream via tmp file + rename, so
    a crash mid-write never leaves a truncated version on disk.  The
    tmp name carries the pid so two writers racing on the same root
    never stream into each other's half-written file."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        for chunk in chunks:
            handle.write(chunk)
    os.replace(tmp, path)


@dataclass(frozen=True)
class SnapshotInfo:
    """Manifest entry for one stored version.

    Attributes:
        version: 1-based version number (dense, ascending).
        kind: ``full`` (verbatim dataset JSON) or ``delta``.
        parent: The version this delta applies to (None for fulls).
        filename: Document file name inside the store root.
        since_day: Sweep window lower bound (exclusive), when known.
        through_day: Sweep window upper bound (inclusive), when known.
        record_count: Records in the materialized dataset.
        changed: Records added/replaced relative to the parent.
        removed: ASNs dropped relative to the parent.
        digest: blake2b-128 of the materialized full JSON document.
        note: Free-form release note.
        provenance: Sweep provenance (new/updated ASN lists, counts).
        checkpoint: File name of the checkpoint document stored next to
            a promoted delta (None for plain deltas and fulls).
    """

    version: int
    kind: str
    parent: Optional[int]
    filename: str
    since_day: Optional[int]
    through_day: Optional[int]
    record_count: int
    changed: int
    removed: int
    digest: str
    note: str = ""
    provenance: Dict[str, object] = field(default_factory=dict)
    checkpoint: Optional[str] = None

    @property
    def is_base(self) -> bool:
        """Whether this version stores a full document on disk (a full
        snapshot or a checkpointed delta) — i.e. replay can start here."""
        return self.kind == "full" or self.checkpoint is not None

    def to_manifest(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "version": self.version,
            "kind": self.kind,
            "parent": self.parent,
            "filename": self.filename,
            "since_day": self.since_day,
            "through_day": self.through_day,
            "record_count": self.record_count,
            "changed": self.changed,
            "removed": self.removed,
            "digest": self.digest,
            "note": self.note,
            "provenance": self.provenance,
        }
        if self.checkpoint is not None:
            document["checkpoint"] = self.checkpoint
        return document

    @classmethod
    def from_manifest(cls, item: Dict[str, object]) -> "SnapshotInfo":
        return cls(
            version=int(item["version"]),
            kind=str(item["kind"]),
            parent=item.get("parent"),
            filename=str(item["filename"]),
            since_day=item.get("since_day"),
            through_day=item.get("through_day"),
            record_count=int(item.get("record_count", 0)),
            changed=int(item.get("changed", 0)),
            removed=int(item.get("removed", 0)),
            digest=str(item.get("digest", "")),
            note=str(item.get("note", "")),
            provenance=dict(item.get("provenance", {})),
            checkpoint=item.get("checkpoint"),
        )


class SnapshotStore:
    """An on-disk, append-only history of dataset releases."""

    def __init__(
        self,
        root: str,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        """Open (or create) the store at ``root``.

        ``checkpoint_every=K`` promotes every K-th consecutive delta to
        a checkpoint.  The setting persists in the manifest, so a store
        opened without the argument keeps checkpointing at the cadence
        it was created with; passing it on an existing store changes
        the cadence from the next save on.
        """
        self._root = str(root)
        self._versions: List[SnapshotInfo] = []
        #: Free-form store metadata (the CLI records world provenance
        #: here so ``refresh`` can rebuild the same world); persisted in
        #: the manifest.  Mutate via :meth:`set_meta`.
        self.meta: Dict[str, object] = {}
        self._checkpoint_every: Optional[int] = None
        os.makedirs(self._root, exist_ok=True)
        manifest_path = os.path.join(self._root, _MANIFEST)
        if os.path.exists(manifest_path):
            self._load_manifest(manifest_path)
        if checkpoint_every is not None:
            if int(checkpoint_every) < 1:
                raise SnapshotError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            self._checkpoint_every = int(checkpoint_every)

    # -- manifest -----------------------------------------------------------

    def _load_manifest(self, path: str) -> None:
        with open(path) as handle:
            document = json.load(handle)
        if document.get("format") != MANIFEST_FORMAT:
            raise SnapshotError(
                f"unsupported manifest format "
                f"{document.get('format')!r} in {path}"
            )
        self._versions = [
            SnapshotInfo.from_manifest(item)
            for item in document.get("versions", ())
        ]
        for position, info in enumerate(self._versions, start=1):
            if info.version != position:
                raise SnapshotError(
                    f"manifest versions are not dense: expected "
                    f"v{position}, found v{info.version}"
                )
        self.meta = dict(document.get("meta", {}))
        every = document.get("checkpoint_every")
        self._checkpoint_every = int(every) if every else None

    def _count_disk_versions(self) -> int:
        """How many versions the on-disk manifest holds right now."""
        path = os.path.join(self._root, _MANIFEST)
        if not os.path.exists(path):
            return 0
        try:
            with open(path) as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SnapshotError(
                f"cannot re-read manifest {path}: {exc}"
            ) from exc
        return len(document.get("versions", ()))

    def _write_manifest(self, expected_on_disk: Optional[int] = None) -> None:
        """Persist the manifest atomically.

        ``expected_on_disk`` is the version count the on-disk manifest
        must still hold; a mismatch means another handle appended since
        this one last read it, and blindly renaming over their manifest
        would orphan their documents and mint a colliding version
        number.  Detection, not locking: the caller gets a
        :class:`SnapshotError` and must reopen the store.
        """
        if expected_on_disk is not None:
            on_disk = self._count_disk_versions()
            if on_disk != expected_on_disk:
                raise SnapshotError(
                    f"snapshot store {self._root} changed under this "
                    f"handle: the manifest holds {on_disk} version(s) "
                    f"on disk but this handle expected "
                    f"{expected_on_disk}; reopen the store and retry"
                )
        document = {
            "format": MANIFEST_FORMAT,
            "meta": self.meta,
            "versions": [info.to_manifest() for info in self._versions],
        }
        if self._checkpoint_every is not None:
            document["checkpoint_every"] = self._checkpoint_every
        path = os.path.join(self._root, _MANIFEST)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(document, handle, indent=2)
        os.replace(tmp, path)

    def set_meta(self, meta: Dict[str, object]) -> None:
        """Replace the store metadata and persist the manifest."""
        self.meta = dict(meta)
        self._write_manifest(expected_on_disk=len(self._versions))

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._versions)

    @property
    def root(self) -> str:
        """The store's root directory."""
        return self._root

    @property
    def checkpoint_every(self) -> Optional[int]:
        """Checkpoint cadence in deltas (None: never promote)."""
        return self._checkpoint_every

    def versions(self) -> Tuple[SnapshotInfo, ...]:
        """Manifest entries, ascending by version."""
        return tuple(self._versions)

    def latest(self) -> Optional[SnapshotInfo]:
        """The newest version's manifest entry, or None when empty."""
        return self._versions[-1] if self._versions else None

    def info(self, version: int) -> SnapshotInfo:
        """Manifest entry for one version (SnapshotError if absent)."""
        if not 1 <= version <= len(self._versions):
            raise SnapshotError(
                f"no snapshot version {version} (store has "
                f"{len(self._versions)})"
            )
        return self._versions[version - 1]

    # -- writing ------------------------------------------------------------

    def _deltas_since_base(self) -> int:
        """Consecutive trailing deltas with no full document on disk."""
        count = 0
        for info in reversed(self._versions):
            if info.is_base:
                break
            count += 1
        return count

    def _write_full_document(self, filename: str, dataset) -> str:
        """Stream the full JSON document to ``filename``, returning its
        digest (hashed chunk by chunk — one pass, O(1) memory)."""
        hasher = hashlib.blake2b(digest_size=16)

        def hashed_chunks():
            for chunk in iter_json_chunks(dataset):
                hasher.update(chunk.encode("utf-8"))
                yield chunk

        _write_atomic(os.path.join(self._root, filename), hashed_chunks())
        return hasher.hexdigest()

    def save(
        self,
        dataset: ASdbDataset,
        window: Optional[Tuple[int, int]] = None,
        provenance: Optional[Dict[str, object]] = None,
        note: str = "",
        full: bool = False,
        runlog=None,
    ) -> SnapshotInfo:
        """Record ``dataset`` as the next version.

        The first version (or ``full=True``) stores the complete
        :func:`dataset_to_json` document verbatim; later versions store
        only the items whose serialized form changed since the parent,
        plus removed ASNs.  Every ``checkpoint_every``-th consecutive
        delta additionally stores the full document as a checkpoint, so
        replay depth stays bounded.  ``window`` is the ``(since_day,
        through_day]`` sweep window that produced the release.  With a
        run ledger passed, the save emits one ``snapshot.saved`` event
        carrying the new version's manifest facts (plus a
        ``snapshot.checkpoint`` event when the save was promoted).

        ``dataset`` may be any :class:`~repro.core.store.DatasetStore`
        backend.  Full documents stream chunk by chunk to a tmp file
        (digested incrementally, then renamed into place); delta saves
        stream the new side through an ordered merge against the
        materialized parent, so a store-backed sweep snapshot never
        holds the new dataset resident.  Both document kinds land
        atomically (tmp file + rename), and the manifest append detects
        a concurrent writer before minting a version number.
        """
        on_disk = self._count_disk_versions()
        if on_disk != len(self._versions):
            raise SnapshotError(
                f"snapshot store {self._root} changed under this "
                f"handle: the manifest holds {on_disk} version(s) on "
                f"disk but this handle expected {len(self._versions)}; "
                f"reopen the store and retry"
            )
        version = len(self._versions) + 1
        since_day, through_day = window if window is not None else (None,
                                                                    None)
        checkpoint: Optional[str] = None
        if version == 1 or full:
            filename = f"v{version:04d}.full.json"
            kind, parent = "full", None
            changed = len(dataset)
            removed: List[int] = []
            digest = self._write_full_document(filename, dataset)
        else:
            parent = version - 1
            previous = self.load(parent)
            changed_items, removed = _delta_by_merge(dataset, previous)
            filename = f"v{version:04d}.delta.json"
            payload = json.dumps(
                {
                    "format": DELTA_FORMAT,
                    "base": parent,
                    "changed": changed_items,
                    "removed": removed,
                },
                indent=2,
            )
            _write_atomic(os.path.join(self._root, filename), (payload,))
            kind, changed = "delta", len(changed_items)
            if (self._checkpoint_every is not None
                    and self._deltas_since_base() + 1
                    >= self._checkpoint_every):
                checkpoint = f"v{version:04d}.ckpt.json"
                digest = self._write_full_document(checkpoint, dataset)
            else:
                digest = dataset_digest(dataset)
        info = SnapshotInfo(
            version=version,
            kind=kind,
            parent=parent,
            filename=filename,
            since_day=since_day,
            through_day=through_day,
            record_count=len(dataset),
            changed=changed,
            removed=len(removed),
            digest=digest,
            note=note,
            provenance=dict(provenance or {}),
            checkpoint=checkpoint,
        )
        self._versions.append(info)
        try:
            self._write_manifest(expected_on_disk=version - 1)
        except SnapshotError:
            self._versions.pop()
            raise
        if runlog is not None:
            runlog.emit(
                "snapshot.saved",
                version=info.version,
                kind=info.kind,
                records=info.record_count,
                changed=info.changed,
                removed=info.removed,
                digest=info.digest,
                since_day=info.since_day,
                through_day=info.through_day,
                checkpoint=checkpoint is not None,
            )
            if checkpoint is not None:
                runlog.emit(
                    "snapshot.checkpoint",
                    version=info.version,
                    filename=checkpoint,
                    records=info.record_count,
                    every=self._checkpoint_every,
                )
        return info

    # -- reading ------------------------------------------------------------

    def _read_file(self, filename: str, version: int) -> str:
        path = os.path.join(self._root, filename)
        try:
            with open(path) as handle:
                return handle.read()
        except OSError as exc:
            raise SnapshotCorruption(
                f"cannot read v{version} document {path}: {exc}"
            ) from exc

    def _full_document_name(
        self,
        info: SnapshotInfo,
        use_checkpoints: bool = True,
    ) -> Optional[str]:
        """File holding ``info``'s complete document, if one exists."""
        if info.kind == "full":
            return info.filename
        if use_checkpoints and info.checkpoint is not None:
            return info.checkpoint
        return None

    def _full_items(self, name: str, version: int) -> Iterator[dict]:
        """Record items of a stored full document, in file order."""
        document = json.loads(self._read_file(name, version))
        if document.get("format") != DATASET_FORMAT:
            raise SnapshotCorruption(
                f"v{version}: unsupported document format "
                f"{document.get('format')!r}"
            )
        return iter(document["records"])

    def changes(self, version: int) -> Tuple[List[dict], List[int]]:
        """The recorded delta of one version: ``(changed record items,
        removed ASNs)`` exactly as stored on disk.

        The temporal layer's scan primitive: timelines and churn walk
        the chain through this without materializing any dataset.  Full
        versions record no delta (SnapshotError).
        """
        info = self.info(version)
        if info.kind != "delta":
            raise SnapshotError(
                f"v{version} is a full snapshot; it records no delta"
            )
        delta = json.loads(self._read_file(info.filename, info.version))
        if delta.get("format") != DELTA_FORMAT:
            raise SnapshotCorruption(
                f"v{version}: unsupported delta format "
                f"{delta.get('format')!r}"
            )
        return (
            list(delta.get("changed", ())),
            [int(asn) for asn in delta.get("removed", ())],
        )

    def deltas_since(
        self, version: int
    ) -> Optional[List[Tuple[SnapshotInfo, List[dict], List[int]]]]:
        """The recorded delta chain from ``version`` (exclusive) to the
        latest, as ``[(info, changed items, removed ASNs), ...]``.

        The serving layer's incremental-refresh hook: a caller holding
        an index built at ``version`` can absorb everything newer by
        applying these deltas in order, never materializing a dataset.
        Returns ``None`` when the chain is not pure deltas — a ``full``
        save after ``version`` records no delta against its parent, so
        an incremental caller must fall back to a full rebuild.
        Raises :class:`SnapshotError` when ``version`` itself is not in
        the store.
        """
        self.info(version)  # range check, with the usual error
        chain: List[Tuple[SnapshotInfo, List[dict], List[int]]] = []
        for info in self._versions[version:]:
            if info.kind != "delta" or info.parent != info.version - 1:
                return None
            changed, removed = self.changes(info.version)
            chain.append((info, changed, removed))
        return chain

    @staticmethod
    def _rollback(store) -> None:
        """Best-effort clearing of a partially populated load target, so
        a failed verification never leaves half a version behind in a
        persistent backend."""
        try:
            if hasattr(store, "asns"):
                asns = list(store.asns())
            else:
                asns = [record.asn for record in store]
            for asn in asns:
                store.remove(asn)
            store.flush()
        except Exception:  # pragma: no cover - the original error wins
            pass

    def load(
        self,
        version: Optional[int] = None,
        into=None,
        use_checkpoints: bool = True,
    ) -> ASdbDataset:
        """Materialize one version (default: the latest).

        Walks back to the nearest stored full document — a checkpoint
        or a full snapshot — and replays the delta chain forward, so
        reconstruction touches at most ``checkpoint_every`` deltas no
        matter how deep the history is.  ``use_checkpoints=False``
        forces the replay all the way back to the nearest ``full``
        version (the benchmark's baseline, and a recovery path should a
        checkpoint file ever be lost).  The result is verified against
        the version's recorded digest before it is returned; a manifest
        entry with no digest is treated as corruption, never as a
        silent pass.

        With ``into`` (an empty :class:`~repro.core.store.DatasetStore`
        backend, e.g. a :class:`SqliteDatasetStore`), records land in
        that store instead of a fresh in-memory dataset — a sqlite
        target keeps only its write batch resident while the chain
        replays.  If replay or verification fails, the target store is
        rolled back to empty before the error propagates.  The digest
        check streams the result's chunk stream, so it never
        materializes the document either way.
        """
        if version is None:
            latest = self.latest()
            if latest is None:
                raise SnapshotError("snapshot store is empty")
            version = latest.version
        target = self.info(version)

        chain: List[SnapshotInfo] = []
        info = target
        base_name = self._full_document_name(info, use_checkpoints)
        while base_name is None:
            chain.append(info)
            if info.parent is None:
                raise SnapshotCorruption(
                    f"delta v{info.version} has no parent"
                )
            info = self.info(info.parent)
            base_name = self._full_document_name(info, use_checkpoints)
        if into is not None and len(into):
            raise SnapshotError(
                "load target store is not empty: refusing to merge "
                f"v{target.version} into {len(into)} existing records"
            )
        dataset = ASdbDataset() if into is None else into
        try:
            for item in self._full_items(base_name, info.version):
                dataset.add(record_from_item(item))
            for delta_info in reversed(chain):
                delta = json.loads(
                    self._read_file(delta_info.filename, delta_info.version)
                )
                if delta.get("format") != DELTA_FORMAT:
                    raise SnapshotCorruption(
                        f"v{delta_info.version}: unsupported delta format "
                        f"{delta.get('format')!r}"
                    )
                for asn in delta.get("removed", ()):
                    dataset.remove(int(asn))
                for item in delta.get("changed", ()):
                    dataset.add(record_from_item(item))
            dataset.flush()
            if not target.digest:
                raise SnapshotCorruption(
                    f"v{target.version}: manifest entry records no "
                    f"digest; refusing to trust an unverifiable document"
                )
            if dataset_digest(dataset) != target.digest:
                raise SnapshotCorruption(
                    f"v{target.version}: materialized document does not "
                    f"match its recorded digest"
                )
        except BaseException:
            if into is not None:
                self._rollback(into)
            raise
        return dataset

    def materialize(
        self,
        version: Optional[int] = None,
        into=None,
    ) -> Tuple[ASdbDataset, SnapshotInfo]:
        """Materialize one version *with* its manifest identity.

        The serving layer's hook: :meth:`load` answers "give me the
        records", but an index built for query traffic also needs the
        release facts — version number, digest, record count — to stamp
        on every response.  Returns ``(dataset, info)`` where
        ``dataset`` is exactly what :meth:`load` would produce (same
        ``into`` semantics, same digest verification).
        """
        if version is None:
            latest = self.latest()
            if latest is None:
                raise SnapshotError("snapshot store is empty")
            version = latest.version
        return self.load(version, into=into), self.info(version)

    @contextmanager
    def materialize_pair(self, old_version: int, new_version: int):
        """Both versions materialized into throwaway sqlite scratch
        stores, yielded as ``(old_dataset, new_dataset)``.

        The streaming substrate for :meth:`diff` and churn analytics:
        each side replays into its own on-disk store (O(batch)
        residency), and the scratch directory is removed when the
        ``with`` block exits — success or not.
        """
        from .store import SqliteDatasetStore

        old_info = self.info(old_version)
        new_info = self.info(new_version)
        scratch = tempfile.mkdtemp(prefix="asdb-snapdiff-")
        old_ds = new_ds = None
        try:
            old_ds = SqliteDatasetStore(
                os.path.join(scratch, f"v{old_info.version}.sqlite")
            )
            new_ds = SqliteDatasetStore(
                os.path.join(scratch, f"v{new_info.version}.sqlite")
            )
            self.load(old_info.version, into=old_ds)
            self.load(new_info.version, into=new_ds)
            yield old_ds, new_ds
        finally:
            for store in (old_ds, new_ds):
                if store is not None:
                    store.close()
            shutil.rmtree(scratch, ignore_errors=True)

    def read_json(self, version: Optional[int] = None) -> str:
        """The lossless JSON document for one version.

        For versions with a stored full document — full snapshots and
        checkpointed deltas — this is the file verbatim, byte identical
        to the :func:`dataset_to_json` output at save time; other
        deltas are materialized first (which re-serializes through the
        same encoder, so the bytes still match).
        """
        if version is None:
            latest = self.latest()
            if latest is None:
                raise SnapshotError("snapshot store is empty")
            version = latest.version
        info = self.info(version)
        name = self._full_document_name(info)
        if name is not None:
            return self._read_file(name, info.version)
        return dataset_to_json(self.load(version))

    def diff(self, old_version: int, new_version: int) -> DatasetDiff:
        """What changed from ``old_version`` to ``new_version``.

        Both sides stream through scratch sqlite stores and an ordered
        merge, so diffing a million-AS history holds O(batch) records —
        the same discipline as ``save``'s delta path.
        """
        with self.materialize_pair(old_version, new_version) as pair:
            old_ds, new_ds = pair
            return diff_record_streams(iter(new_ds), iter(old_ds))
