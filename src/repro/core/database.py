"""The ASdb dataset store: the artifact the system continuously maintains.

Holds one :class:`ASdbRecord` per classified AS (classification labels,
pipeline stage, chosen domain, contributing sources) and supports the
operations the released dataset needs: lookup, per-category listing,
CSV-style export, and summary statistics.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..obs.trace import ClassificationTrace
from ..taxonomy import LabelSet, naicslite
from .stages import Stage

__all__ = [
    "ASdbRecord",
    "ASdbDataset",
    "DatasetDiff",
    "iter_csv_rows",
    "diff_record_streams",
]


@dataclass(frozen=True)
class DatasetDiff:
    """Differences between two dataset snapshots.

    Attributes:
        added: ASNs present only in the newer snapshot.
        removed: ASNs present only in the older snapshot.
        relabeled: ASNs whose label sets changed.
        stage_changed: ASNs whose labels survived but whose producing
            pipeline stage changed (e.g. a cache hit re-resolved from
            sources after its sibling's metadata churned).  Disjoint
            from ``relabeled``.
    """

    added: Tuple[int, ...]
    removed: Tuple[int, ...]
    relabeled: Tuple[int, ...]
    stage_changed: Tuple[int, ...] = ()

    @property
    def empty(self) -> bool:
        """Whether the snapshots are classification-identical."""
        return not (
            self.added or self.removed or self.relabeled
            or self.stage_changed
        )

    @property
    def changed_asns(self) -> Tuple[int, ...]:
        """Every ASN the diff mentions, ascending, each once."""
        return tuple(
            sorted(
                set(self.added)
                | set(self.removed)
                | set(self.relabeled)
                | set(self.stage_changed)
            )
        )


def iter_csv_rows(records: Iterator["ASdbRecord"]) -> Iterator[List[str]]:
    """Header + one CSV row per label, streamed record by record.

    The single source of the released CSV shape: both the in-memory
    :meth:`ASdbDataset.to_csv` and the sqlite store's streaming export
    render through this iterator, so the two backends cannot drift.
    """
    yield ["ASN", "Layer1", "Layer2", "Sources", "Stage"]
    for record in records:
        if not record.labels:
            yield [f"AS{record.asn}", "", "", "", record.stage.value]
            continue
        for label in record.labels:
            layer1 = naicslite.layer1_by_slug(label.layer1).name
            layer2 = (
                naicslite.layer2_by_name(label.layer2).name
                if label.layer2
                else ""
            )
            yield [
                f"AS{record.asn}",
                layer1,
                layer2,
                "|".join(record.sources),
                record.stage.value,
            ]


def diff_record_streams(
    new_records: Iterator["ASdbRecord"],
    old_records: Iterator["ASdbRecord"],
) -> "DatasetDiff":
    """Diff two ascending-ASN record streams in O(diff) memory.

    The ordered-merge core of both :meth:`ASdbDataset.diff` and the
    sqlite store's streaming diff: neither side is materialized, only
    the changed-ASN buckets accumulate.  Both iterators must yield
    records in strictly ascending ASN order (every backend does).
    """
    added: List[int] = []
    removed: List[int] = []
    relabeled: List[int] = []
    stage_changed: List[int] = []
    sentinel = object()
    new_iter, old_iter = iter(new_records), iter(old_records)
    new = next(new_iter, sentinel)
    old = next(old_iter, sentinel)
    while new is not sentinel or old is not sentinel:
        if old is sentinel or (
            new is not sentinel and new.asn < old.asn
        ):
            added.append(new.asn)
            new = next(new_iter, sentinel)
        elif new is sentinel or old.asn < new.asn:
            removed.append(old.asn)
            old = next(old_iter, sentinel)
        else:
            if new.labels != old.labels:
                relabeled.append(new.asn)
            elif new.stage is not old.stage:
                stage_changed.append(new.asn)
            new = next(new_iter, sentinel)
            old = next(old_iter, sentinel)
    return DatasetDiff(
        added=tuple(added),
        removed=tuple(removed),
        relabeled=tuple(relabeled),
        stage_changed=tuple(stage_changed),
    )


@dataclass(frozen=True)
class ASdbRecord:
    """One AS's entry in the ASdb dataset.

    Attributes:
        asn: The AS number.
        labels: NAICSlite classification (empty = unclassified).
        stage: Pipeline stage that produced the answer.
        domain: The chosen organization domain, if any.
        sources: Data sources whose categories contributed.
        org_key: Organization cache key (shared by sibling ASes).
        cache_keys: Every cache key the record was stored under (the
            name-derived key plus the domain-derived one); reclassification
            invalidates all of them.
        degraded_sources: Sources that could not answer while this AS
            was classified (outage, rate limit, retry exhaustion,
            breaker open) — the record was produced from the remaining
            stages.  Empty on a healthy run.
        trace: Per-stage span trace, when the pipeline ran with tracing
            enabled (excluded from equality/repr: two records with the
            same answer are the same record).
    """

    asn: int
    labels: LabelSet
    stage: Stage
    domain: Optional[str] = None
    sources: Tuple[str, ...] = ()
    org_key: Optional[str] = None
    cache_keys: Tuple[str, ...] = ()
    degraded_sources: Tuple[str, ...] = ()
    trace: Optional[ClassificationTrace] = field(
        default=None, compare=False, repr=False
    )

    @property
    def classified(self) -> bool:
        """Whether any category was assigned."""
        return bool(self.labels)

    @property
    def confidence(self) -> float:
        """Expected correctness of this record, from its stage's
        Table-8 prior (0.0 for unclassified records)."""
        if not self.classified:
            return 0.0
        return self.stage.prior_accuracy


class ASdbDataset:
    """In-memory ASdb dataset with export and summary helpers."""

    def __init__(self) -> None:
        self._records: Dict[int, ASdbRecord] = {}

    def add(self, record: ASdbRecord) -> None:
        """Insert or replace one AS's record."""
        self._records[record.asn] = record

    def get(self, asn: int) -> Optional[ASdbRecord]:
        """The record for an ASN, or None."""
        return self._records.get(asn)

    def remove(self, asn: int) -> Optional[ASdbRecord]:
        """Drop and return one AS's record (None if absent).

        Reclassification removes the superseded record *before* the new
        pass runs, so no stale entry survives even if that pass fails.
        """
        return self._records.pop(asn, None)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, asn: int) -> bool:
        return asn in self._records

    def __iter__(self) -> Iterator[ASdbRecord]:
        for asn in sorted(self._records):
            yield self._records[asn]

    def iter_range(
        self,
        start: Optional[int] = None,
        stop: Optional[int] = None,
    ) -> Iterator[ASdbRecord]:
        """Records with ``start <= asn <= stop``, ascending.

        The cursor surface of the :class:`~repro.core.store.DatasetStore`
        protocol; the in-memory backend filters its sorted key list.
        """
        for asn in sorted(self._records):
            if start is not None and asn < start:
                continue
            if stop is not None and asn > stop:
                break
            yield self._records[asn]

    def flush(self) -> None:
        """No-op: the in-memory dataset has no write buffer."""

    def close(self) -> None:
        """No-op: the in-memory dataset holds no external resources."""

    def coverage(self) -> float:
        """Fraction of stored ASes with at least one category."""
        if not self._records:
            return 0.0
        classified = sum(
            1 for record in self._records.values() if record.classified
        )
        return classified / len(self._records)

    def asns_in_layer1(self, layer1_slug: str) -> List[int]:
        """ASNs classified under a given layer 1 category."""
        return sorted(
            asn
            for asn, record in self._records.items()
            if layer1_slug in record.labels.layer1_slugs()
        )

    def stage_counts(self) -> Dict[Stage, int]:
        """Number of records per pipeline stage."""
        counts: Dict[Stage, int] = {}
        for record in self._records.values():
            counts[record.stage] = counts.get(record.stage, 0) + 1
        return counts

    def category_histogram(self) -> Dict[str, int]:
        """AS count per layer 1 slug (an AS can count in several)."""
        histogram: Dict[str, int] = {}
        for record in self._records.values():
            for slug in record.labels.layer1_slugs():
                histogram[slug] = histogram.get(slug, 0) + 1
        return histogram

    def diff(self, other: "ASdbDataset") -> "DatasetDiff":
        """What changed from ``other`` (older) to ``self`` (newer).

        The maintenance story's missing piece: after a sweep, operators
        want to see which ASes appeared, disappeared, or changed
        classification.
        """
        return diff_record_streams(iter(self), iter(other))

    def to_csv(self) -> str:
        """Export in the released dataset's CSV shape:
        ``ASN,Layer1,Layer2,Source,Stage``, one row per label."""
        buffer = io.StringIO()
        csv.writer(buffer).writerows(iter_csv_rows(iter(self)))
        return buffer.getvalue()
