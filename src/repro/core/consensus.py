"""Consensus over data-source matches (Figure 4's final phase).

ASdb's rule (Section 5.1): when more than one source has information about
the AS and any category overlap exists between sources, both are labeled
trustworthy and the union of the *overlapping* sources' categories is
returned.  With multiple sources but no overlap, the category comes from
the source with the best measured overall accuracy:
IPinfo (96%) > DnB (96%) > PeeringDB (95%) > Zvelo (88%) > Crunchbase (83%).

Alternative strategies (single-best-source, majority vote) are provided
for the consensus ablation bench.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..datasources.base import SourceMatch
from ..taxonomy import Label, LabelSet
from .stages import Stage

__all__ = [
    "ACCURACY_RANK",
    "ConsensusResult",
    "resolve_consensus",
    "single_best_source",
    "majority_vote",
]

#: Source name -> measured overall accuracy (Section 5.1).  Higher wins.
ACCURACY_RANK: Dict[str, float] = {
    "ipinfo": 0.96,
    "dnb": 0.96,
    "peeringdb": 0.95,
    "zvelo": 0.88,
    "crunchbase": 0.83,
    # Sources the deployed system dropped, ranked for ablations only.
    "zoominfo": 0.66,
    "clearbit": 0.55,
}

#: Deterministic tie-break order when accuracies are equal (IPinfo is
#: listed first in the paper's ranking).
_TIE_ORDER = [
    "ipinfo", "dnb", "peeringdb", "zvelo", "crunchbase", "zoominfo",
    "clearbit",
]


@dataclass(frozen=True)
class ConsensusResult:
    """Outcome of the consensus phase.

    Attributes:
        labels: The NAICSlite classification (possibly empty).
        stage: Which Table-8 stage applied.
        trusted_sources: The sources whose categories made it into the
            answer.
    """

    labels: LabelSet
    stage: Stage
    trusted_sources: Tuple[str, ...] = ()


def _labels_overlap(a: LabelSet, b: LabelSet) -> bool:
    """Category overlap between two sources' label sets.

    Layer 2 overlap when both provide layer 2 information; otherwise
    agreement at layer 1 counts (e.g. Crunchbase's generic layer 1
    buckets agreeing with a D&B NAICS translation).
    """
    if a.has_layer2 and b.has_layer2:
        return a.overlaps_layer2(b)
    return a.overlaps_layer1(b)


def _rank_key(source_name: str) -> Tuple[float, int]:
    accuracy = ACCURACY_RANK.get(source_name, 0.0)
    try:
        tie = -_TIE_ORDER.index(source_name)
    except ValueError:
        tie = -len(_TIE_ORDER)
    return (accuracy, tie)


def resolve_consensus(
    matches: Dict[str, SourceMatch],
) -> ConsensusResult:
    """Apply ASdb's consensus rule to the accepted source matches.

    Matches with empty NAICSlite translations (e.g. IPinfo "business")
    carry no category information and do not count as sources here.
    """
    informative = {
        name: match for name, match in matches.items() if match.labels
    }
    if not informative:
        return ConsensusResult(LabelSet(), Stage.ZERO_SOURCES)
    if len(informative) == 1:
        (name, match), = informative.items()
        return ConsensusResult(match.labels, Stage.ONE_SOURCE, (name,))

    # Find all pairs that agree; union the categories of every source in
    # some agreeing pair.
    names = sorted(informative)
    agreeing: set = set()
    for index, first in enumerate(names):
        for second in names[index + 1:]:
            if _labels_overlap(
                informative[first].labels, informative[second].labels
            ):
                agreeing.add(first)
                agreeing.add(second)
    if agreeing:
        union = LabelSet()
        for name in sorted(agreeing):
            union = union.union(informative[name].labels)
        return ConsensusResult(
            union, Stage.MULTI_AGREE, tuple(sorted(agreeing))
        )

    # No agreement: auto-choose the most accurate source.
    best = max(names, key=_rank_key)
    return ConsensusResult(
        informative[best].labels, Stage.MULTI_DISAGREE, (best,)
    )


def single_best_source(matches: Dict[str, SourceMatch]) -> ConsensusResult:
    """Ablation strategy: always trust the highest-ranked source."""
    informative = {
        name: match for name, match in matches.items() if match.labels
    }
    if not informative:
        return ConsensusResult(LabelSet(), Stage.ZERO_SOURCES)
    best = max(informative, key=_rank_key)
    stage = (
        Stage.ONE_SOURCE
        if len(informative) == 1
        else Stage.MULTI_DISAGREE
    )
    return ConsensusResult(informative[best].labels, stage, (best,))


def majority_vote(matches: Dict[str, SourceMatch]) -> ConsensusResult:
    """Ablation strategy: keep layer 2 categories applied by the most
    sources (all tied winners kept)."""
    informative = {
        name: match for name, match in matches.items() if match.labels
    }
    if not informative:
        return ConsensusResult(LabelSet(), Stage.ZERO_SOURCES)
    votes: Counter = Counter()
    for match in informative.values():
        for slug in match.labels.layer2_slugs():
            votes[slug] += 1
    if not votes:
        # Layer-1-only information everywhere; fall back to best source.
        return single_best_source(matches)
    top = max(votes.values())
    winners = sorted(slug for slug, count in votes.items() if count == top)
    labels = LabelSet.from_layer2_slugs(winners)
    stage = (
        Stage.MULTI_AGREE
        if top >= 2
        else (
            Stage.ONE_SOURCE
            if len(informative) == 1
            else Stage.MULTI_DISAGREE
        )
    )
    return ConsensusResult(labels, stage, tuple(sorted(informative)))
