"""Dataset persistence: the released-dataset formats.

The real ASdb dataset ships as CSV from asdb.stanford.edu.  This module
round-trips :class:`~repro.core.database.ASdbDataset` through two formats:

* the CSV shape of :meth:`ASdbDataset.to_csv` (one row per label);
* a JSON document carrying full per-record structure (stage, sources,
  domain), which CSV cannot represent losslessly.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, IO, Iterable, Iterator, List, Optional, Tuple

from ..taxonomy import Label, LabelSet, naicslite
from .database import ASdbDataset, ASdbRecord, iter_csv_rows
from .stages import Stage

__all__ = [
    "dataset_from_csv",
    "dataset_to_json",
    "dataset_from_json",
    "record_to_item",
    "record_from_item",
    "iter_json_chunks",
    "write_json",
    "write_csv",
    "CSV_HEADER",
]

#: The released CSV shape's exact header (one row per label).
CSV_HEADER = ("ASN", "Layer1", "Layer2", "Sources", "Stage")

_LAYER1_BY_NAME = {
    category.name: category for category in naicslite.ALL_LAYER1
}
_LAYER2_BY_NAME: Dict[Tuple[int, str], str] = {
    (sub.layer1_code, sub.name): sub.slug for sub in naicslite.ALL_LAYER2
}


def dataset_from_csv(text: str) -> ASdbDataset:
    """Parse a dataset from the :meth:`ASdbDataset.to_csv` shape.

    Rows for the same ASN merge into one record (multi-label).  Raises
    ValueError on malformed rows or unknown category names; every
    row-level error names the offending CSV row number.
    """
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if header is None:
        raise ValueError("missing CSV header")
    if tuple(header) != CSV_HEADER:
        raise ValueError(
            f"malformed CSV header: expected {list(CSV_HEADER)!r}, "
            f"got {header!r}"
        )
    accumulated: Dict[int, Dict[str, object]] = {}
    for row in reader:
        if not row:
            continue
        line = reader.line_num
        if len(row) != 5:
            raise ValueError(
                f"row {line}: expected 5 columns, got {len(row)}: {row!r}"
            )
        asn_text, layer1_name, layer2_name, sources_text, stage_text = row
        if not asn_text.startswith("AS") or not asn_text[2:].isdigit():
            raise ValueError(f"row {line}: bad ASN field {asn_text!r}")
        asn = int(asn_text[2:])
        if asn not in accumulated:
            try:
                Stage(stage_text)
            except ValueError:
                raise ValueError(
                    f"row {line}: unknown stage {stage_text!r}"
                ) from None
        sources = tuple(sources_text.split("|")) if sources_text else ()
        slot = accumulated.setdefault(
            asn,
            {"labels": set(), "sources": sources, "stage": stage_text},
        )
        # Every row of a multi-label ASN must agree on the per-record
        # fields; silently keeping one of the conflicting values would
        # fabricate a record no exporter ever wrote.
        if slot["stage"] != stage_text:
            raise ValueError(
                f"row {line}: conflicting stages for AS{asn}: "
                f"{slot['stage']!r} vs {stage_text!r}"
            )
        if slot["sources"] != sources:
            raise ValueError(
                f"row {line}: conflicting sources for AS{asn}: "
                f"{slot['sources']!r} vs {sources!r}"
            )
        if layer1_name:
            layer1 = _LAYER1_BY_NAME.get(layer1_name)
            if layer1 is None:
                raise ValueError(
                    f"row {line}: unknown layer 1 name {layer1_name!r}"
                )
            if layer2_name:
                slug = _LAYER2_BY_NAME.get((layer1.code, layer2_name))
                if slug is None:
                    raise ValueError(
                        f"row {line}: unknown layer 2 name "
                        f"{layer2_name!r} under {layer1_name!r}"
                    )
                slot["labels"].add(Label.from_layer2(slug))
            else:
                slot["labels"].add(Label(layer1=layer1.slug))
    dataset = ASdbDataset()
    for asn, slot in accumulated.items():
        dataset.add(
            ASdbRecord(
                asn=asn,
                labels=LabelSet(slot["labels"]),
                stage=Stage(slot["stage"]),
                sources=slot["sources"],
            )
        )
    return dataset


def record_to_item(record: ASdbRecord) -> Dict[str, object]:
    """The JSON-able item for one record (the document's unit shape).

    A pure function of the record's released fields, so two records
    that serialize equal *are* equal for snapshot/delta purposes; the
    snapshot store's delta encoder compares items, not records, and
    never diffs on fields the release format does not carry.
    """
    item: Dict[str, object] = {
        "asn": record.asn,
        "labels": [
            {"layer1": label.layer1, "layer2": label.layer2}
            for label in record.labels
        ],
        "stage": record.stage.value,
        "domain": record.domain,
        "sources": list(record.sources),
        "org_key": record.org_key,
    }
    # Only emitted when a source actually degraded, so documents
    # from healthy runs stay byte-identical to the previous format.
    if record.degraded_sources:
        item["degraded_sources"] = list(record.degraded_sources)
    return item


def record_from_item(item: Dict[str, object]) -> ASdbRecord:
    """Rebuild one record from its :func:`record_to_item` shape."""
    labels = LabelSet(
        Label(layer1=entry["layer1"], layer2=entry.get("layer2"))
        for entry in item["labels"]
    )
    return ASdbRecord(
        asn=int(item["asn"]),
        labels=labels,
        stage=Stage(item["stage"]),
        domain=item.get("domain"),
        sources=tuple(item.get("sources", ())),
        org_key=item.get("org_key"),
        degraded_sources=tuple(item.get("degraded_sources", ())),
    )


def iter_json_chunks(records: Iterable[ASdbRecord]) -> Iterator[str]:
    """The lossless JSON document as a chunk stream, one record resident
    at a time.

    Concatenating the chunks yields *exactly* the bytes of
    ``json.dumps({"format": "asdb-repro/1", "records": [...]},
    indent=2)`` — :func:`dataset_to_json` is defined as that
    concatenation, so every backend that streams through here is
    byte-identical to the in-memory export by construction.  The
    snapshot store hashes and writes these chunks without ever
    materializing the document.
    """
    yield '{\n  "format": "asdb-repro/1",\n  "records": ['
    first = True
    for record in records:
        body = json.dumps(record_to_item(record), indent=2)
        # Records sit two levels deep in the document; json escapes
        # newlines inside values, so prefixing each line re-nests the
        # standalone dump exactly.
        indented = "\n".join(
            "    " + bodyline for bodyline in body.splitlines()
        )
        yield ("\n" if first else ",\n") + indented
        first = False
    yield "]\n}" if first else "\n  ]\n}"


def write_json(records: Iterable[ASdbRecord], handle: IO[str]) -> int:
    """Stream the lossless JSON document to ``handle``; returns the
    number of records written."""
    written = 0

    def counted() -> Iterator[ASdbRecord]:
        nonlocal written
        for record in records:
            written += 1
            yield record

    for chunk in iter_json_chunks(counted()):
        handle.write(chunk)
    return written


def write_csv(records: Iterable[ASdbRecord], handle: IO[str]) -> None:
    """Stream the released CSV shape to ``handle``, row by row."""
    csv.writer(handle).writerows(iter_csv_rows(iter(records)))


def dataset_to_json(dataset: ASdbDataset) -> str:
    """Serialize a dataset to a JSON document (lossless)."""
    return "".join(iter_json_chunks(dataset))


def dataset_from_json(text: str) -> ASdbDataset:
    """Parse a dataset from :func:`dataset_to_json` output."""
    document = json.loads(text)
    if document.get("format") != "asdb-repro/1":
        raise ValueError(
            f"unsupported format marker {document.get('format')!r}"
        )
    dataset = ASdbDataset()
    for item in document["records"]:
        dataset.add(record_from_item(item))
    return dataset
