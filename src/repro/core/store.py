"""Dataset storage backends: the ``DatasetStore`` protocol.

The released dataset historically lived in memory (:class:`ASdbDataset`)
and shipped as whole-document JSON/CSV.  At millions of ASes every
load, diff, snapshot, and maintenance sweep then materializes the
world.  This module defines the storage contract both backends speak
and adds an indexed sqlite implementation whose hot paths are
streaming:

* :class:`DatasetStore` — the protocol: the :class:`ASdbDataset`
  record surface (``add``/``get``/``remove``/iteration/aggregates)
  plus ``iter_range`` (cursor iteration over an ASN range), ``flush``
  (persist buffered writes in one transaction), and ``close``.
  :class:`ASdbDataset` itself implements it, so existing JSON/CSV
  persistence *is* a backend.
* :class:`SqliteDatasetStore` — stdlib ``sqlite3`` with an explicit
  schema indexed on ASN (primary key), layer-1 slug, and stage.
  Writes buffer up to ``batch_size`` records and land as batched
  upserts inside one transaction per flush; reads stream through
  cursors, so a full export or diff holds O(batch) records resident.
  JSON/CSV exports go through the same
  :func:`~repro.core.persistence.iter_json_chunks` /
  :func:`~repro.core.database.iter_csv_rows` streams as the in-memory
  dataset and are byte-identical to ``dataset_to_json`` / ``to_csv``.
* :class:`JsonDatasetStore` — the existing JSON persistence behind the
  same protocol: an in-memory dataset bound to a file, loaded on open
  and atomically rewritten on ``flush``.
* :func:`open_store` — ``sqlite:PATH`` / ``json:PATH`` / ``memory:``
  URL parsing for the CLI's ``--store`` / ``--dataset-store`` flags.
* :func:`diff_stores` — ordered-merge streaming diff between any two
  backends in O(diff) memory.

Observability: pass a :class:`~repro.obs.MetricsRegistry` and every
flush meters upserts/deletes/latency (``asdb_store_*``); pass a
:class:`~repro.obs.runlog.RunLog` and each flush emits a
``store.flush`` ledger event.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
import sqlite3
from typing import Dict, IO, Iterable, Iterator, List, Optional, Union

from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..obs.runlog import NULL_RUNLOG
from .database import (
    ASdbDataset,
    ASdbRecord,
    DatasetDiff,
    diff_record_streams,
)
from .persistence import (
    dataset_from_json,
    iter_json_chunks,
    record_from_item,
    record_to_item,
    write_csv,
    write_json,
)
from .stages import Stage

__all__ = [
    "DatasetStore",
    "SqliteDatasetStore",
    "JsonDatasetStore",
    "StoreError",
    "open_store",
    "diff_stores",
]

#: Schema version marker recorded in the sqlite ``meta`` table.
SQLITE_FORMAT = "asdb-repro/sqlite/1"

#: Alias documenting what the protocol admits: the in-memory dataset is
#: itself a conforming backend.
DatasetStore = Union[ASdbDataset, "SqliteDatasetStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS records (
    asn        INTEGER PRIMARY KEY,
    stage      TEXT NOT NULL,
    classified INTEGER NOT NULL,
    item       TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS labels (
    asn    INTEGER NOT NULL,
    layer1 TEXT NOT NULL,
    layer2 TEXT
);
CREATE INDEX IF NOT EXISTS idx_records_stage ON records (stage);
CREATE INDEX IF NOT EXISTS idx_labels_layer1 ON labels (layer1, asn);
CREATE INDEX IF NOT EXISTS idx_labels_asn ON labels (asn);
"""

_MISSING = object()


class StoreError(ValueError):
    """A dataset-store operation could not proceed."""


def _encode_record(record: ASdbRecord) -> str:
    """The stored row payload: the release item, plus the cache keys.

    ``cache_keys`` never appear in exports (``record_to_item`` does not
    emit them), but :meth:`~repro.core.pipeline.ASdb.forget` needs them
    to invalidate every cache alias of a purged record — dropping them
    on the roundtrip would leave stale cache entries serving
    pre-update answers during maintenance sweeps.
    """
    item = record_to_item(record)
    if record.cache_keys:
        item["cache_keys"] = list(record.cache_keys)
    return json.dumps(item, separators=(",", ":"))


def _decode_record(payload: str) -> ASdbRecord:
    """Rebuild a record from its stored row payload."""
    item = json.loads(payload)
    cache_keys = tuple(item.pop("cache_keys", ()))
    record = record_from_item(item)
    if cache_keys:
        record = dataclasses.replace(record, cache_keys=cache_keys)
    return record


class SqliteDatasetStore:
    """Indexed, disk-backed dataset store over stdlib ``sqlite3``.

    Implements the full :class:`ASdbDataset` surface, so the pipeline,
    persistence helpers, :class:`~repro.core.snapshots.SnapshotStore`,
    and :class:`~repro.core.maintenance.MaintenanceDaemon` can use it
    as a drop-in ``dataset``.  Writes buffer up to ``batch_size``
    records and flush as batched upserts inside one transaction;
    every read path flushes first (read-your-writes).

    Args:
        path: Database file (created if missing), or ``":memory:"``.
        batch_size: Buffered records per flush transaction.
        metrics: Optional registry for ``asdb_store_*`` instruments.
        runlog: Optional run ledger; each flush emits ``store.flush``.
    """

    def __init__(
        self,
        path: str,
        batch_size: int = 1000,
        metrics: Optional[MetricsRegistry] = None,
        runlog=None,
    ) -> None:
        if batch_size < 1:
            raise StoreError(f"batch_size must be >= 1, got {batch_size}")
        self._path = str(path)
        self._batch_size = batch_size
        self._conn = sqlite3.connect(self._path)
        # One transaction per flush is the durability unit; WAL keeps
        # readers unblocked and NORMAL sync is safe under WAL.  Pragmas
        # must run before the first write opens a transaction.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._conn.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
            ("format", SQLITE_FORMAT),
        )
        marker = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'format'"
        ).fetchone()[0]
        if marker != SQLITE_FORMAT:
            raise StoreError(
                f"unsupported sqlite store format {marker!r} in "
                f"{self._path}"
            )
        self._conn.commit()
        #: asn -> buffered record, or None for a pending delete.
        self._pending: Dict[int, Optional[ASdbRecord]] = {}
        self._resident_high_water = 0

        registry = metrics if metrics is not None else NULL_REGISTRY
        self.runlog = runlog if runlog is not None else NULL_RUNLOG
        self._m_flushes = registry.counter(
            "asdb_store_flush_total", "Store flush transactions."
        )
        self._m_writes = registry.counter(
            "asdb_store_writes_total",
            "Records written by store flushes, by kind.",
            ("kind",),
        )
        for kind in ("upsert", "delete"):
            self._m_writes.inc(0, kind=kind)
        self._m_flush_seconds = registry.histogram(
            "asdb_store_flush_seconds", "Wall time per store flush."
        )
        self._m_records = registry.gauge(
            "asdb_store_records", "Records persisted in the store."
        )

    # -- protocol: writes ---------------------------------------------------

    def add(self, record: ASdbRecord) -> None:
        """Buffer an insert-or-replace; flushes at ``batch_size``."""
        self._pending[record.asn] = record
        self._note_resident()
        if len(self._pending) >= self._batch_size:
            self.flush()

    def remove(self, asn: int) -> Optional[ASdbRecord]:
        """Drop and return one AS's record (None if absent)."""
        buffered = self._pending.get(asn, _MISSING)
        if buffered is not _MISSING:
            if buffered is None:
                return None
            self._pending[asn] = None
            return buffered
        old = self._fetch(asn)
        if old is None:
            return None
        self._pending[asn] = None
        self._note_resident()
        if len(self._pending) >= self._batch_size:
            self.flush()
        return old

    def flush(self) -> None:
        """Persist every buffered write in one transaction."""
        if not self._pending:
            return
        upserts: List[tuple] = []
        label_rows: List[tuple] = []
        deletes: List[tuple] = []
        touched: List[tuple] = []
        for asn, record in self._pending.items():
            touched.append((asn,))
            if record is None:
                deletes.append((asn,))
                continue
            upserts.append((
                asn,
                record.stage.value,
                1 if record.labels else 0,
                _encode_record(record),
            ))
            for label in record.labels:
                label_rows.append((asn, label.layer1, label.layer2))
        with self._m_flush_seconds.time():
            cursor = self._conn.cursor()
            cursor.executemany("DELETE FROM labels WHERE asn = ?", touched)
            cursor.executemany("DELETE FROM records WHERE asn = ?", deletes)
            cursor.executemany(
                "INSERT OR REPLACE INTO records "
                "(asn, stage, classified, item) VALUES (?, ?, ?, ?)",
                upserts,
            )
            cursor.executemany(
                "INSERT INTO labels (asn, layer1, layer2) "
                "VALUES (?, ?, ?)",
                label_rows,
            )
            self._conn.commit()
        self._pending.clear()
        self._m_flushes.inc(1)
        self._m_writes.inc(len(upserts), kind="upsert")
        self._m_writes.inc(len(deletes), kind="delete")
        self._m_records.set(self._count())
        self.runlog.emit(
            "store.flush",
            path=self._path,
            upserts=len(upserts),
            deletes=len(deletes),
            resident_high_water=self._resident_high_water,
        )

    def close(self) -> None:
        """Flush buffered writes and release the connection."""
        self.flush()
        self._conn.close()

    def __enter__(self) -> "SqliteDatasetStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- protocol: reads ----------------------------------------------------

    def get(self, asn: int) -> Optional[ASdbRecord]:
        """The record for an ASN, or None (sees buffered writes)."""
        buffered = self._pending.get(asn, _MISSING)
        if buffered is not _MISSING:
            return buffered
        return self._fetch(asn)

    def __len__(self) -> int:
        self.flush()
        return self._count()

    def __contains__(self, asn: int) -> bool:
        return self.get(asn) is not None

    def __iter__(self) -> Iterator[ASdbRecord]:
        return self.iter_range()

    def iter_range(
        self,
        start: Optional[int] = None,
        stop: Optional[int] = None,
    ) -> Iterator[ASdbRecord]:
        """Stream records with ``start <= asn <= stop``, ascending, via
        a dedicated cursor — O(1) store-side memory."""
        self.flush()
        clauses, params = [], []
        if start is not None:
            clauses.append("asn >= ?")
            params.append(start)
        if stop is not None:
            clauses.append("asn <= ?")
            params.append(stop)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        cursor = self._conn.execute(
            f"SELECT item FROM records{where} ORDER BY asn", params
        )
        for (item,) in cursor:
            yield _decode_record(item)

    def asns(self) -> Iterator[int]:
        """Every stored ASN, ascending (streamed)."""
        self.flush()
        for (asn,) in self._conn.execute(
            "SELECT asn FROM records ORDER BY asn"
        ):
            yield asn

    # -- protocol: aggregates (pushed down to SQL) --------------------------

    def coverage(self) -> float:
        """Fraction of stored ASes with at least one category."""
        self.flush()
        total, classified = self._conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(classified), 0) FROM records"
        ).fetchone()
        return classified / total if total else 0.0

    def stage_counts(self) -> Dict[Stage, int]:
        """Number of records per pipeline stage (index-only scan)."""
        self.flush()
        return {
            Stage(stage): count
            for stage, count in self._conn.execute(
                "SELECT stage, COUNT(*) FROM records GROUP BY stage"
            )
        }

    def category_histogram(self) -> Dict[str, int]:
        """AS count per layer 1 slug (an AS can count in several)."""
        self.flush()
        return {
            layer1: count
            for layer1, count in self._conn.execute(
                "SELECT layer1, COUNT(DISTINCT asn) FROM labels "
                "GROUP BY layer1"
            )
        }

    def asns_in_layer1(self, layer1_slug: str) -> List[int]:
        """ASNs classified under a layer 1 category (uses the layer-1
        index)."""
        self.flush()
        return [
            asn
            for (asn,) in self._conn.execute(
                "SELECT DISTINCT asn FROM labels WHERE layer1 = ? "
                "ORDER BY asn",
                (layer1_slug,),
            )
        ]

    def diff(self, other) -> DatasetDiff:
        """What changed from ``other`` (older) to ``self`` (newer),
        via the streaming ordered merge — O(diff) memory."""
        return diff_record_streams(iter(self), iter(other))

    # -- exports ------------------------------------------------------------

    def to_csv(self) -> str:
        """The released CSV shape, byte-identical to
        :meth:`ASdbDataset.to_csv` over the same records."""
        buffer = io.StringIO()
        write_csv(self, buffer)
        return buffer.getvalue()

    def write_csv(self, handle: IO[str]) -> None:
        """Stream the CSV export to ``handle`` (O(batch) memory)."""
        write_csv(self, handle)

    def write_json(self, handle: IO[str]) -> int:
        """Stream the lossless JSON export to ``handle``; returns the
        record count.  Byte-identical to :func:`dataset_to_json`."""
        return write_json(self, handle)

    # -- introspection ------------------------------------------------------

    @property
    def path(self) -> str:
        """The database file path."""
        return self._path

    @property
    def batch_size(self) -> int:
        """Buffered records per flush transaction."""
        return self._batch_size

    @property
    def resident_high_water(self) -> int:
        """Most records ever buffered at once — the O(batch) witness
        asserted by the streaming-sweep tests and benchmarks."""
        return self._resident_high_water

    # -- internals ----------------------------------------------------------

    def _note_resident(self) -> None:
        if len(self._pending) > self._resident_high_water:
            self._resident_high_water = len(self._pending)

    def _fetch(self, asn: int) -> Optional[ASdbRecord]:
        row = self._conn.execute(
            "SELECT item FROM records WHERE asn = ?", (asn,)
        ).fetchone()
        if row is None:
            return None
        return _decode_record(row[0])

    def _count(self) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM records"
        ).fetchone()[0]


class JsonDatasetStore(ASdbDataset):
    """The existing JSON persistence behind the store protocol.

    An in-memory dataset bound to a file: the document is parsed on
    open (when present) and atomically rewritten on :meth:`flush` /
    :meth:`close` — but only when a record actually changed since
    load.  Read-only opens (stats, diff, serving) never rewrite the
    file, so they cannot bump its mtime or clobber a concurrent
    writer's document with a stale copy.  Same O(N) memory as before —
    this backend exists so callers can pick a backend by URL without
    special-casing.
    """

    def __init__(self, path: str) -> None:
        super().__init__()
        self._path = str(path)
        # A missing file is "dirty" so open+close still creates an
        # empty document, exactly as before dirty tracking existed.
        self._dirty = not os.path.exists(self._path)
        if not self._dirty:
            with open(self._path) as handle:
                text = handle.read()
            if text.strip():
                self._records = dataset_from_json(text)._records

    @property
    def path(self) -> str:
        """The JSON document path."""
        return self._path

    @property
    def dirty(self) -> bool:
        """Whether any record changed since load (or the file is new)."""
        return self._dirty

    def add(self, record: ASdbRecord) -> None:
        self._dirty = True
        super().add(record)

    def remove(self, asn: int) -> Optional[ASdbRecord]:
        removed = super().remove(asn)
        if removed is not None:
            self._dirty = True
        return removed

    def flush(self) -> None:
        """Atomically rewrite the JSON document (tmp file + rename);
        a no-op when nothing changed since load."""
        if not self._dirty:
            return
        tmp = self._path + ".tmp"
        with open(tmp, "w") as handle:
            write_json(self, handle)
        os.replace(tmp, self._path)
        self._dirty = False

    def close(self) -> None:
        self.flush()


def open_store(url: str, **kwargs) -> DatasetStore:
    """Open a dataset store from a backend URL.

    * ``sqlite:PATH`` — :class:`SqliteDatasetStore` at PATH;
    * ``json:PATH`` — :class:`JsonDatasetStore` at PATH;
    * ``memory:`` (or bare ``memory``) — a fresh in-memory
      :class:`ASdbDataset`;
    * a bare path ending in ``.sqlite``/``.sqlite3``/``.db`` or
      ``.json`` selects the matching backend.  Only the three known
      scheme prefixes are treated as schemes, so paths that merely
      *contain* colons (``./runs/2026-08-08T12:00/asdb.db``) dispatch
      on their suffix like any other path.

    ``kwargs`` (e.g. ``batch_size``, ``metrics``, ``runlog``) are
    forwarded to the sqlite backend and ignored by the others.
    """
    scheme, sep, rest = url.partition(":")
    if sep and scheme in ("sqlite", "json", "memory"):
        if scheme == "memory":
            if rest:
                raise StoreError(
                    f"memory: takes no path, got {url!r}"
                )
            return ASdbDataset()
        if not rest:
            raise StoreError(
                f"{scheme}: store URL needs a path, got {url!r} "
                f"(expected {scheme}:PATH)"
            )
        if scheme == "sqlite":
            return SqliteDatasetStore(rest, **kwargs)
        return JsonDatasetStore(rest)
    if url == "memory":
        return ASdbDataset()
    if url.endswith((".sqlite", ".sqlite3", ".db")):
        return SqliteDatasetStore(url, **kwargs)
    if url.endswith(".json"):
        return JsonDatasetStore(url)
    raise StoreError(
        f"unrecognized store URL {url!r}: tried schemes sqlite:/json:/"
        f"memory: and path suffixes .sqlite/.sqlite3/.db/.json — use "
        f"sqlite:PATH, json:PATH, memory:, or a suffixed path"
    )


def diff_stores(new: DatasetStore, old: DatasetStore) -> DatasetDiff:
    """What changed from ``old`` to ``new``, across any two backends.

    Streams both sides through their ascending-ASN cursors and merges;
    memory stays O(diff) even when both stores hold millions of
    records.
    """
    return diff_record_streams(iter(new), iter(old))
