"""Organization-level classification cache.

ASdb checks whether the owning organization has previously been classified
- e.g. because another AS belonging to the same organization was processed
earlier - and returns the cached data (Figure 4's first diamond).  The
cache key is derived from the extracted contact: the chosen domain when one
exists, otherwise the normalized organization-name token set.
"""

from __future__ import annotations

from typing import Dict, Generic, Optional, Tuple, TypeVar

from ..whois.extraction import ExtractedContact
from ..world.names import tokenize_name

__all__ = ["org_cache_key", "OrganizationCache"]

T = TypeVar("T")


def org_cache_key(
    contact: ExtractedContact, domain: Optional[str]
) -> Optional[str]:
    """Stable key identifying the owning organization.

    Domains identify organizations more reliably than names; the name
    token set is the fallback.  Returns None when nothing usable exists
    (such ASes are never cached).
    """
    if domain:
        return f"domain:{domain}"
    tokens = tokenize_name(contact.name)
    if tokens:
        return "name:" + " ".join(sorted(set(tokens)))
    return None


class OrganizationCache(Generic[T]):
    """Maps organization keys to classification records."""

    def __init__(self) -> None:
        self._store: Dict[str, T] = {}
        self.hits = 0
        self.misses = 0
        self.none_keys = 0

    def get(self, key: Optional[str]) -> Optional[T]:
        """Cached record for a key (None misses; None key never hits).

        A None key means the AS had no usable organization identity;
        it is tracked as ``none_keys`` rather than a miss so it does
        not pollute :attr:`hit_rate`.
        """
        if key is None:
            self.none_keys += 1
            return None
        record = self._store.get(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def put(self, key: Optional[str], record: T) -> None:
        """Store a record (no-op for None keys)."""
        if key is not None:
            self._store[key] = record

    def invalidate(self, key: Optional[str]) -> None:
        """Drop a key (used when ownership metadata churns)."""
        if key is not None:
            self._store.pop(key, None)

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        """Fraction of keyed lookups served from cache (None-key
        lookups are excluded: no key could ever have hit)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
