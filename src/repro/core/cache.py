"""Organization-level classification cache.

ASdb checks whether the owning organization has previously been classified
- e.g. because another AS belonging to the same organization was processed
earlier - and returns the cached data (Figure 4's first diamond).  The
cache key is derived from the extracted contact: the chosen domain when one
exists, otherwise the normalized organization-name token set.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Generic, Iterable, Optional, Tuple, TypeVar

from ..whois.extraction import ExtractedContact
from ..world.names import token_set

__all__ = ["org_cache_key", "CacheStats", "OrganizationCache"]

T = TypeVar("T")


@lru_cache(maxsize=65536)
def _name_cache_key(name: str) -> Optional[str]:
    """The ``name:`` form of a key, memoized per distinct name string.

    Cluster planning and the cache stage both derive this key for every
    AS of every pass; organizations share names across sibling ASes, so
    interning the sort/join saves a hot-path allocation per lookup.
    """
    tokens = token_set(name)
    if tokens:
        return "name:" + " ".join(sorted(tokens))
    return None


def org_cache_key(
    contact: ExtractedContact, domain: Optional[str]
) -> Optional[str]:
    """Stable key identifying the owning organization.

    Domains identify organizations more reliably than names; the name
    token set is the fallback.  Returns None when nothing usable exists
    (such ASes are never cached).
    """
    if domain:
        return f"domain:{domain}"
    return _name_cache_key(contact.name)


@dataclass(frozen=True)
class CacheStats:
    """A consistent point-in-time snapshot of the cache counters.

    Taken under the cache lock, so ``hits`` and ``misses`` always come
    from the same instant — a concurrent reader can never combine a
    fresh hit count with a stale miss count into a torn hit rate.
    """

    hits: int
    misses: int
    none_keys: int
    size: int

    @property
    def hit_rate(self) -> float:
        """Fraction of keyed lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class OrganizationCache(Generic[T]):
    """Maps organization keys to classification records.

    Thread-safe: the batch classification engine shares one cache
    across its worker pool, so store access and the hit/miss counters
    are guarded by a lock.  The counter attributes remain public for
    reporting; use :meth:`stats` when hits and misses must be read as
    one consistent pair.
    """

    def __init__(self) -> None:
        self._store: Dict[str, T] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.none_keys = 0

    def get(self, key: Optional[str]) -> Optional[T]:
        """Cached record for a key (None misses; None key never hits).

        A None key means the AS had no usable organization identity;
        it is tracked as ``none_keys`` rather than a miss so it does
        not pollute :attr:`hit_rate`.
        """
        with self._lock:
            if key is None:
                self.none_keys += 1
                return None
            record = self._store.get(key)
            if record is None:
                self.misses += 1
            else:
                self.hits += 1
            return record

    def put(self, key: Optional[str], record: T) -> None:
        """Store a record (no-op for None keys)."""
        if key is not None:
            with self._lock:
                self._store[key] = record

    def invalidate(self, key: Optional[str]) -> None:
        """Drop a key (used when ownership metadata churns)."""
        if key is not None:
            with self._lock:
                self._store.pop(key, None)

    def invalidate_keys(self, keys: Iterable[Optional[str]]) -> None:
        """Drop many keys under one lock hold (Nones are ignored).

        Maintenance sweeps purge every alias of every touched record
        before reclassifying; doing it in one critical section keeps a
        concurrent batch from observing a half-purged organization.
        """
        with self._lock:
            for key in keys:
                if key is not None:
                    self._store.pop(key, None)

    def invalidate_record(self, record: T) -> None:
        """Drop every key still mapping to ``record``.

        Reclassification's safety net: a superseded record may have been
        cached under keys beyond those it lists (e.g. a community
        correction stored under the org key alone), and none of them may
        serve it again.
        """
        with self._lock:
            stale = [
                key for key, value in self._store.items() if value is record
            ]
            for key in stale:
                del self._store[key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters (see
        :class:`CacheStats`)."""
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                none_keys=self.none_keys,
                size=len(self._store),
            )

    @property
    def hit_rate(self) -> float:
        """Fraction of keyed lookups served from cache (None-key
        lookups are excluded: no key could ever have hit)."""
        return self.stats().hit_rate
