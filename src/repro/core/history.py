"""Temporal queries over the release history (ROADMAP item 3).

"Back-to-the-Future Whois" argues attribution datasets are only
trustworthy when they answer point-in-time questions — *how was AS X
classified on day D?* — and the AS-taxonomy lineage motivates churn
analytics across releases as a first-class product.
:class:`ReleaseHistory` is both, built directly on the digest-verified
:class:`~repro.core.snapshots.SnapshotStore`:

- :meth:`~ReleaseHistory.asof` reconstructs the full dataset in force
  at a version or day, into any ``DatasetStore`` backend, replaying
  from the nearest checkpoint;
- :meth:`~ReleaseHistory.timeline` yields one AS's per-version
  classification trajectory by scanning the recorded delta chain —
  no dataset is ever materialized;
- :meth:`~ReleaseHistory.churn` computes category-flow analytics
  between two releases through scratch stores (O(batch) residency).

Day semantics follow the sweep windows releases record: a version is
"in force" on day D if it is the newest release whose window closed at
or before D (``through_day <= D``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .snapshots import SnapshotError, SnapshotInfo, SnapshotStore

__all__ = [
    "ABSENT",
    "UNCLASSIFIED",
    "ChurnReport",
    "ReleaseHistory",
    "TimelineEvent",
    "categorization",
    "event_for",
]

#: Churn-state label for an AS not present in a release.
ABSENT = "(absent)"
#: Churn-state label for a record carrying no category labels.
UNCLASSIFIED = "(unclassified)"


def categorization(item: Optional[Dict[str, object]]) -> str:
    """The categorization state of one serialized record item: its
    sorted layer-1 slugs joined with ``+`` (multi-business orgs get a
    composite state), :data:`UNCLASSIFIED` for a labelless record, and
    :data:`ABSENT` for a missing one.

    States are exact and deterministic, so churn flows between them are
    countable without any similarity judgement.
    """
    if item is None:
        return ABSENT
    slugs = sorted({
        str(label["layer1"]) for label in item.get("labels", ())
    })
    return "+".join(slugs) if slugs else UNCLASSIFIED


def _record_state(record) -> str:
    """:func:`categorization` for a live record object."""
    slugs = sorted(record.labels.layer1_slugs())
    return "+".join(slugs) if slugs else UNCLASSIFIED


@dataclass(frozen=True)
class TimelineEvent:
    """One change to one AS's record across the release history.

    Attributes:
        version: The release that introduced the change.
        change: ``added`` / ``updated`` / ``removed``.
        since_day: The release's sweep-window lower bound (exclusive).
        through_day: The release's sweep-window upper bound (inclusive).
        item: The record's serialized item as of this release (None
            after a removal).
        labels_changed: For updates: whether the label set moved.
        stage_changed: For updates: whether the producing stage moved.
    """

    version: int
    change: str
    since_day: Optional[int]
    through_day: Optional[int]
    item: Optional[Dict[str, object]] = None
    labels_changed: bool = False
    stage_changed: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "change": self.change,
            "since_day": self.since_day,
            "through_day": self.through_day,
            "categorization": categorization(self.item),
            "labels_changed": self.labels_changed,
            "stage_changed": self.stage_changed,
            "item": self.item,
        }


def event_for(
    info: SnapshotInfo,
    old: Optional[Dict[str, object]],
    new: Optional[Dict[str, object]],
) -> Optional[TimelineEvent]:
    """The timeline event taking an AS from item ``old`` to ``new`` at
    release ``info``, or None when nothing changed.

    Shared by the full-history scans below and the serving layer's
    incremental :meth:`~repro.serving.index.HistoryIndex.extend`, so
    both paths mint byte-identical events."""
    if old is None and new is None:
        return None
    if old is None:
        change = "added"
    elif new is None:
        change = "removed"
    elif new != old:
        change = "updated"
    else:
        return None
    return TimelineEvent(
        version=info.version,
        change=change,
        since_day=info.since_day,
        through_day=info.through_day,
        item=new,
        labels_changed=bool(
            old is not None and new is not None
            and old.get("labels") != new.get("labels")
        ),
        stage_changed=bool(
            old is not None and new is not None
            and old.get("stage") != new.get("stage")
        ),
    )


@dataclass(frozen=True)
class ChurnReport:
    """Category flow between two releases.

    ``flows`` counts ASes per ``(old state, new state)`` transition —
    states are :func:`categorization` strings plus :data:`ABSENT` —
    sorted by descending count.  ``unchanged`` counts ASes whose
    categorization state held (their stage or provenance may still have
    moved; churn is about *category* movement).
    """

    old_version: int
    new_version: int
    old_records: int
    new_records: int
    added: int
    removed: int
    relabeled: int
    unchanged: int
    flows: Tuple[Tuple[str, str, int], ...]

    @property
    def changed(self) -> int:
        """ASes that appeared, disappeared, or switched category."""
        return self.added + self.removed + self.relabeled

    def to_dict(self) -> Dict[str, object]:
        return {
            "old_version": self.old_version,
            "new_version": self.new_version,
            "old_records": self.old_records,
            "new_records": self.new_records,
            "added": self.added,
            "removed": self.removed,
            "relabeled": self.relabeled,
            "unchanged": self.unchanged,
            "flows": [
                {"from": source, "to": target, "count": count}
                for source, target, count in self.flows
            ],
        }


class ReleaseHistory:
    """Point-in-time and trajectory queries over a snapshot store."""

    def __init__(self, store: SnapshotStore) -> None:
        self._store = store

    @property
    def store(self) -> SnapshotStore:
        return self._store

    # -- as-of reconstruction ----------------------------------------------

    def version_on(self, day: int) -> SnapshotInfo:
        """The release in force on ``day``: the newest version whose
        sweep window closed at or before it (SnapshotError when the
        history starts later, or records no windows at all)."""
        best: Optional[SnapshotInfo] = None
        for info in self._store.versions():
            if info.through_day is not None and info.through_day <= day:
                best = info
        if best is None:
            dated = [
                info for info in self._store.versions()
                if info.through_day is not None
            ]
            if dated:
                raise SnapshotError(
                    f"no release at or before day {day} (earliest is "
                    f"v{dated[0].version}, through day "
                    f"{dated[0].through_day})"
                )
            raise SnapshotError(
                f"no release at or before day {day}: no version in "
                f"this store records a sweep window"
            )
        return best

    def asof(
        self,
        version: Optional[int] = None,
        day: Optional[int] = None,
        into=None,
    ):
        """The full dataset as of a version or a day (exactly one).

        Returns ``(dataset, info)`` exactly like
        :meth:`SnapshotStore.materialize`: digest-verified, replayed
        from the nearest checkpoint, landing in ``into`` when a
        ``DatasetStore`` backend is passed.
        """
        if (version is None) == (day is None):
            raise SnapshotError(
                "asof needs exactly one of version= or day="
            )
        if day is not None:
            version = self.version_on(day).version
        return self._store.materialize(version, into=into)

    # -- trajectories -------------------------------------------------------

    def _full_state(self, info: SnapshotInfo) -> Dict[int, dict]:
        """ASN -> item map of a version that stores a full document."""
        return {
            int(item["asn"]): item
            for item in self._store._full_items(info.filename, info.version)
        }

    def timeline(self, asn: int) -> Tuple[TimelineEvent, ...]:
        """One AS's per-version classification trajectory.

        Scans the recorded delta chain — full documents are parsed only
        at ``full`` versions (v1 and explicit full saves); checkpointed
        deltas are scanned as the deltas they are, and no dataset is
        ever materialized.  Empty when the AS never appears.
        """
        events: List[TimelineEvent] = []
        current: Optional[Dict[str, object]] = None
        for info in self._store.versions():
            if info.kind == "full":
                item: Optional[dict] = self._full_state(info).get(asn)
            else:
                changed, removed = self._store.changes(info.version)
                item = current
                for candidate in changed:
                    if int(candidate["asn"]) == asn:
                        item = candidate
                        break
                else:
                    if asn in removed:
                        item = None
            event = event_for(info, current, item)
            if event is not None:
                events.append(event)
            current = item
        return tuple(events)

    def timelines(self) -> Dict[int, Tuple[TimelineEvent, ...]]:
        """Every AS's trajectory, in one pass over the version chain.

        The serving layer's bulk builder: one scan of the history
        yields the same events :meth:`timeline` would produce per AS.
        Full versions are treated as pinning the complete state (ASes
        absent from a full document get a ``removed`` event).
        """
        events: Dict[int, List[TimelineEvent]] = {}
        current: Dict[int, dict] = {}

        def apply(info: SnapshotInfo, asn: int,
                  item: Optional[dict]) -> None:
            event = event_for(info, current.get(asn), item)
            if event is not None:
                events.setdefault(asn, []).append(event)
            if item is None:
                current.pop(asn, None)
            else:
                current[asn] = item

        for info in self._store.versions():
            if info.kind == "full":
                state = self._full_state(info)
                for asn in sorted(set(current) - set(state)):
                    apply(info, asn, None)
                for asn in sorted(state):
                    apply(info, asn, state[asn])
            else:
                changed, removed = self._store.changes(info.version)
                for asn in removed:
                    apply(info, asn, None)
                for item in changed:
                    apply(info, int(item["asn"]), item)
        return {asn: tuple(seq) for asn, seq in events.items()}

    # -- churn --------------------------------------------------------------

    def churn(self, old_version: int, new_version: int) -> ChurnReport:
        """Category-flow analytics between two releases.

        Both sides stream through scratch sqlite stores and one ordered
        merge (O(batch) residency), counting per-AS transitions between
        :func:`categorization` states.
        """
        flows: Dict[Tuple[str, str], int] = {}
        added = removed = relabeled = unchanged = 0
        old_count = new_count = 0

        def flow(source: str, target: str) -> None:
            flows[(source, target)] = flows.get((source, target), 0) + 1

        with self._store.materialize_pair(old_version, new_version) as pair:
            old_ds, new_ds = pair
            sentinel = object()
            new_iter, old_iter = iter(new_ds), iter(old_ds)
            new = next(new_iter, sentinel)
            old = next(old_iter, sentinel)
            while new is not sentinel or old is not sentinel:
                if old is sentinel or (
                    new is not sentinel and new.asn < old.asn
                ):
                    added += 1
                    new_count += 1
                    flow(ABSENT, _record_state(new))
                    new = next(new_iter, sentinel)
                elif new is sentinel or old.asn < new.asn:
                    removed += 1
                    old_count += 1
                    flow(_record_state(old), ABSENT)
                    old = next(old_iter, sentinel)
                else:
                    old_count += 1
                    new_count += 1
                    old_state = _record_state(old)
                    new_state = _record_state(new)
                    if old_state == new_state:
                        unchanged += 1
                    else:
                        relabeled += 1
                        flow(old_state, new_state)
                    new = next(new_iter, sentinel)
                    old = next(old_iter, sentinel)
        ordered = sorted(
            flows.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ChurnReport(
            old_version=old_version,
            new_version=new_version,
            old_records=old_count,
            new_records=new_count,
            added=added,
            removed=removed,
            relabeled=relabeled,
            unchanged=unchanged,
            flows=tuple(
                (source, target, count)
                for (source, target), count in ordered
            ),
        )
