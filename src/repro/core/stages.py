"""Pipeline stage attribution (the rows of Table 8)."""

from __future__ import annotations

import enum

__all__ = ["Stage"]


class Stage(enum.Enum):
    """Which part of the ASdb pipeline produced a classification.

    Values mirror Table 8's per-stage breakdown; ``CACHED`` marks ASes
    answered from the organization cache (another AS of the same org was
    classified earlier).
    """

    CACHED = "cached"
    MATCHED_BY_ASN = "matched_by_asn"
    CLASSIFIER = "classifier"
    ZERO_SOURCES = "zero_sources"
    ONE_SOURCE = "one_source"
    MULTI_AGREE = "multi_agree"
    MULTI_DISAGREE = "multi_disagree"

    @property
    def display(self) -> str:
        """Table-8-style row label."""
        return {
            Stage.CACHED: "Cached",
            Stage.MATCHED_BY_ASN: "Matched By ASN",
            Stage.CLASSIFIER: "Classifier",
            Stage.ZERO_SOURCES: "0 Sources Matched",
            Stage.ONE_SOURCE: "1 Sources Matched",
            Stage.MULTI_AGREE: ">=2 Sources Matched - >= 2 Agree",
            Stage.MULTI_DISAGREE: ">=2 Sources Matched - None Agree",
        }[self]

    @property
    def prior_accuracy(self) -> float:
        """The stage's expected layer 1 accuracy, from the paper's
        Table 8 (test-set column).  Dataset consumers use this as a
        per-record confidence prior: an answer backed by two agreeing
        sources deserves more trust than an auto-chosen one.
        """
        return {
            Stage.CACHED: 0.93,          # inherits the overall rate
            Stage.MATCHED_BY_ASN: 1.00,
            Stage.CLASSIFIER: 0.97,
            Stage.ZERO_SOURCES: 0.00,
            Stage.ONE_SOURCE: 0.80,
            Stage.MULTI_AGREE: 1.00,
            Stage.MULTI_DISAGREE: 0.60,
        }[self]
