"""The ASdb system (Figure 4): classify the owner of every AS.

Pipeline per AS, upon receipt of WHOIS data:

1. **Org cache** - if the owning organization was already classified
   (e.g. via a sibling AS), return the cached classification.
2. **Match by ASN** - query PeeringDB and IPinfo.  Only a PeeringDB ISP
   label counts as a high-confidence match; it is translated, stored, and
   returned immediately.
3. **Pick most likely domain** - pool WHOIS candidate domains with the
   ASN-keyed sources' domain hints and run the Figure-4 extraction
   algorithm (top-10 mail providers removed, common domains filtered,
   most-similar selection).
4. **ML classification** - feed the chosen domain to the Section-4.1
   scrape/translate/TF-IDF/SGD pipeline (ISP and hosting flags).
5. **Match to data sources** - D&B, Crunchbase, and Zvelo by name,
   domain, and address; matches contradicting the chosen domain are
   rejected.
6. **Consensus** - union of agreeing sources, else the accuracy-ranked
   auto-choose heuristic; the ML verdict wins unless at least two
   agreeing sources contradict it.

Observability: pass a :class:`~repro.obs.MetricsRegistry` to meter every
stage (latency histograms, stage counters, cache hit rate, per-source
lookup outcomes), and ``trace=True`` to attach a per-AS
:class:`~repro.obs.ClassificationTrace` (one span per stage above) to
each :class:`ASdbRecord`.  With neither configured the pipeline runs
exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..datasources.base import DataSource, Query, SourceMatch
from ..matching.resolver import EntityResolver
from ..ml.pipeline import ClassifierVerdict, WebClassificationPipeline
from ..obs.instrument import instrument_source
from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..obs.trace import trace_builder
from ..taxonomy import Label, LabelSet
from ..whois.registry import WhoisRegistry
from .cache import OrganizationCache, org_cache_key
from .consensus import ConsensusResult, resolve_consensus
from .database import ASdbDataset, ASdbRecord
from .stages import Stage

__all__ = ["ASdb"]

ConsensusStrategy = Callable[[Dict[str, SourceMatch]], ConsensusResult]


class ASdb:
    """The deployed classification system over pluggable components.

    Args:
        registry: Bulk WHOIS registry (raw text; parsing happens inside).
        resolver: Entity resolver for domain choice + source matching.
        peeringdb: The PeeringDB source (stage 2's high-confidence check).
        ipinfo: The IPinfo source (classification + domain hints).
        ml_pipeline: Trained web classification pipeline, or None to run
            without the ML stage (ablation).
        consensus_strategy: Consensus function (ablation knob; defaults to
            the paper's union-on-overlap + accuracy-ranked fallback).
        use_cache: Organization-level caching (ablation knob).
        metrics: Metrics registry to emit counters/histograms into
            (None = no-op instruments, zero behavior change).
        trace: Attach a per-stage span trace to every record.
    """

    def __init__(
        self,
        registry: WhoisRegistry,
        resolver: EntityResolver,
        peeringdb: DataSource,
        ipinfo: DataSource,
        ml_pipeline: Optional[WebClassificationPipeline] = None,
        consensus_strategy: ConsensusStrategy = resolve_consensus,
        use_cache: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        trace: bool = False,
    ) -> None:
        self._registry = registry
        self._resolver = resolver
        self._peeringdb = instrument_source(peeringdb, metrics)
        self._ipinfo = instrument_source(ipinfo, metrics)
        self._ml = ml_pipeline
        self._consensus = consensus_strategy
        self._use_cache = use_cache
        self._trace_enabled = trace
        self.metrics = metrics or NULL_REGISTRY
        self.cache: OrganizationCache[ASdbRecord] = OrganizationCache()
        self.dataset = ASdbDataset()

        self._m_classify_seconds = self.metrics.histogram(
            "asdb_classify_seconds",
            "End-to-end classification latency per AS.",
        )
        self._m_stage_total = self.metrics.counter(
            "asdb_stage_total",
            "Classified records by producing pipeline stage.",
            ("stage",),
        )
        for stage in Stage:
            self._m_stage_total.inc(0, stage=stage.value)
        self._m_cache_lookups = self.metrics.counter(
            "asdb_cache_lookups_total",
            "Organization-cache lookups by outcome.",
            ("outcome",),
        )
        for outcome in ("hit", "miss", "none_key"):
            self._m_cache_lookups.inc(0, outcome=outcome)
        self._m_cache_hit_rate = self.metrics.gauge(
            "asdb_cache_hit_rate",
            "Organization-cache hit rate over keyed lookups.",
        )

    # -- public API ---------------------------------------------------------

    def classify(self, asn: int) -> ASdbRecord:
        """Classify one AS, updating the dataset and cache."""
        builder = trace_builder(asn, self._trace_enabled)
        with self._m_classify_seconds.time():
            record = self._classify(asn, builder)
        self._m_stage_total.inc(1, stage=record.stage.value)
        self._m_cache_hit_rate.set(self.cache.hit_rate)
        trace = builder.finish()
        if trace is not None:
            record = replace(record, trace=trace)
        self.dataset.add(record)
        return record

    def classify_all(self) -> ASdbDataset:
        """Classify every AS in the registry (ascending ASN order)."""
        for asn in self._registry.asns():
            self.classify(asn)
        return self.dataset

    def reclassify(self, asn: int) -> ASdbRecord:
        """Re-run classification for an AS whose metadata changed,
        invalidating any cached organization entry first."""
        old = self.dataset.get(asn)
        if old is not None:
            for key in old.cache_keys:
                self.cache.invalidate(key)
            self.cache.invalidate(old.org_key)
        return self.classify(asn)

    # -- pipeline -----------------------------------------------------------

    def _classify(self, asn: int, tb) -> ASdbRecord:
        parsed = self._registry.parsed(asn)
        contact = self._registry.contact(asn)
        as_name = parsed.as_name or contact.name

        # Stage 0: organization cache (pre-domain key uses the name).
        name_key = org_cache_key(contact, domain=None)
        if self._use_cache:
            with tb.span("cache") as span:
                cached = self.cache.get(name_key)
                outcome = (
                    "none_key" if name_key is None
                    else "hit" if cached is not None
                    else "miss"
                )
                self._m_cache_lookups.inc(1, outcome=outcome)
                span.set_status(outcome)
                span.note(key=name_key)
            if cached is not None:
                return ASdbRecord(
                    asn=asn,
                    labels=cached.labels,
                    stage=Stage.CACHED,
                    domain=cached.domain,
                    sources=cached.sources,
                    org_key=cached.org_key,
                    cache_keys=cached.cache_keys,
                )

        # Stage 1: ASN-keyed lookups.
        with tb.span("asn_match") as span:
            asn_query = Query(asn=asn)
            pdb_match = self._peeringdb.lookup(asn_query)
            ipinfo_match = self._ipinfo.lookup(asn_query)
            high_confidence = self._is_high_confidence(pdb_match)
            span.note(
                peeringdb="match" if pdb_match is not None else "miss",
                ipinfo="match" if ipinfo_match is not None else "miss",
            )
            span.set_status(
                "high_confidence" if high_confidence else "no_high_confidence"
            )
        if high_confidence:
            return self._finish(
                asn,
                contact,
                labels=pdb_match.labels,
                stage=Stage.MATCHED_BY_ASN,
                domain=pdb_match.entry.domain,
                sources=("peeringdb",),
                name_key=name_key,
            )

        # Stage 2: domain extraction with ASN-source hints.
        with tb.span("domain_choice") as span:
            hints: List[str] = []
            for match in (pdb_match, ipinfo_match):
                if match is not None and match.entry.domain:
                    hints.append(match.entry.domain)
            domain = self._resolver.choose_domain(contact, as_name, hints)
            span.set_status("chosen" if domain else "none")
            span.note(
                domain=domain,
                candidates=len(contact.candidate_domains),
                hints=tuple(hints),
            )

        # Stage 3: ML classification of the chosen domain.
        verdict: Optional[ClassifierVerdict] = None
        with tb.span("ml") as span:
            if self._ml is None:
                span.set_status("disabled")
            elif domain is None:
                span.set_status("no_domain")
            else:
                verdict = self._ml.classify_domain(domain)
                if not verdict.scraped:
                    span.set_status("unscraped")
                else:
                    span.set_status(
                        self._verdict_slug(verdict.is_isp, verdict.is_hosting)
                    )
                    span.note(
                        isp_score=verdict.isp_score,
                        hosting_score=verdict.hosting_score,
                    )
                span.note(domain=domain)

        # Stage 4: identifier-keyed source matching.
        with tb.span("source_match") as span:
            resolved = self._resolver.match_sources(contact, domain)
            span.set_status(f"{len(resolved.matches)} accepted")
            for name in sorted(resolved.matches):
                span.note(**{name: "accepted"})
            for name, reason in sorted(resolved.rejected_reasons.items()):
                span.note(**{name: f"rejected ({reason})"})

        # Stage 5: consensus pool = identifier-keyed matches + ASN-keyed
        # matches that carry NAICSlite information.
        with tb.span("consensus") as span:
            pool: Dict[str, SourceMatch] = dict(resolved.matches)
            for match in (pdb_match, ipinfo_match):
                if match is not None and match.labels:
                    pool[match.source] = match

            consensus = self._consensus(pool)

            final_labels = consensus.labels
            final_stage = consensus.stage
            final_sources = consensus.trusted_sources
            ml_labels = self._ml_labels(verdict)
            if ml_labels:
                if final_stage is Stage.MULTI_AGREE and not (
                    final_labels.overlaps_layer2(ml_labels)
                ):
                    # At least two agreeing sources contradict the
                    # classifier: the sources win (Section 5.2's hosting
                    # post-mortem).
                    span.note(decision="sources_overrule_classifier")
                else:
                    # The classifier's label, unioned with whatever the
                    # agreeing sources add to it.
                    labels = ml_labels
                    supporters: List[str] = ["classifier"]
                    for name, match in sorted(pool.items()):
                        if match.labels.overlaps_layer2(ml_labels):
                            labels = labels.union(match.labels)
                            supporters.append(name)
                    final_labels = labels
                    final_stage = Stage.CLASSIFIER
                    final_sources = tuple(supporters)
            span.set_status(final_stage.value)
            span.note(
                pool=tuple(sorted(pool)),
                trusted=final_sources,
                labels=tuple(str(label) for label in final_labels),
            )

        return self._finish(
            asn, contact, final_labels, final_stage, domain,
            final_sources, name_key,
        )

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _is_high_confidence(match: Optional[SourceMatch]) -> bool:
        """Only a PeeringDB ISP label is a high-confidence ASN match."""
        return (
            match is not None
            and match.source == "peeringdb"
            and "isp" in match.labels.layer2_slugs()
        )

    @staticmethod
    def _verdict_slug(is_isp: bool, is_hosting: bool) -> str:
        if is_isp and is_hosting:
            return "isp+hosting"
        if is_isp:
            return "isp"
        if is_hosting:
            return "hosting"
        return "negative"

    @staticmethod
    def _ml_labels(verdict: Optional[ClassifierVerdict]) -> LabelSet:
        if verdict is None or not verdict.scraped:
            return LabelSet()
        slugs: List[str] = []
        if verdict.is_isp:
            slugs.append("isp")
        if verdict.is_hosting:
            slugs.append("hosting")
        return LabelSet.from_layer2_slugs(slugs)

    def _finish(
        self,
        asn: int,
        contact,
        labels: LabelSet,
        stage: Stage,
        domain: Optional[str],
        sources: Tuple[str, ...],
        name_key: Optional[str],
    ) -> ASdbRecord:
        domain_key = org_cache_key(contact, domain)
        keys = tuple(
            key for key in dict.fromkeys((name_key, domain_key)) if key
        )
        record = ASdbRecord(
            asn=asn,
            labels=labels,
            stage=stage,
            domain=domain,
            sources=sources,
            org_key=domain_key or name_key,
            cache_keys=keys,
        )
        if self._use_cache and labels:
            for key in keys:
                self.cache.put(key, record)
        return record
