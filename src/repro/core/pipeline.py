"""The ASdb system (Figure 4): classify the owner of every AS.

Pipeline per AS, upon receipt of WHOIS data:

1. **Org cache** - if the owning organization was already classified
   (e.g. via a sibling AS), return the cached classification.
2. **Match by ASN** - query PeeringDB and IPinfo.  Only a PeeringDB ISP
   label counts as a high-confidence match; it is translated, stored, and
   returned immediately.
3. **Pick most likely domain** - pool WHOIS candidate domains with the
   ASN-keyed sources' domain hints and run the Figure-4 extraction
   algorithm (top-10 mail providers removed, common domains filtered,
   most-similar selection).
4. **ML classification** - feed the chosen domain to the Section-4.1
   scrape/translate/TF-IDF/SGD pipeline (ISP and hosting flags).
5. **Match to data sources** - D&B, Crunchbase, and Zvelo by name,
   domain, and address; matches contradicting the chosen domain are
   rejected.
6. **Consensus** - union of agreeing sources, else the accuracy-ranked
   auto-choose heuristic; the ML verdict wins unless at least two
   agreeing sources contradict it.

Observability: pass a :class:`~repro.obs.MetricsRegistry` to meter every
stage (latency histograms, stage counters, cache hit rate, per-source
lookup outcomes), and ``trace=True`` to attach a per-AS
:class:`~repro.obs.ClassificationTrace` (one span per stage above) to
each :class:`ASdbRecord`.  With neither configured the pipeline runs
exactly as before.

Execution: :meth:`ASdb.classify` / :meth:`ASdb.classify_all` run the
stages inline per AS.  :meth:`ASdb.classify_batch` hands the same
per-AS stage logic to the :mod:`repro.core.parallel` engine, which
groups organization siblings into clusters, fans cluster fronts over a
thread pool, and serves the ML and source-match stages through the bulk
endpoints — with output guaranteed byte-identical to the sequential
ascending-ASN pass.  The two paths share one implementation: the stage
sequence is a generator (:meth:`ASdb._classify_steps`) that *yields*
each external request (ASN lookups, ML verdict, source matches) and is
resumed with the answer, so the scalar driver and the batch engine
cannot diverge on pipeline semantics.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..datasources.base import DataSource, Query, SourceMatch
from ..matching.resolver import EntityResolver
from ..ml.pipeline import ClassifierVerdict, WebClassificationPipeline
from ..obs.instrument import instrument_source
from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..obs.runlog import NULL_RUNLOG
from ..obs.trace import trace_builder
from ..taxonomy import Label, LabelSet
from ..whois.registry import WhoisRegistry
from .cache import OrganizationCache, org_cache_key
from .consensus import ConsensusResult, resolve_consensus
from .database import ASdbDataset, ASdbRecord
from .stages import Stage

__all__ = ["ASdb"]

ConsensusStrategy = Callable[[Dict[str, SourceMatch]], ConsensusResult]

#: Request kinds yielded by :meth:`ASdb._classify_steps` (the contract
#: between the stage generator and its drivers).
REQUEST_ASN_MATCH = "asn_match"
REQUEST_ML = "ml"
REQUEST_SOURCES = "sources"


class ASdb:
    """The deployed classification system over pluggable components.

    Args:
        registry: Bulk WHOIS registry (raw text; parsing happens inside).
        resolver: Entity resolver for domain choice + source matching.
        peeringdb: The PeeringDB source (stage 2's high-confidence check).
        ipinfo: The IPinfo source (classification + domain hints).
        ml_pipeline: Trained web classification pipeline, or None to run
            without the ML stage (ablation).
        consensus_strategy: Consensus function (ablation knob; defaults to
            the paper's union-on-overlap + accuracy-ranked fallback).
        use_cache: Organization-level caching (ablation knob).
        metrics: Metrics registry to emit counters/histograms into
            (None = no-op instruments, zero behavior change).
        trace: Attach a per-stage span trace to every record.
        workers: Default worker count for :meth:`classify_all`; above 1
            the whole-registry pass runs through the batch engine.
        executor: ``"thread"`` (default) runs the batch engine purely on
            a thread pool; ``"process"`` additionally chunks the
            CPU-bound ML scoring stage over a process pool of the same
            worker count (output stays byte-identical — see
            :mod:`repro.core.procpool`).
        runlog: Optional :class:`~repro.obs.runlog.RunLog` event ledger;
            every classification emits an ``as.trace`` event (when
            tracing is on) and the batch engine emits phase/worker
            spans into it.  None = the inert :data:`NULL_RUNLOG`.
    """

    def __init__(
        self,
        registry: WhoisRegistry,
        resolver: EntityResolver,
        peeringdb: DataSource,
        ipinfo: DataSource,
        ml_pipeline: Optional[WebClassificationPipeline] = None,
        consensus_strategy: ConsensusStrategy = resolve_consensus,
        use_cache: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        trace: bool = False,
        workers: int = 1,
        executor: str = "thread",
        runlog=None,
    ) -> None:
        if executor not in ("thread", "process"):
            raise ValueError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        self._registry = registry
        self._resolver = resolver
        self._peeringdb = instrument_source(peeringdb, metrics)
        self._ipinfo = instrument_source(ipinfo, metrics)
        self._ml = ml_pipeline
        self._consensus = consensus_strategy
        self._use_cache = use_cache
        self._trace_enabled = trace
        self._workers = max(1, workers)
        self._executor = executor
        self.runlog = runlog if runlog is not None else NULL_RUNLOG
        self._trace_tags: Dict[str, object] = {}
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.cache: OrganizationCache[ASdbRecord] = OrganizationCache()
        self.dataset = ASdbDataset()

        self._m_classify_seconds = self.metrics.histogram(
            "asdb_classify_seconds",
            "End-to-end classification latency per AS.",
        )
        self._m_stage_total = self.metrics.counter(
            "asdb_stage_total",
            "Classified records by producing pipeline stage.",
            ("stage",),
        )
        for stage in Stage:
            self._m_stage_total.inc(0, stage=stage.value)
        self._m_cache_lookups = self.metrics.counter(
            "asdb_cache_lookups_total",
            "Organization-cache lookups by outcome.",
            ("outcome",),
        )
        for outcome in ("hit", "miss", "none_key"):
            self._m_cache_lookups.inc(0, outcome=outcome)
        self._m_cache_hit_rate = self.metrics.gauge(
            "asdb_cache_hit_rate",
            "Organization-cache hit rate over keyed lookups.",
        )

    # -- public API ---------------------------------------------------------

    def classify(self, asn: int) -> ASdbRecord:
        """Classify one AS, updating the dataset and cache."""
        record = self._classify_one(asn)
        self.dataset.add(record)
        return record

    def classify_all(self, workers: Optional[int] = None) -> ASdbDataset:
        """Classify every AS in the registry (ascending ASN order).

        ``workers`` above 1 (or a constructor-level ``workers`` default
        above 1) dispatches to :meth:`classify_batch`; the result is
        byte-identical to the sequential pass.
        """
        effective = self._workers if workers is None else max(1, workers)
        if effective > 1:
            return self.classify_batch(workers=effective)
        for asn in self._registry.asns():
            self.classify(asn)
        self.dataset.flush()
        return self.dataset

    def classify_batch(
        self,
        asns: Optional[Sequence[int]] = None,
        workers: int = 1,
    ) -> ASdbDataset:
        """Classify ``asns`` (default: the whole registry) through the
        organization-clustered batch engine.

        Organization siblings are grouped by their pre-domain cache key
        so each organization is classified exactly once per batch;
        cluster fronts fan out over ``workers`` threads and the ML /
        source-match stages run through the bulk endpoints.  Output is
        byte-identical to classifying the same ASNs sequentially in
        ascending order (see :mod:`repro.core.parallel`).
        """
        from .parallel import run_batch

        for record in run_batch(self, asns=asns, workers=workers):
            self.dataset.add(record)
            if record.trace is not None:
                self.runlog.emit("as.trace", **record.trace.to_dict())
        # Store-backed datasets buffer writes; completing a batch is a
        # durability point either way.
        self.dataset.flush()
        self._m_cache_hit_rate.set(self.cache.stats().hit_rate)
        return self.dataset

    @contextmanager
    def tag_traces(self, **tags: object):
        """Stamp provenance tags on every trace built inside the block.

        The maintenance daemon wraps each sweep's reclassification in
        this so a record's trace says *which* sweep (day, window, run
        id) produced it — the paper's §5.3 correction-queue story needs
        that attribution after the fact.
        """
        previous = self._trace_tags
        merged = dict(previous)
        merged.update(tags)
        self._trace_tags = merged
        try:
            yield self
        finally:
            self._trace_tags = previous

    def forget(self, asn: int) -> Optional[ASdbRecord]:
        """Drop an AS's record and every cache alias that could serve it.

        The superseded record is removed from the dataset up front (so a
        failing re-run cannot leave a stale entry behind) and every cache
        key that could still serve it is invalidated — the keys the
        record lists, plus any other key mapping to the record object
        (e.g. a community correction stored under the org key alone).
        Returns the dropped record, or None if the AS was unknown.
        """
        old = self.dataset.remove(asn)
        if old is not None:
            self.cache.invalidate_keys(old.cache_keys + (old.org_key,))
            self.cache.invalidate_record(old)
        return old

    def reclassify(self, asn: int) -> ASdbRecord:
        """Re-run classification for an AS whose metadata changed."""
        self.forget(asn)
        return self.classify(asn)

    # -- pipeline -----------------------------------------------------------

    def _classify_one(self, asn: int) -> ASdbRecord:
        """The scalar per-AS pass: drive the stage generator inline."""
        builder = (
            trace_builder(asn, self._trace_enabled, tags=self._trace_tags)
            if self._trace_tags
            else trace_builder(asn, self._trace_enabled)
        )
        with self._m_classify_seconds.time():
            record = self._drive(asn, builder)
        self._m_stage_total.inc(1, stage=record.stage.value)
        self._m_cache_hit_rate.set(self.cache.stats().hit_rate)
        trace = builder.finish()
        if trace is not None:
            record = replace(record, trace=trace)
            self.runlog.emit("as.trace", **trace.to_dict())
        return record

    def _drive(self, asn: int, tb) -> ASdbRecord:
        """Serve every request of one AS's stage generator, inline.

        A served call that raises aborts this AS only: the error lands
        on the trace builder and the suspended generator is *closed* in
        the ``finally`` — its ``with tb.span(...)`` blocks unwind, so
        no span is left open and no half-mutated cache entry survives
        behind an exception.
        """
        steps = self._classify_steps(asn, tb)
        try:
            request = next(steps)
            while True:
                kind = request[0]
                if kind == REQUEST_ASN_MATCH:
                    reply: object = self._asn_lookup(Query(asn=request[1]))
                elif kind == REQUEST_ML:
                    reply = self._ml.classify_domain(request[1])
                else:  # REQUEST_SOURCES
                    reply = self._resolver.match_sources(
                        request[1], request[2]
                    )
                request = steps.send(reply)
        except StopIteration as stop:
            return stop.value
        except BaseException as exc:
            tb.fail(f"{type(exc).__name__}: {exc}")
            raise
        finally:
            steps.close()

    def _asn_lookup(
        self, query: Query
    ) -> Tuple[Optional[SourceMatch], Optional[SourceMatch], Tuple[str, ...]]:
        """Stage 1's reply: (peeringdb, ipinfo, degraded source names).

        Sources wrapped by the resilience layer report failures as
        degraded names; bare sources keep the original semantics (a
        raising lookup propagates).
        """
        matches: List[Optional[SourceMatch]] = []
        degraded: List[str] = []
        for source in (self._peeringdb, self._ipinfo):
            if hasattr(source, "try_lookup"):
                outcome = source.try_lookup(query)
                if outcome.failed:
                    degraded.append(source.name)
                matches.append(outcome.match)
            else:
                matches.append(source.lookup(query))
        return matches[0], matches[1], tuple(degraded)

    def _classify_steps(self, asn: int, tb):
        """The Figure-4 stage sequence for one AS, as a generator.

        Yields a request tuple for every external call — ``(asn_match,
        asn)``, ``(ml, domain)``, ``(sources, contact, domain)`` — and
        expects to be resumed (``send``) with the answer.  The scalar
        driver serves each request with the per-item call; the batch
        engine suspends many generators at the same request kind and
        serves them through one bulk call.  Because every stage decision
        lives in here, the two execution modes cannot diverge.
        """
        parsed = self._registry.parsed(asn)
        contact = self._registry.contact(asn)
        as_name = parsed.as_name or contact.name

        # Stage 0: organization cache (pre-domain key uses the name).
        name_key = org_cache_key(contact, domain=None)
        if self._use_cache:
            with tb.span("cache") as span:
                cached = self.cache.get(name_key)
                outcome = (
                    "none_key" if name_key is None
                    else "hit" if cached is not None
                    else "miss"
                )
                self._m_cache_lookups.inc(1, outcome=outcome)
                span.set_status(outcome)
                span.note(key=name_key)
            if cached is not None:
                return ASdbRecord(
                    asn=asn,
                    labels=cached.labels,
                    stage=Stage.CACHED,
                    domain=cached.domain,
                    sources=cached.sources,
                    org_key=cached.org_key,
                    cache_keys=cached.cache_keys,
                    degraded_sources=cached.degraded_sources,
                )

        # Stage 1: ASN-keyed lookups.
        with tb.span("asn_match") as span:
            pdb_match, ipinfo_match, degraded = yield (REQUEST_ASN_MATCH, asn)
            high_confidence = self._is_high_confidence(pdb_match)
            span.note(
                peeringdb="match" if pdb_match is not None else "miss",
                ipinfo="match" if ipinfo_match is not None else "miss",
            )
            if degraded:
                span.note(degraded=degraded)
            span.set_status(
                "high_confidence" if high_confidence else "no_high_confidence"
            )
        if high_confidence:
            return self._finish(
                asn,
                contact,
                labels=pdb_match.labels,
                stage=Stage.MATCHED_BY_ASN,
                domain=pdb_match.entry.domain,
                sources=("peeringdb",),
                name_key=name_key,
                degraded=degraded,
            )

        # Stage 2: domain extraction with ASN-source hints.
        with tb.span("domain_choice") as span:
            hints: List[str] = []
            for match in (pdb_match, ipinfo_match):
                if match is not None and match.entry.domain:
                    hints.append(match.entry.domain)
            domain = self._resolver.choose_domain(contact, as_name, hints)
            span.set_status("chosen" if domain else "none")
            span.note(
                domain=domain,
                candidates=len(contact.candidate_domains),
                hints=tuple(hints),
            )

        # Stage 3: ML classification of the chosen domain.
        verdict: Optional[ClassifierVerdict] = None
        with tb.span("ml") as span:
            if self._ml is None:
                span.set_status("disabled")
            elif domain is None:
                span.set_status("no_domain")
            else:
                verdict = yield (REQUEST_ML, domain)
                if not verdict.scraped:
                    span.set_status("unscraped")
                else:
                    span.set_status(
                        self._verdict_slug(verdict.is_isp, verdict.is_hosting)
                    )
                    span.note(
                        isp_score=verdict.isp_score,
                        hosting_score=verdict.hosting_score,
                    )
                span.note(domain=domain)

        # Stage 4: identifier-keyed source matching.
        with tb.span("source_match") as span:
            resolved = yield (REQUEST_SOURCES, contact, domain)
            span.set_status(f"{len(resolved.matches)} accepted")
            for name in sorted(resolved.matches):
                span.note(**{name: "accepted"})
            for name, reason in sorted(resolved.rejected_reasons.items()):
                span.note(**{name: f"rejected ({reason})"})
            if resolved.degraded:
                span.note(degraded=resolved.degraded)
            degraded = degraded + tuple(
                name for name in resolved.degraded if name not in degraded
            )

        # Stage 5: consensus pool = identifier-keyed matches + ASN-keyed
        # matches that carry NAICSlite information.
        with tb.span("consensus") as span:
            pool: Dict[str, SourceMatch] = dict(resolved.matches)
            for match in (pdb_match, ipinfo_match):
                if match is not None and match.labels:
                    pool[match.source] = match

            consensus = self._consensus(pool)

            final_labels = consensus.labels
            final_stage = consensus.stage
            final_sources = consensus.trusted_sources
            ml_labels = self._ml_labels(verdict)
            if ml_labels:
                if final_stage is Stage.MULTI_AGREE and not (
                    final_labels.overlaps_layer2(ml_labels)
                ):
                    # At least two agreeing sources contradict the
                    # classifier: the sources win (Section 5.2's hosting
                    # post-mortem).
                    span.note(decision="sources_overrule_classifier")
                else:
                    # The classifier's label, unioned with whatever the
                    # agreeing sources add to it.
                    labels = ml_labels
                    supporters: List[str] = ["classifier"]
                    for name, match in sorted(pool.items()):
                        if match.labels.overlaps_layer2(ml_labels):
                            labels = labels.union(match.labels)
                            supporters.append(name)
                    final_labels = labels
                    final_stage = Stage.CLASSIFIER
                    final_sources = tuple(supporters)
            span.set_status(final_stage.value)
            span.note(
                pool=tuple(sorted(pool)),
                trusted=final_sources,
                labels=tuple(str(label) for label in final_labels),
            )

        return self._finish(
            asn, contact, final_labels, final_stage, domain,
            final_sources, name_key, degraded=degraded,
        )

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _is_high_confidence(match: Optional[SourceMatch]) -> bool:
        """Only a PeeringDB ISP label is a high-confidence ASN match."""
        return (
            match is not None
            and match.source == "peeringdb"
            and "isp" in match.labels.layer2_slugs()
        )

    @staticmethod
    def _verdict_slug(is_isp: bool, is_hosting: bool) -> str:
        if is_isp and is_hosting:
            return "isp+hosting"
        if is_isp:
            return "isp"
        if is_hosting:
            return "hosting"
        return "negative"

    @staticmethod
    def _ml_labels(verdict: Optional[ClassifierVerdict]) -> LabelSet:
        if verdict is None or not verdict.scraped:
            return LabelSet()
        slugs: List[str] = []
        if verdict.is_isp:
            slugs.append("isp")
        if verdict.is_hosting:
            slugs.append("hosting")
        return LabelSet.from_layer2_slugs(slugs)

    def _finish(
        self,
        asn: int,
        contact,
        labels: LabelSet,
        stage: Stage,
        domain: Optional[str],
        sources: Tuple[str, ...],
        name_key: Optional[str],
        degraded: Tuple[str, ...] = (),
    ) -> ASdbRecord:
        domain_key = org_cache_key(contact, domain)
        keys = tuple(
            key for key in dict.fromkeys((name_key, domain_key)) if key
        )
        record = ASdbRecord(
            asn=asn,
            labels=labels,
            stage=stage,
            domain=domain,
            sources=sources,
            org_key=domain_key or name_key,
            cache_keys=keys,
            degraded_sources=degraded,
        )
        if self._use_cache and labels:
            for key in keys:
                self.cache.put(key, record)
        return record
