"""The ASdb system (Figure 4): classify the owner of every AS.

Pipeline per AS, upon receipt of WHOIS data:

1. **Org cache** - if the owning organization was already classified
   (e.g. via a sibling AS), return the cached classification.
2. **Match by ASN** - query PeeringDB and IPinfo.  Only a PeeringDB ISP
   label counts as a high-confidence match; it is translated, stored, and
   returned immediately.
3. **Pick most likely domain** - pool WHOIS candidate domains with the
   ASN-keyed sources' domain hints and run the Figure-4 extraction
   algorithm (top-10 mail providers removed, common domains filtered,
   most-similar selection).
4. **ML classification** - feed the chosen domain to the Section-4.1
   scrape/translate/TF-IDF/SGD pipeline (ISP and hosting flags).
5. **Match to data sources** - D&B, Crunchbase, and Zvelo by name,
   domain, and address; matches contradicting the chosen domain are
   rejected.
6. **Consensus** - union of agreeing sources, else the accuracy-ranked
   auto-choose heuristic; the ML verdict wins unless at least two
   agreeing sources contradict it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..datasources.base import DataSource, Query, SourceMatch
from ..matching.resolver import EntityResolver
from ..ml.pipeline import ClassifierVerdict, WebClassificationPipeline
from ..taxonomy import Label, LabelSet
from ..whois.registry import WhoisRegistry
from .cache import OrganizationCache, org_cache_key
from .consensus import ConsensusResult, resolve_consensus
from .database import ASdbDataset, ASdbRecord
from .stages import Stage

__all__ = ["ASdb"]

ConsensusStrategy = Callable[[Dict[str, SourceMatch]], ConsensusResult]


class ASdb:
    """The deployed classification system over pluggable components.

    Args:
        registry: Bulk WHOIS registry (raw text; parsing happens inside).
        resolver: Entity resolver for domain choice + source matching.
        peeringdb: The PeeringDB source (stage 2's high-confidence check).
        ipinfo: The IPinfo source (classification + domain hints).
        ml_pipeline: Trained web classification pipeline, or None to run
            without the ML stage (ablation).
        consensus_strategy: Consensus function (ablation knob; defaults to
            the paper's union-on-overlap + accuracy-ranked fallback).
        use_cache: Organization-level caching (ablation knob).
    """

    def __init__(
        self,
        registry: WhoisRegistry,
        resolver: EntityResolver,
        peeringdb: DataSource,
        ipinfo: DataSource,
        ml_pipeline: Optional[WebClassificationPipeline] = None,
        consensus_strategy: ConsensusStrategy = resolve_consensus,
        use_cache: bool = True,
    ) -> None:
        self._registry = registry
        self._resolver = resolver
        self._peeringdb = peeringdb
        self._ipinfo = ipinfo
        self._ml = ml_pipeline
        self._consensus = consensus_strategy
        self._use_cache = use_cache
        self.cache: OrganizationCache[ASdbRecord] = OrganizationCache()
        self.dataset = ASdbDataset()

    # -- public API ---------------------------------------------------------

    def classify(self, asn: int) -> ASdbRecord:
        """Classify one AS, updating the dataset and cache."""
        record = self._classify(asn)
        self.dataset.add(record)
        return record

    def classify_all(self) -> ASdbDataset:
        """Classify every AS in the registry (ascending ASN order)."""
        for asn in self._registry.asns():
            self.classify(asn)
        return self.dataset

    def reclassify(self, asn: int) -> ASdbRecord:
        """Re-run classification for an AS whose metadata changed,
        invalidating any cached organization entry first."""
        old = self.dataset.get(asn)
        if old is not None:
            for key in old.cache_keys:
                self.cache.invalidate(key)
            self.cache.invalidate(old.org_key)
        return self.classify(asn)

    # -- pipeline -----------------------------------------------------------

    def _classify(self, asn: int) -> ASdbRecord:
        parsed = self._registry.parsed(asn)
        contact = self._registry.contact(asn)
        as_name = parsed.as_name or contact.name

        # Stage 0: organization cache (pre-domain key uses the name).
        name_key = org_cache_key(contact, domain=None)
        if self._use_cache:
            cached = self.cache.get(name_key)
            if cached is not None:
                return ASdbRecord(
                    asn=asn,
                    labels=cached.labels,
                    stage=Stage.CACHED,
                    domain=cached.domain,
                    sources=cached.sources,
                    org_key=cached.org_key,
                    cache_keys=cached.cache_keys,
                )

        # Stage 1: ASN-keyed lookups.
        asn_query = Query(asn=asn)
        pdb_match = self._peeringdb.lookup(asn_query)
        ipinfo_match = self._ipinfo.lookup(asn_query)
        if self._is_high_confidence(pdb_match):
            return self._finish(
                asn,
                contact,
                labels=pdb_match.labels,
                stage=Stage.MATCHED_BY_ASN,
                domain=pdb_match.entry.domain,
                sources=("peeringdb",),
                name_key=name_key,
            )

        # Stage 2: domain extraction with ASN-source hints.
        hints: List[str] = []
        for match in (pdb_match, ipinfo_match):
            if match is not None and match.entry.domain:
                hints.append(match.entry.domain)
        resolved = self._resolver.resolve(contact, as_name, hints)
        domain = resolved.chosen_domain

        # Stage 3: ML classification of the chosen domain.
        verdict: Optional[ClassifierVerdict] = None
        if self._ml is not None and domain is not None:
            verdict = self._ml.classify_domain(domain)

        # Stage 4: consensus pool = identifier-keyed matches + ASN-keyed
        # matches that carry NAICSlite information.
        pool: Dict[str, SourceMatch] = dict(resolved.matches)
        for match in (pdb_match, ipinfo_match):
            if match is not None and match.labels:
                pool[match.source] = match

        consensus = self._consensus(pool)

        ml_labels = self._ml_labels(verdict)
        if ml_labels:
            if consensus.stage is Stage.MULTI_AGREE and not (
                consensus.labels.overlaps_layer2(ml_labels)
            ):
                # At least two agreeing sources contradict the classifier:
                # the sources win (Section 5.2's hosting post-mortem).
                return self._finish(
                    asn, contact, consensus.labels, consensus.stage,
                    domain, consensus.trusted_sources, name_key,
                )
            # The classifier's label, unioned with whatever the agreeing
            # sources add to it.
            labels = ml_labels
            supporters: List[str] = ["classifier"]
            for name, match in sorted(pool.items()):
                if match.labels.overlaps_layer2(ml_labels):
                    labels = labels.union(match.labels)
                    supporters.append(name)
            return self._finish(
                asn, contact, labels, Stage.CLASSIFIER, domain,
                tuple(supporters), name_key,
            )

        return self._finish(
            asn, contact, consensus.labels, consensus.stage, domain,
            consensus.trusted_sources, name_key,
        )

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _is_high_confidence(match: Optional[SourceMatch]) -> bool:
        """Only a PeeringDB ISP label is a high-confidence ASN match."""
        return (
            match is not None
            and match.source == "peeringdb"
            and "isp" in match.labels.layer2_slugs()
        )

    @staticmethod
    def _ml_labels(verdict: Optional[ClassifierVerdict]) -> LabelSet:
        if verdict is None or not verdict.scraped:
            return LabelSet()
        slugs: List[str] = []
        if verdict.is_isp:
            slugs.append("isp")
        if verdict.is_hosting:
            slugs.append("hosting")
        return LabelSet.from_layer2_slugs(slugs)

    def _finish(
        self,
        asn: int,
        contact,
        labels: LabelSet,
        stage: Stage,
        domain: Optional[str],
        sources: Tuple[str, ...],
        name_key: Optional[str],
    ) -> ASdbRecord:
        domain_key = org_cache_key(contact, domain)
        keys = tuple(
            key for key in dict.fromkeys((name_key, domain_key)) if key
        )
        record = ASdbRecord(
            asn=asn,
            labels=labels,
            stage=stage,
            domain=domain,
            sources=sources,
            org_key=domain_key or name_key,
            cache_keys=keys,
        )
        if self._use_cache and labels:
            for key in keys:
                self.cache.put(key, record)
        return record
