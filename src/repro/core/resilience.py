"""Retry, circuit breaking, and graceful degradation for source calls.

The deployed pipeline (Section 3, Figure 4) depends on five external
services; one flaky source must cost the affected lookups, never the
run.  This module wraps any :class:`~repro.datasources.base.DataSource`
in a :class:`ResilientSource` that the pipeline consults before every
source call:

1. a per-source :class:`CircuitBreaker` (closed -> open -> half-open)
   sheds calls to a source that keeps failing, then probes it for
   recovery;
2. a :class:`RetryPolicy` bounds retries per lookup, with exponential
   backoff and deterministic jitter derived from the run seed, plus a
   per-attempt timeout and an optional per-lookup time budget;
3. malformed entries (see
   :func:`~repro.datasources.faults.is_malformed_match`) are treated as
   failed attempts, so corrupted responses are retried instead of fed
   to consensus;
4. a lookup whose attempts are exhausted *degrades* — the outcome is
   reported as failed and the pipeline records the source in the
   record's ``degraded_sources`` instead of crashing the run.

Determinism: retry outcomes are pure per query.  Backoff jitter hashes
``(seed, source, query, attempt)``; injected faults (when the wrapped
source is a :class:`~repro.datasources.faults.FaultySource`) hash the
same material; and timeout checks against injected latency consult the
fault oracle rather than the wall clock.  The circuit breaker is the
one deliberately shared piece of state: it is count-based (never
time-based), so its transitions are reproducible for a fixed call
order, and for a uniformly-down source its open-state rejections
produce the same per-record outcome as the failed probes they replace —
which is why a scalar and a batch run over the same
:class:`~repro.datasources.faults.FaultPlan` still produce identical
records.

Metrics (all no-op without a registry): ``asdb_source_errors_total
{source, kind}``, ``asdb_retries_total{source}``,
``asdb_source_degraded_total{source}``, ``asdb_breaker_state{source}``
(0 closed / 1 half-open / 2 open), and
``asdb_breaker_transitions_total{source, to}``.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..datasources.base import DataSource, Query, SourceMatch
from ..datasources.faults import (
    RateLimited,
    SourceFault,
    SourceOutage,
    is_malformed_match,
)
from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..obs.runlog import NULL_RUNLOG

__all__ = [
    "RetryPolicy",
    "LookupOutcome",
    "CircuitBreaker",
    "ResilientSource",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: Gauge encoding of breaker states.
_STATE_VALUES = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}

#: ``kind`` label values of ``asdb_source_errors_total``.
ERROR_KINDS = (
    "outage", "rate_limited", "malformed", "timeout", "error",
)


class SourceTimeout(SourceFault):
    """An attempt exceeded the policy's per-attempt timeout."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry configuration for one resilient source.

    Attributes:
        max_retries: Retries after the first attempt (0 = fail fast).
        backoff_base: First-retry backoff in seconds; 0 disables
            sleeping entirely (tests, CLI smoke runs).
        backoff_multiplier: Exponential growth factor per retry.
        backoff_cap: Upper bound on a single backoff sleep.
        timeout_seconds: Per-attempt deadline.  An attempt whose
            (injected or measured) latency exceeds it counts as a
            ``timeout`` failure; None disables the check.
        budget_seconds: Optional per-lookup wall budget across all
            attempts (injected latency included); once spent, remaining
            retries are abandoned.
        seed: Seed for deterministic backoff jitter (the run seed, via
            :class:`~repro.system.SystemConfig`).
        breaker_enabled: Attach a per-source circuit breaker.
        breaker_failure_threshold: Consecutive failed attempts that
            open the breaker.
        breaker_recovery_probes: Rejected calls while open before the
            breaker half-opens and allows a probe.
    """

    max_retries: int = 2
    backoff_base: float = 0.005
    backoff_multiplier: float = 2.0
    backoff_cap: float = 0.25
    timeout_seconds: Optional[float] = 1.0
    budget_seconds: Optional[float] = None
    seed: int = 0
    breaker_enabled: bool = True
    breaker_failure_threshold: int = 5
    breaker_recovery_probes: int = 8

    def backoff_seconds(self, source: str, query_key: str, attempt: int) -> float:
        """Backoff before retry ``attempt``, with deterministic jitter
        in [0.5x, 1.5x) hashed from (seed, source, query, attempt)."""
        if self.backoff_base <= 0:
            return 0.0
        base = self.backoff_base * self.backoff_multiplier ** attempt
        material = f"backoff|{self.seed}|{source}|{query_key}|{attempt}"
        jitter = 0.5 + zlib.crc32(material.encode()) / 2**32
        return min(self.backoff_cap, base * jitter)


@dataclass(frozen=True)
class LookupOutcome:
    """One resilient lookup's result, failure or not.

    Attributes:
        match: The match (None on a miss *or* a failure).
        failed: The source could not answer: attempts exhausted, budget
            spent, or breaker open.
        error: Short description of the final failure.
        attempts: Attempts actually performed (0 = breaker rejection).
    """

    match: Optional[SourceMatch] = None
    failed: bool = False
    error: str = ""
    attempts: int = 1


class CircuitBreaker:
    """A count-based closed -> open -> half-open breaker.

    Closed: calls flow; ``failure_threshold`` *consecutive* failures
    open the breaker.  Open: calls are rejected without touching the
    source; after ``recovery_probes`` rejections the breaker half-opens.
    Half-open: exactly one probe call is allowed through; its success
    closes the breaker, its failure re-opens it.

    Counting calls instead of wall time keeps transitions reproducible
    run to run.  All methods are thread-safe (the batch engine consults
    one breaker from many workers).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_probes: int = 8,
    ) -> None:
        if failure_threshold < 1 or recovery_probes < 1:
            raise ValueError("breaker thresholds must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_probes = recovery_probes
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._rejections = 0
        self._probe_in_flight = False
        self._transitions: List[str] = []

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def transitions(self) -> Tuple[str, ...]:
        """Every state entered after the initial closed, in order."""
        with self._lock:
            return tuple(self._transitions)

    def _transition(self, state: str) -> None:
        self._state = state
        self._transitions.append(state)

    def allow(self) -> bool:
        """Consult the breaker before a call; False = shed the call."""
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_OPEN:
                self._rejections += 1
                if self._rejections >= self.recovery_probes:
                    self._transition(BREAKER_HALF_OPEN)
                    self._probe_in_flight = True
                    return True
                return False
            # Half-open: one probe at a time.
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state != BREAKER_CLOSED:
                self._transition(BREAKER_CLOSED)
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            if self._state == BREAKER_HALF_OPEN:
                self._probe_in_flight = False
                self._rejections = 0
                self._transition(BREAKER_OPEN)
                return
            self._consecutive_failures += 1
            if (
                self._state == BREAKER_CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._rejections = 0
                self._transition(BREAKER_OPEN)


def _error_kind(exc: Exception) -> str:
    if isinstance(exc, SourceOutage):
        return "outage"
    if isinstance(exc, RateLimited):
        return "rate_limited"
    if isinstance(exc, SourceTimeout):
        return "timeout"
    return "error"


class ResilientSource(DataSource):
    """Retry + breaker + degradation around any ``DataSource``.

    Drop-in for the plain contract — ``lookup`` / ``lookup_many`` never
    raise; a source that cannot answer simply yields None — while
    :meth:`try_lookup` / :meth:`try_lookup_many` additionally report
    *failed* outcomes so the pipeline can record degraded sources on
    the produced records.

    When the wrapped source (directly) is a
    :class:`~repro.datasources.faults.FaultySource`, attempts go
    through its ``lookup_attempt`` so retries re-roll the injected
    faults, and the per-attempt timeout consults the fault oracle's
    injected latency instead of the wall clock — keeping fault runs
    deterministic.
    """

    #: Tells :func:`repro.obs.instrument.instrument_source` not to wrap
    #: this source again (metering belongs *inside* the retry loop).
    already_metered = True

    def __init__(
        self,
        inner: DataSource,
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        metrics: Optional[MetricsRegistry] = None,
        sleep=time.sleep,
        runlog=None,
    ) -> None:
        self._inner = inner
        self.name = inner.name
        self._runlog = runlog if runlog is not None else NULL_RUNLOG
        self.policy = policy or RetryPolicy()
        if breaker is None and self.policy.breaker_enabled:
            breaker = CircuitBreaker(
                failure_threshold=self.policy.breaker_failure_threshold,
                recovery_probes=self.policy.breaker_recovery_probes,
            )
        self.breaker = breaker
        self._sleep = sleep
        self._oracle = inner if hasattr(inner, "lookup_attempt") else None
        self._emitted_transitions = 0
        # `is not None`, not truthiness: an empty MetricsRegistry has
        # len() == 0 and would silently fall through to the null sink.
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_errors = registry.counter(
            "asdb_source_errors_total",
            "Failed source-lookup attempts by source and failure kind.",
            ("source", "kind"),
        )
        for kind in ERROR_KINDS:
            self._m_errors.inc(0, source=self.name, kind=kind)
        self._m_retries = registry.counter(
            "asdb_retries_total",
            "Source-lookup retries performed.",
            ("source",),
        )
        self._m_retries.inc(0, source=self.name)
        self._m_degraded = registry.counter(
            "asdb_source_degraded_total",
            "Lookups abandoned after retries/breaker (degraded answers).",
            ("source",),
        )
        self._m_degraded.inc(0, source=self.name)
        self._m_breaker_state = registry.gauge(
            "asdb_breaker_state",
            "Circuit-breaker state (0 closed, 1 half-open, 2 open).",
            ("source",),
        )
        self._m_breaker_state.set(0, source=self.name)
        self._m_breaker_transitions = registry.counter(
            "asdb_breaker_transitions_total",
            "Circuit-breaker state transitions.",
            ("source", "to"),
        )
        for state in (BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN):
            self._m_breaker_transitions.inc(0, source=self.name, to=state)

    @property
    def inner(self) -> DataSource:
        """The wrapped source."""
        return self._inner

    # -- resilient API --------------------------------------------------------

    def try_lookup(self, query: Query) -> LookupOutcome:
        """One lookup with the full retry/breaker/timeout treatment."""
        policy = self.policy
        query_key = repr(
            (query.name, query.domain, query.address, query.phone, query.asn)
        )
        spent = 0.0
        last_error = ""
        for attempt in range(policy.max_retries + 1):
            if self.breaker is not None and not self.breaker.allow():
                self._note_breaker()
                self._m_degraded.inc(1, source=self.name)
                return LookupOutcome(
                    failed=True, error="breaker_open", attempts=attempt
                )
            try:
                match, elapsed = self._attempt(query, attempt)
            except Exception as exc:  # resilience boundary: degrade, not die
                kind = _error_kind(exc)
                self._m_errors.inc(1, source=self.name, kind=kind)
                self._record_failure()
                last_error = f"{kind}: {exc}"
            else:
                if is_malformed_match(match):
                    self._m_errors.inc(
                        1, source=self.name, kind="malformed"
                    )
                    self._record_failure()
                    last_error = "malformed: corrupted entry"
                    spent += elapsed
                else:
                    self._record_success()
                    return LookupOutcome(match=match, attempts=attempt + 1)
            if attempt >= policy.max_retries:
                break
            if (
                policy.budget_seconds is not None
                and spent >= policy.budget_seconds
            ):
                last_error = f"budget_exhausted after {last_error}"
                break
            delay = policy.backoff_seconds(self.name, query_key, attempt)
            if delay > 0:
                self._sleep(delay)
                spent += delay
            self._m_retries.inc(1, source=self.name)
        self._m_degraded.inc(1, source=self.name)
        return LookupOutcome(
            failed=True,
            error=last_error or "exhausted",
            attempts=policy.max_retries + 1,
        )

    def try_lookup_many(
        self, queries: Sequence[Query]
    ) -> List[LookupOutcome]:
        """Bulk resilient lookup, elementwise identical to
        :meth:`try_lookup` per query.

        Without fault injection the inner bulk endpoint is tried first
        (one fast vectorized pass); if it raises, the per-query path
        takes over so retry/breaker semantics still apply.  With a
        fault oracle attached the per-query path is used directly —
        correctness of the injected fault sequence over bulk speed.
        """
        queries = list(queries)
        if self._oracle is None:
            try:
                matches = self._inner.lookup_many(queries)
            except Exception:
                pass  # fall through to the per-query resilient path
            else:
                for match in matches:
                    self._record_success()
                return [LookupOutcome(match=match) for match in matches]
        return [self.try_lookup(query) for query in queries]

    # -- DataSource contract (never raises) -----------------------------------

    def lookup(self, query: Query) -> Optional[SourceMatch]:
        return self.try_lookup(query).match

    def lookup_many(
        self, queries: Sequence[Query]
    ) -> List[Optional[SourceMatch]]:
        return [
            outcome.match for outcome in self.try_lookup_many(queries)
        ]

    def lookup_by_org(self, org_id: str) -> Optional[SourceMatch]:
        return self._inner.lookup_by_org(org_id)

    def coverage_count(self) -> int:
        return self._inner.coverage_count()

    # -- internals ------------------------------------------------------------

    def _attempt(
        self, query: Query, attempt: int
    ) -> Tuple[Optional[SourceMatch], float]:
        """One attempt; returns (match, elapsed seconds) or raises."""
        timeout = self.policy.timeout_seconds
        if self._oracle is not None:
            decision = self._oracle.decide(query, attempt)
            latency = decision.latency_seconds
            if timeout is not None and latency > timeout:
                raise SourceTimeout(
                    f"{self.name}: injected latency {latency:.2f}s exceeds "
                    f"timeout {timeout:.2f}s (attempt {attempt})"
                )
            return self._oracle.lookup_attempt(query, attempt), latency
        start = time.perf_counter()
        match = self._inner.lookup(query)
        elapsed = time.perf_counter() - start
        if timeout is not None and elapsed > timeout:
            raise SourceTimeout(
                f"{self.name}: lookup took {elapsed:.2f}s, over the "
                f"{timeout:.2f}s timeout"
            )
        return match, elapsed

    def _record_failure(self) -> None:
        if self.breaker is not None:
            self.breaker.record_failure()
            self._note_breaker()

    def _record_success(self) -> None:
        if self.breaker is not None:
            self.breaker.record_success()
            self._note_breaker()

    def _note_breaker(self) -> None:
        state = self.breaker.state
        self._m_breaker_state.set(
            _STATE_VALUES[state], source=self.name
        )
        # Count only genuine transitions (the transitions list grows
        # monotonically; emit the delta since the last observation).
        transitions = self.breaker.transitions
        for to in transitions[self._emitted_transitions:]:
            self._m_breaker_transitions.inc(1, source=self.name, to=to)
            self._runlog.emit(
                "breaker.transition", source=self.name, to=to
            )
        self._emitted_transitions = len(transitions)

    def breaker_state(self) -> str:
        """The breaker's current state name (``closed`` without one)."""
        return self.breaker.state if self.breaker is not None else (
            BREAKER_CLOSED
        )
