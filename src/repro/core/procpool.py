"""A picklable chunked process-pool driver for CPU-bound batch stages.

The thread-based batch engine (:mod:`repro.core.parallel`) wins on the
I/O-shaped stages, but pure-Python CPU work — ensemble scoring over raw
count math, the similarity DP — serializes on the GIL.  This module
drives such stages across processes:

* ``job`` must be a picklable module-level function taking
  ``(payload, chunk)`` and returning one result per chunk item;
* ``payload`` (e.g. a frozen scorer holding model weights) is shipped
  once per worker via the pool initializer, not once per chunk;
* items are split into contiguous chunks and results are merged back in
  submission order, so the output is positionally identical to
  ``job(payload, items)`` whenever ``job`` is elementwise.

Kept dependency-free (stdlib only) so any layer can import it without
touching the :mod:`repro.core` package cycle.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from itertools import repeat
from typing import Any, Callable, List, Optional, Sequence, TypeVar

__all__ = ["map_chunked"]

Item = TypeVar("Item")
Result = TypeVar("Result")

# Per-worker payload slot, filled by the pool initializer so the (often
# large) payload crosses the process boundary once instead of per task.
_PAYLOAD: Any = None


def _init_worker(payload: Any) -> None:
    global _PAYLOAD
    _PAYLOAD = payload


def _run_chunk(
    job: Callable[[Any, Sequence[Item]], List[Result]],
    chunk: Sequence[Item],
) -> List[Result]:
    return job(_PAYLOAD, chunk)


def map_chunked(
    job: Callable[[Any, Sequence[Item]], List[Result]],
    payload: Any,
    items: Sequence[Item],
    workers: int,
    chunk_size: Optional[int] = None,
) -> List[Result]:
    """Run ``job(payload, chunk)`` over ``items`` on a process pool.

    Returns the concatenated per-chunk results in item order.  With
    ``workers <= 1`` (or a single-item batch) the job runs in-process —
    same code path as the workers, so results cannot depend on where
    they were computed.
    """
    items = list(items)
    if not items:
        return []
    workers = max(1, min(int(workers), len(items)))
    if workers == 1:
        return list(job(payload, items))
    if chunk_size is None:
        chunk_size = -(-len(items) // workers)  # ceil division
    chunks = [
        items[start:start + chunk_size]
        for start in range(0, len(items), chunk_size)
    ]
    with ProcessPoolExecutor(
        max_workers=min(workers, len(chunks)),
        initializer=_init_worker,
        initargs=(payload,),
    ) as pool:
        merged: List[Result] = []
        for part in pool.map(_run_chunk, repeat(job), chunks):
            merged.extend(part)
    return merged
