"""A picklable chunked process-pool driver for CPU-bound batch stages.

The thread-based batch engine (:mod:`repro.core.parallel`) wins on the
I/O-shaped stages, but pure-Python CPU work — ensemble scoring over raw
count math, the similarity DP — serializes on the GIL.  This module
drives such stages across processes:

* ``job`` must be a picklable module-level function taking
  ``(payload, chunk)`` and returning one result per chunk item;
* ``payload`` (e.g. a frozen scorer holding model weights) is shipped
  once per worker via the pool initializer, not once per chunk;
* items are split into contiguous chunks and results are merged back in
  submission order, so the output is positionally identical to
  ``job(payload, items)`` whenever ``job`` is elementwise.

Kept dependency-free (stdlib only) so any layer can import it without
touching the :mod:`repro.core` package cycle.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from itertools import repeat
from typing import (
    Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, TypeVar,
)

__all__ = ["map_chunked"]

Item = TypeVar("Item")
Result = TypeVar("Result")

# Per-worker payload slot, filled by the pool initializer so the (often
# large) payload crosses the process boundary once instead of per task.
_PAYLOAD: Any = None


def _init_worker(payload: Any) -> None:
    global _PAYLOAD
    _PAYLOAD = payload


def _run_chunk(
    job: Callable[[Any, Sequence[Item]], List[Result]],
    chunk: Sequence[Item],
) -> List[Result]:
    return job(_PAYLOAD, chunk)


def _chunk_span_record(
    context: Mapping[str, object],
    index: int,
    duration: float,
    n_items: int,
    status: str,
) -> Dict[str, object]:
    """A ledger-shaped ``span`` record for one timed chunk.

    Plain dicts, not :mod:`repro.obs` types: workers cannot reach the
    parent's ledger (or this module's dependency-free contract), so they
    describe their span in the ledger's wire format and let the parent
    emit it verbatim (``RunLog.emit_span_record``).  ``caller_pid`` in
    the context distinguishes a true pool worker from the in-process
    fallback path.
    """
    pid = os.getpid()
    in_worker = pid != context.get("caller_pid")
    return {
        "span_id": f"pp-{pid}-{index}",
        "parent_id": context.get("parent_id"),
        "name": "procpool.chunk",
        "duration": duration,
        "status": status,
        "attributes": {"items": n_items, "chunk": index},
        "worker": {
            "kind": "process" if in_worker else "main",
            "name": multiprocessing.current_process().name,
            "pid": pid,
        },
    }


def _run_chunk_spanned(
    job: Callable[[Any, Sequence[Item]], List[Result]],
    chunk: Sequence[Item],
    index: int,
    context: Mapping[str, object],
) -> Tuple[List[Result], Dict[str, object]]:
    start = time.perf_counter()
    results = job(_PAYLOAD, chunk)
    record = _chunk_span_record(
        context, index, time.perf_counter() - start, len(chunk), "ok"
    )
    return results, record


def map_chunked(
    job: Callable[[Any, Sequence[Item]], List[Result]],
    payload: Any,
    items: Sequence[Item],
    workers: int,
    chunk_size: Optional[int] = None,
    span_context: Optional[Mapping[str, object]] = None,
    span_sink: Optional[List[Dict[str, object]]] = None,
) -> List[Result]:
    """Run ``job(payload, chunk)`` over ``items`` on a process pool.

    Returns the concatenated per-chunk results in item order.  With
    ``workers <= 1`` (or a single-item batch) the job runs in-process —
    same code path as the workers, so results cannot depend on where
    they were computed.

    When ``span_context`` (a picklable mapping, usually
    ``RunLog.span_context(parent_id)``) is given, every chunk — pooled
    or in-process — is timed worker-side and its ledger-shaped span
    record is appended to ``span_sink``; the caller emits those records
    into the run ledger, stitching process-pool work under the parent
    run id.
    """
    items = list(items)
    if not items:
        return []
    spanned = span_context is not None and span_sink is not None
    if spanned:
        context: Dict[str, object] = dict(span_context)
        context.setdefault("caller_pid", os.getpid())
    workers = max(1, min(int(workers), len(items)))
    if workers == 1:
        if spanned:
            results, record = _run_chunk_spanned_inline(
                job, payload, items, context
            )
            span_sink.append(record)
            return results
        return list(job(payload, items))
    if chunk_size is None:
        chunk_size = -(-len(items) // workers)  # ceil division
    chunks = [
        items[start:start + chunk_size]
        for start in range(0, len(items), chunk_size)
    ]
    with ProcessPoolExecutor(
        max_workers=min(workers, len(chunks)),
        initializer=_init_worker,
        initargs=(payload,),
    ) as pool:
        merged: List[Result] = []
        if spanned:
            for part, record in pool.map(
                _run_chunk_spanned,
                repeat(job),
                chunks,
                range(len(chunks)),
                repeat(context),
            ):
                merged.extend(part)
                span_sink.append(record)
        else:
            for part in pool.map(_run_chunk, repeat(job), chunks):
                merged.extend(part)
    return merged


def _run_chunk_spanned_inline(
    job: Callable[[Any, Sequence[Item]], List[Result]],
    payload: Any,
    items: Sequence[Item],
    context: Mapping[str, object],
) -> Tuple[List[Result], Dict[str, object]]:
    start = time.perf_counter()
    results = list(job(payload, items))
    record = _chunk_span_record(
        context, 0, time.perf_counter() - start, len(items), "ok"
    )
    return results, record
