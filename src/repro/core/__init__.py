"""ASdb core: the Figure-4 pipeline, consensus, cache, dataset, upkeep."""

from .cache import CacheStats, OrganizationCache, org_cache_key
from .consensus import (
    ACCURACY_RANK,
    ConsensusResult,
    majority_vote,
    resolve_consensus,
    single_best_source,
)
from .database import ASdbDataset, ASdbRecord, DatasetDiff
from .history import (
    ChurnReport,
    ReleaseHistory,
    TimelineEvent,
    categorization,
)
from .maintenance import (
    Correction,
    CorrectionError,
    CorrectionQueue,
    CorrectionStatus,
    MaintenanceDaemon,
    SweepReport,
    TicketAlreadyReviewedError,
    UnknownTicketError,
)
from .parallel import Cluster, plan_clusters, run_batch
from .persistence import (
    dataset_from_csv,
    dataset_from_json,
    dataset_to_json,
    record_from_item,
    record_to_item,
)
from .snapshots import (
    SnapshotCorruption,
    SnapshotError,
    SnapshotInfo,
    SnapshotStore,
)
from .pipeline import ASdb
from .store import (
    JsonDatasetStore,
    SqliteDatasetStore,
    StoreError,
    diff_stores,
    open_store,
)
from .resilience import (
    CircuitBreaker,
    LookupOutcome,
    ResilientSource,
    RetryPolicy,
)
from .stages import Stage

__all__ = [
    "ASdb",
    "dataset_from_csv",
    "dataset_to_json",
    "dataset_from_json",
    "ASdbDataset",
    "ASdbRecord",
    "DatasetDiff",
    "Stage",
    "OrganizationCache",
    "CacheStats",
    "org_cache_key",
    "Cluster",
    "plan_clusters",
    "run_batch",
    "RetryPolicy",
    "CircuitBreaker",
    "ResilientSource",
    "LookupOutcome",
    "ConsensusResult",
    "resolve_consensus",
    "single_best_source",
    "majority_vote",
    "ACCURACY_RANK",
    "MaintenanceDaemon",
    "SweepReport",
    "Correction",
    "CorrectionQueue",
    "CorrectionStatus",
    "CorrectionError",
    "UnknownTicketError",
    "TicketAlreadyReviewedError",
    "SnapshotStore",
    "SnapshotInfo",
    "SnapshotError",
    "SnapshotCorruption",
    "ReleaseHistory",
    "TimelineEvent",
    "ChurnReport",
    "categorization",
    "record_to_item",
    "record_from_item",
    "SqliteDatasetStore",
    "JsonDatasetStore",
    "StoreError",
    "open_store",
    "diff_stores",
]
