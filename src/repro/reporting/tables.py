"""Plain-text table and bar-chart rendering for the benchmark harness.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the output aligned and consistent.  The CLI's
``stats`` subcommand renders a :class:`~repro.obs.MetricsRegistry` with
:func:`render_metrics_summary`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from ..obs.narrate import format_seconds

__all__ = [
    "render_table",
    "render_bars",
    "format_fraction",
    "render_metrics_summary",
]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def _line(values: Sequence[str]) -> str:
        return "  ".join(
            value.ljust(widths[index]) for index, value in enumerate(values)
        ).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(_line(list(headers)))
    out.append(_line(["-" * width for width in widths]))
    for row in cells:
        out.append(_line(row))
    return "\n".join(out)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    title: Optional[str] = None,
    width: int = 40,
    as_percent: bool = True,
) -> str:
    """Render a horizontal ASCII bar chart (for figure reproductions)."""
    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    label_width = max((len(label) for label in labels), default=0)
    peak = max(values) if values else 1.0
    scale = width / peak if peak > 0 else 0.0
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(value * scale))
        shown = f"{value:.0%}" if as_percent else f"{value:.2f}"
        out.append(f"{label.ljust(label_width)}  {bar} {shown}")
    return "\n".join(out)


def format_fraction(hits: int, total: int) -> str:
    """``93/121 (77%)`` formatting used throughout the paper's tables."""
    if total == 0:
        return "-"
    return f"{hits}/{total} ({hits / total:.0%})"


def _series_name(name: str, labelnames: Sequence[str], key) -> str:
    if not labelnames:
        return name
    pairs = ",".join(
        f"{label}={value}" for label, value in zip(labelnames, key)
    )
    return f"{name}{{{pairs}}}"


def render_metrics_summary(
    registry: MetricsRegistry, title: Optional[str] = "Metrics summary"
) -> str:
    """One row per metric series: counters/gauges show the value,
    histograms show count, mean, and bucket-estimated p50/p95."""
    rows: List[List[str]] = []
    for metric in registry:
        if isinstance(metric, Histogram):
            for key in sorted(metric.series()):
                labels = dict(zip(metric.labelnames, key))
                rows.append([
                    _series_name(metric.name, metric.labelnames, key),
                    metric.kind,
                    (
                        f"n={metric.count(**labels)}"
                        f"  mean={format_seconds(metric.mean(**labels))}"
                        f"  p50={format_seconds(metric.quantile(0.5, **labels))}"
                        f"  p95={format_seconds(metric.quantile(0.95, **labels))}"
                    ),
                ])
        elif isinstance(metric, (Counter, Gauge)):
            for key, value in sorted(metric.series().items()):
                shown = (
                    str(int(value))
                    if float(value).is_integer()
                    else f"{value:.4f}"
                )
                rows.append([
                    _series_name(metric.name, metric.labelnames, key),
                    metric.kind,
                    shown,
                ])
    return render_table(["Metric", "Type", "Value"], rows, title=title)
