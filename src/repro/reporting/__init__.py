"""Rendering helpers for the benchmark harness (tables and ASCII bars)."""

from .tables import (
    format_fraction,
    render_bars,
    render_metrics_summary,
    render_table,
)

__all__ = [
    "render_table",
    "render_bars",
    "format_fraction",
    "render_metrics_summary",
]
