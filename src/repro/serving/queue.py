"""Bounded background classification queue for on-demand lookups.

A ``GET /asn/{asn}`` for an AS the index does not know returns ``202
Accepted`` and parks the ASN here; a worker thread drains the queue
through :meth:`~repro.core.pipeline.ASdb.classify_batch`, and the
results reach readers at the *next index swap* — never by mutating the
served index (which stays immutable by contract).  This is the
web/tasks split: request handlers only enqueue, classification work
happens off the read path.

The queue is bounded: once ``maxsize`` distinct ASNs are waiting,
further offers are rejected and the service answers ``503`` with a
retry hint instead of buffering unboundedly.  ASNs whose
classification raises (e.g. an AS absent from the registry) are
remembered as *failed* with the error string, so repeat lookups get a
definitive 404 instead of re-queueing forever.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence

from ..obs.metrics import MetricsRegistry, NULL_REGISTRY

__all__ = [
    "OFFER_QUEUED",
    "OFFER_PENDING",
    "OFFER_FULL",
    "ClassificationQueue",
    "QueueWorker",
]

#: :meth:`ClassificationQueue.offer` outcomes.
OFFER_QUEUED = "queued"
OFFER_PENDING = "pending"
OFFER_FULL = "full"


class ClassificationQueue:
    """Thread-safe bounded set-queue of ASNs awaiting classification.

    Args:
        maxsize: Maximum ASNs waiting (queued, not yet drained).
        metrics: Optional registry for the ``asdb_serve_queue_*``
            instruments; None meters nothing.
    """

    def __init__(
        self,
        maxsize: int = 256,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._waiting: List[int] = []
        self._waiting_set: set = set()
        #: ASNs drained by the worker but not yet swapped into an index.
        self._inflight: set = set()
        self._failed: Dict[int, str] = {}
        self._work = threading.Event()
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_depth = registry.gauge(
            "asdb_serve_queue_depth",
            "ASNs waiting in the on-demand classification queue.",
        )
        self._m_offers = registry.counter(
            "asdb_serve_queue_total",
            "On-demand queue events by outcome.",
            ("outcome",),
        )
        for outcome in (
            OFFER_QUEUED, OFFER_PENDING, OFFER_FULL,
            "classified", "failed",
        ):
            self._m_offers.inc(0, outcome=outcome)

    def offer(self, asn: int) -> str:
        """Enqueue one ASN; returns the outcome slug.

        ``queued`` on first sight, ``pending`` while the ASN is already
        waiting or being classified, ``full`` when the bound is hit
        (the caller should answer 503).
        """
        with self._lock:
            if asn in self._waiting_set or asn in self._inflight:
                outcome = OFFER_PENDING
            elif len(self._waiting) >= self.maxsize:
                outcome = OFFER_FULL
            else:
                self._waiting.append(asn)
                self._waiting_set.add(asn)
                outcome = OFFER_QUEUED
                self._work.set()
            depth = len(self._waiting)
        self._m_offers.inc(1, outcome=outcome)
        self._m_depth.set(depth)
        return outcome

    def drain(self, limit: int) -> List[int]:
        """Pop up to ``limit`` waiting ASNs (FIFO) into the in-flight
        set; the worker calls :meth:`settle` when they are served."""
        with self._lock:
            batch = self._waiting[: max(1, limit)]
            del self._waiting[: len(batch)]
            self._waiting_set.difference_update(batch)
            self._inflight.update(batch)
            if not self._waiting:
                self._work.clear()
            depth = len(self._waiting)
        self._m_depth.set(depth)
        return batch

    def settle(
        self, asns: Sequence[int], failures: Dict[int, str]
    ) -> None:
        """Mark a drained batch finished; ``failures`` maps the ASNs
        whose classification raised to their error strings."""
        with self._lock:
            self._inflight.difference_update(asns)
            self._failed.update(failures)
        ok = len(asns) - len(failures)
        if ok:
            self._m_offers.inc(ok, outcome="classified")
        if failures:
            self._m_offers.inc(len(failures), outcome="failed")

    def failure(self, asn: int) -> Optional[str]:
        """The recorded classification error for an ASN, if any."""
        with self._lock:
            return self._failed.get(asn)

    def depth(self) -> int:
        """ASNs currently waiting (excludes in-flight)."""
        with self._lock:
            return len(self._waiting)

    def wait_for_work(self, timeout: float) -> bool:
        """Block until work is queued (or ``timeout`` elapses)."""
        return self._work.wait(timeout)


class QueueWorker(threading.Thread):
    """Daemon thread draining the queue through the classifier.

    Args:
        queue: The bounded queue to drain.
        classify: ``classify(asns)`` — typically a closure over
            :meth:`ASdb.classify_batch`; called with each drained
            window.  A raising batch falls back to per-ASN
            classification so one bad ASN cannot poison its window.
        classify_one: ``classify_one(asn)`` fallback used for the
            per-ASN retry; errors are recorded as failures.
        after: Called with each settled batch (successes only) — the
            service hooks its rebuild-and-swap here, which is how
            queued results "land in the next swap".
        batch_size: Maximum ASNs per drain window.
        poll_seconds: Idle wake-up interval (also bounds stop latency).
    """

    def __init__(
        self,
        queue: ClassificationQueue,
        classify: Callable[[List[int]], object],
        classify_one: Optional[Callable[[int], object]] = None,
        after: Optional[Callable[[List[int]], object]] = None,
        batch_size: int = 16,
        poll_seconds: float = 0.05,
    ) -> None:
        super().__init__(name="serving-queue-worker", daemon=True)
        self._queue = queue
        self._classify = classify
        self._classify_one = classify_one
        self._after = after
        self._batch_size = max(1, batch_size)
        self._poll = poll_seconds
        self._halt = threading.Event()

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Ask the worker to exit and join it."""
        self._halt.set()
        self._queue._work.set()
        if self.is_alive():
            self.join(timeout)

    def run(self) -> None:  # pragma: no cover - exercised via service
        while not self._halt.is_set():
            if not self._queue.wait_for_work(self._poll):
                continue
            if self._halt.is_set():
                break
            batch = self._queue.drain(self._batch_size)
            if batch:
                self.process(batch)

    def process(self, batch: List[int]) -> List[int]:
        """Classify one drained window; returns the ASNs that landed.

        Exposed for deterministic tests: the run loop and tests share
        this exact settle/fallback logic.
        """
        failures: Dict[int, str] = {}
        try:
            self._classify(list(batch))
        except Exception:
            # One bad ASN aborts the whole batch call; retry each AS
            # alone so the good ones still land and only the bad ones
            # are remembered as failed.
            for asn in batch:
                try:
                    if self._classify_one is not None:
                        self._classify_one(asn)
                    else:
                        self._classify([asn])
                except Exception as exc:
                    failures[asn] = f"{type(exc).__name__}: {exc}"
        self._queue.settle(batch, failures)
        landed = [asn for asn in batch if asn not in failures]
        if self._after is not None and landed:
            self._after(landed)
        return landed
