"""Async serving layer: query API over hot, atomically swapped indexes.

The read side of the system (ROADMAP item 1): a dependency-free
``asyncio`` HTTP service exposing the released dataset for query
traffic, backed by an immutable :class:`ReadIndex` materialized from
any storage backend and swapped atomically on refresh.

Quickstart::

    from repro.serving import ReadIndex, ServingApp

    index = ReadIndex.build(dataset, source="memory")
    app = ServingApp(index)
    status, body, _ = app.handle_request("GET", "/healthz")

or over HTTP, via the CLI::

    python -m repro serve --snapshots releases --port 8311
    curl -s localhost:8311/asn/64512
"""

from typing import Optional

from ..core.snapshots import SnapshotStore
from .app import ServingApp
from .index import HistoryIndex, IndexVersion, ReadIndex, record_view
from .queue import (
    OFFER_FULL,
    OFFER_PENDING,
    OFFER_QUEUED,
    ClassificationQueue,
    QueueWorker,
)

__all__ = [
    "ServingApp",
    "ReadIndex",
    "HistoryIndex",
    "IndexVersion",
    "record_view",
    "ClassificationQueue",
    "QueueWorker",
    "OFFER_QUEUED",
    "OFFER_PENDING",
    "OFFER_FULL",
    "index_from_store",
    "index_from_snapshots",
    "history_from_snapshots",
]


def index_from_store(
    store, generation: int = 1, source: str = ""
) -> ReadIndex:
    """Build a :class:`ReadIndex` from any dataset-store backend.

    ``store`` is anything iterable over records — an
    :class:`~repro.core.database.ASdbDataset`, a
    :class:`~repro.core.store.SqliteDatasetStore`, or a
    :class:`~repro.core.store.JsonDatasetStore`.
    """
    label = source or getattr(store, "path", "") or type(store).__name__
    return ReadIndex.build(iter(store), generation=generation,
                           source=str(label))


def index_from_snapshots(
    root: str,
    version: Optional[int] = None,
    generation: int = 1,
) -> ReadIndex:
    """Materialize a snapshot-store version into a fresh index.

    Reopens the store from ``root`` on every call, so a rebuild after
    ``repro refresh`` picks up versions appended since the last build —
    that is what makes ``POST /refresh`` serve new releases without a
    restart.
    """
    store = SnapshotStore(root)
    dataset, info = store.materialize(version)
    return ReadIndex.build(
        dataset,
        generation=generation,
        source=f"snapshots:{root}",
        snapshot_version=info.version,
        digest=info.digest,
    )


def history_from_snapshots(
    root: str, generation: int = 1
) -> HistoryIndex:
    """Precompute the temporal :class:`HistoryIndex` from a snapshot
    store.

    Reopens the store from ``root`` on every call, like
    :func:`index_from_snapshots`, so a refresh swap extends the served
    history to releases appended since the last build.
    """
    return HistoryIndex.build(SnapshotStore(root), generation=generation)
