"""Async serving layer: query API over hot, atomically swapped indexes.

The read side of the system (ROADMAP item 1): a dependency-free
``asyncio`` HTTP service exposing the released dataset for query
traffic, backed by an immutable :class:`ReadIndex` materialized from
any storage backend and swapped atomically on refresh.

Quickstart::

    from repro.serving import ReadIndex, ServingApp

    index = ReadIndex.build(dataset, source="memory")
    app = ServingApp(index)
    status, body, _ = app.handle_request("GET", "/healthz")

or over HTTP, via the CLI::

    python -m repro serve --snapshots releases --port 8311
    curl -s localhost:8311/asn/64512
"""

from typing import Dict, Optional

from ..core.persistence import record_from_item
from ..core.snapshots import SnapshotError, SnapshotStore
from .app import ServingApp
from .index import HistoryIndex, IndexVersion, ReadIndex, record_view
from .queue import (
    OFFER_FULL,
    OFFER_PENDING,
    OFFER_QUEUED,
    ClassificationQueue,
    QueueWorker,
)

__all__ = [
    "ServingApp",
    "ReadIndex",
    "HistoryIndex",
    "IndexVersion",
    "record_view",
    "ClassificationQueue",
    "QueueWorker",
    "OFFER_QUEUED",
    "OFFER_PENDING",
    "OFFER_FULL",
    "index_from_store",
    "index_from_snapshots",
    "history_from_snapshots",
    "refresh_index_from_snapshots",
    "refresh_history_from_snapshots",
]


def index_from_store(
    store, generation: int = 1, source: str = ""
) -> ReadIndex:
    """Build a :class:`ReadIndex` from any dataset-store backend.

    ``store`` is anything iterable over records — an
    :class:`~repro.core.database.ASdbDataset`, a
    :class:`~repro.core.store.SqliteDatasetStore`, or a
    :class:`~repro.core.store.JsonDatasetStore`.
    """
    label = source or getattr(store, "path", "") or type(store).__name__
    return ReadIndex.build(iter(store), generation=generation,
                           source=str(label))


def index_from_snapshots(
    root: str,
    version: Optional[int] = None,
    generation: int = 1,
) -> ReadIndex:
    """Materialize a snapshot-store version into a fresh index.

    Reopens the store from ``root`` on every call, so a rebuild after
    ``repro refresh`` picks up versions appended since the last build —
    that is what makes ``POST /refresh`` serve new releases without a
    restart.
    """
    store = SnapshotStore(root)
    dataset, info = store.materialize(version)
    return ReadIndex.build(
        dataset,
        generation=generation,
        source=f"snapshots:{root}",
        snapshot_version=info.version,
        digest=info.digest,
    )


def refresh_index_from_snapshots(
    root: str,
    previous: ReadIndex,
    generation: int,
) -> Optional[ReadIndex]:
    """Delta-apply successor to ``previous`` from the snapshot store,
    or ``None`` when incremental refresh does not apply.

    The O(changed) counterpart of :func:`index_from_snapshots`:
    instead of materializing the latest release and rebuilding every
    lookup structure, the recorded deltas appended since ``previous``
    was built are merged into one net change set (remove-then-readd
    collapses correctly) and applied copy-on-write.  Lineage is
    verified first — the snapshot version ``previous`` serves must
    still be in the store with the same digest, and every newer version
    must be a plain delta; any mismatch (store rewritten, an
    intervening ``full`` save, a digest-less index) returns ``None``
    and the caller falls back to the full rebuild.
    """
    version = previous.version
    if version.snapshot_version is None or not version.digest:
        return None
    store = SnapshotStore(root)
    try:
        base_info = store.info(version.snapshot_version)
    except SnapshotError:
        return None
    if base_info.digest != version.digest:
        return None
    chain = store.deltas_since(version.snapshot_version)
    if chain is None:
        return None
    latest = store.latest()
    net_changed: Dict[int, dict] = {}
    net_removed: Dict[int, None] = {}
    for _, changed, removed in chain:
        for asn in removed:
            net_changed.pop(int(asn), None)
            net_removed[int(asn)] = None
        for item in changed:
            asn = int(item["asn"])
            net_removed.pop(asn, None)
            net_changed[asn] = item
    return previous.apply_delta(
        (record_from_item(item) for item in net_changed.values()),
        net_removed,
        generation=generation,
        source=f"snapshots:{root}",
        snapshot_version=latest.version,
        digest=latest.digest,
    )


def refresh_history_from_snapshots(
    root: str,
    previous: HistoryIndex,
    generation: int,
) -> Optional[HistoryIndex]:
    """Incrementally extended successor to ``previous``, or ``None``
    when the store's lineage no longer matches (see
    :meth:`HistoryIndex.extend`); the caller falls back to
    :func:`history_from_snapshots`.
    """
    return previous.extend(
        SnapshotStore(root),
        generation=generation,
        source=f"snapshots:{root}",
    )


def history_from_snapshots(
    root: str, generation: int = 1
) -> HistoryIndex:
    """Precompute the temporal :class:`HistoryIndex` from a snapshot
    store.

    Reopens the store from ``root`` on every call, like
    :func:`index_from_snapshots`, so a refresh swap extends the served
    history to releases appended since the last build.
    """
    return HistoryIndex.build(SnapshotStore(root), generation=generation)
