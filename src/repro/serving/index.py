"""The immutable in-memory read index behind the serving layer.

The ASdb paper frames the dataset as a continuously refreshed *product*
that downstream users query; serving that product at high request rates
wants a different shape than the write-side stores.  A
:class:`ReadIndex` is that shape: every lookup the API exposes —
by-ASN, by-organization, category histogram, version facts — is
precomputed at build time into plain dicts, and the finished index is
never mutated.  The service swaps a freshly built index in with one
attribute assignment (see :mod:`repro.serving.app`), so the read path
takes no lock and a request that grabbed the old index keeps serving a
fully consistent view while the new one takes over.

Build an index from any record iterable — an in-memory
:class:`~repro.core.database.ASdbDataset`, an indexed
:class:`~repro.core.store.SqliteDatasetStore`, or a materialized
:class:`~repro.core.snapshots.SnapshotStore` version via
:meth:`SnapshotStore.materialize` — the index neither knows nor cares
which backend fed it.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.database import ASdbRecord
from ..core.history import ReleaseHistory, TimelineEvent, event_for
from ..core.persistence import record_to_item
from ..core.snapshots import SnapshotError, SnapshotInfo, SnapshotStore
from ..core.stages import Stage
from ..world.names import token_set

__all__ = ["HistoryIndex", "IndexVersion", "ReadIndex", "record_view"]


def record_view(record: ASdbRecord) -> Dict[str, object]:
    """The JSON-able API view of one record.

    The release-item shape (:func:`record_to_item`) plus the derived
    fields a query client wants inline: ``classified`` and the stage's
    prior-accuracy ``confidence``.
    """
    view = record_to_item(record)
    view["classified"] = record.classified
    view["confidence"] = record.confidence
    return view


def _org_tokens(record: ASdbRecord) -> Tuple[str, ...]:
    """Search tokens identifying the record's owning organization.

    The org key carries either the normalized name token set
    (``name:acme corp``) or the chosen domain (``domain:acme.com``);
    both forms tokenize, and the record's own domain contributes its
    dot-split labels so ``/org/acme.com`` and ``/org/acme`` both hit.
    """
    tokens: List[str] = []
    for key in (record.org_key or "",):
        _, _, value = key.partition(":")
        tokens.extend(token_set(value.replace(".", " ")))
    if record.domain:
        tokens.extend(token_set(record.domain.replace(".", " ")))
        tokens.append(record.domain.lower())
    return tuple(dict.fromkeys(tokens))


@dataclass(frozen=True)
class IndexVersion:
    """Identity of one served index build.

    Attributes:
        generation: Monotone swap counter, bumped on every rebuild —
            the number clients see change when a refresh lands.
        records: Records in the index.
        coverage: Fraction of records with at least one category.
        source: Human-readable description of the backing source.
        snapshot_version: Snapshot-store version materialized into this
            build, when the index serves a versioned release.
        digest: The release document digest, when known.
    """

    generation: int
    records: int
    coverage: float
    source: str = ""
    snapshot_version: Optional[int] = None
    digest: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "generation": self.generation,
            "records": self.records,
            "coverage": round(self.coverage, 4),
            "source": self.source,
            "snapshot_version": self.snapshot_version,
            "digest": self.digest,
        }


class ReadIndex:
    """Immutable precomputed lookup structures over one dataset build.

    Construct via :meth:`build`; instances are never mutated after
    construction (the service swaps whole indexes instead), which is
    what makes the lock-free read path safe.
    """

    def __init__(
        self,
        records: Dict[int, ASdbRecord],
        postings: Dict[str, Tuple[int, ...]],
        categories: Dict[str, int],
        stage_counts: Dict[str, int],
        version: IndexVersion,
        classified: Optional[int] = None,
    ) -> None:
        self._records = records
        self._postings = postings
        # Sorted once at construction so every render of the histogram
        # (and the fingerprint) is deterministic regardless of whether
        # this index came from a full build or a delta application.
        self._categories = dict(sorted(categories.items()))
        self._stage_counts = dict(sorted(stage_counts.items()))
        self._classified = (
            classified
            if classified is not None
            else sum(1 for r in records.values() if r.classified)
        )
        self.version = version
        #: Per-generation pre-rendered responses, keyed by request
        #: target.  The index is immutable, so an entry never goes
        #: stale — the whole cache dies with the index at swap time.
        #: Written by :class:`~repro.serving.app.ServingApp`.
        self.response_cache: Dict[str, tuple] = {}
        self.etag = self._make_etag()

    def _make_etag(self) -> str:
        """Strong ETag for every response derived from this build.

        Snapshot-backed indexes carry the release digest, so the tag is
        content-strong across restarts; digest-less sources fall back
        to an aggregate token (record count, coverage, histograms) plus
        the process-local generation.
        """
        if self.version.digest:
            tail = self.version.digest
        else:
            hasher = hashlib.blake2b(digest_size=8)
            hasher.update(json.dumps([
                self.version.source,
                self.version.records,
                repr(self.version.coverage),
                self._categories,
                self._stage_counts,
            ], sort_keys=True).encode("utf-8"))
            tail = hasher.hexdigest()
        return f'"asdb-g{self.version.generation}-{tail}"'

    @classmethod
    def build(
        cls,
        records: Iterable[ASdbRecord],
        generation: int = 1,
        source: str = "",
        snapshot_version: Optional[int] = None,
        digest: Optional[str] = None,
    ) -> "ReadIndex":
        """Materialize an index from any record iterable.

        One streaming pass: by-ASN map, organization-token postings,
        category histogram, and stage counts are all built together, so
        a store-backed build reads each record exactly once.
        """
        by_asn: Dict[int, ASdbRecord] = {}
        posting_sets: Dict[str, List[int]] = {}
        categories: Dict[str, int] = {}
        stage_counts: Dict[str, int] = {}
        classified = 0
        for record in records:
            by_asn[record.asn] = record
            if record.classified:
                classified += 1
            stage_counts[record.stage.value] = (
                stage_counts.get(record.stage.value, 0) + 1
            )
            for slug in record.labels.layer1_slugs():
                categories[slug] = categories.get(slug, 0) + 1
            for token in _org_tokens(record):
                posting_sets.setdefault(token, []).append(record.asn)
        postings = {
            token: tuple(sorted(asns))
            for token, asns in posting_sets.items()
        }
        version = IndexVersion(
            generation=generation,
            records=len(by_asn),
            coverage=classified / len(by_asn) if by_asn else 0.0,
            source=source,
            snapshot_version=snapshot_version,
            digest=digest,
        )
        return cls(by_asn, postings, categories, stage_counts, version,
                   classified=classified)

    # -- incremental refresh -------------------------------------------------

    def apply_delta(
        self,
        changed: Iterable[ASdbRecord],
        removed: Iterable[int],
        generation: int,
        source: Optional[str] = None,
        snapshot_version: Optional[int] = None,
        digest: Optional[str] = None,
    ) -> "ReadIndex":
        """Build the successor index from this one plus a delta.

        Copy-on-write of only the touched state: the by-ASN map and the
        postings table are shallow-copied dicts (O(world) pointer
        copies, no re-parsing or re-tokenizing), and only entries for
        removed/changed records — their org tokens, their category and
        stage tallies — are recomputed.  ``removed`` applies first,
        then ``changed`` (each ASN at most once), matching snapshot
        delta semantics; the result is structurally identical to a full
        :meth:`build` over the updated record set (see
        :meth:`fingerprint`).  This index is left untouched.
        """
        records = dict(self._records)
        categories = dict(self._categories)
        stage_counts = dict(self._stage_counts)
        classified = self._classified
        posting_adds: Dict[str, set] = {}
        posting_drops: Dict[str, set] = {}

        def bump(table: Dict[str, int], key: str, step: int) -> None:
            total = table.get(key, 0) + step
            if total:
                table[key] = total
            else:
                table.pop(key, None)

        def retire(record: ASdbRecord) -> None:
            nonlocal classified
            if record.classified:
                classified -= 1
            bump(stage_counts, record.stage.value, -1)
            for slug in record.labels.layer1_slugs():
                bump(categories, slug, -1)
            for token in _org_tokens(record):
                posting_drops.setdefault(token, set()).add(record.asn)
                adds = posting_adds.get(token)
                if adds is not None:
                    adds.discard(record.asn)

        def admit(record: ASdbRecord) -> None:
            nonlocal classified
            if record.classified:
                classified += 1
            bump(stage_counts, record.stage.value, 1)
            for slug in record.labels.layer1_slugs():
                bump(categories, slug, 1)
            for token in _org_tokens(record):
                posting_adds.setdefault(token, set()).add(record.asn)

        for asn in removed:
            old = records.pop(int(asn), None)
            if old is not None:
                retire(old)
        for record in changed:
            old = records.get(record.asn)
            if old is not None:
                retire(old)
            records[record.asn] = record
            admit(record)

        postings = dict(self._postings)
        for token in set(posting_drops) | set(posting_adds):
            members = set(postings.get(token, ()))
            members -= posting_drops.get(token, set())
            members |= posting_adds.get(token, set())
            if members:
                postings[token] = tuple(sorted(members))
            else:
                postings.pop(token, None)

        version = IndexVersion(
            generation=generation,
            records=len(records),
            coverage=classified / len(records) if records else 0.0,
            source=self.version.source if source is None else source,
            snapshot_version=snapshot_version,
            digest=digest,
        )
        return ReadIndex(records, postings, categories, stage_counts,
                         version, classified=classified)

    def fingerprint(self) -> str:
        """Content digest of everything the index serves.

        Two indexes with equal fingerprints answer every endpoint with
        the same data: records, postings, histograms, coverage, and the
        stamped release identity all feed the hash.  Generation and
        source are deliberately excluded — a delta-applied successor
        proves itself byte-identical to a full rebuild even though the
        two carry different build labels.
        """
        hasher = hashlib.blake2b(digest_size=16)
        for asn in sorted(self._records):
            item = record_to_item(self._records[asn])
            hasher.update(
                json.dumps(item, sort_keys=True).encode("utf-8")
            )
            hasher.update(b"\x00")
        for token in sorted(self._postings):
            hasher.update(token.encode("utf-8"))
            hasher.update(repr(self._postings[token]).encode("ascii"))
            hasher.update(b"\x00")
        hasher.update(json.dumps(
            [
                self._categories,
                self._stage_counts,
                self._classified,
                self.version.snapshot_version,
                self.version.digest,
            ],
            sort_keys=True,
        ).encode("utf-8"))
        return hasher.hexdigest()

    # -- lookups -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, asn: int) -> bool:
        return asn in self._records

    def get(self, asn: int) -> Optional[ASdbRecord]:
        """The record for an ASN, or None."""
        return self._records.get(asn)

    def org_matches(self, query: str) -> List[int]:
        """Every ASN whose organization matches all query tokens,
        ascending — the unbounded candidate set behind
        :meth:`search_org`, exposed so callers can report the true
        match count while still capping the records they materialize.
        """
        tokens = list(token_set(query.replace(".", " ")))
        if query.strip():
            tokens.append(query.strip().lower())
        candidates: Optional[set] = None
        for token in tokens:
            posting = self._postings.get(token)
            if posting is None:
                continue
            hits = set(posting)
            candidates = hits if candidates is None else candidates & hits
        return sorted(candidates) if candidates else []

    def search_org(
        self, query: str, limit: int = 20
    ) -> List[ASdbRecord]:
        """Records whose organization matches every query token.

        Tokenizes the query the same way index postings were built
        (name normalization; dots split), intersects the posting lists,
        and returns up to ``limit`` records in ascending ASN order.
        """
        return [
            self._records[asn]
            for asn in self.org_matches(query)[: max(0, limit)]
        ]

    def categories(self) -> Dict[str, int]:
        """AS count per layer 1 slug (a copy; the index stays frozen)."""
        return dict(self._categories)

    def stage_counts(self) -> Dict[str, int]:
        """Record count per producing pipeline stage (a copy)."""
        return dict(self._stage_counts)

    def stage_counts_typed(self) -> Dict[Stage, int]:
        """Stage counts keyed by :class:`Stage` (protocol parity)."""
        return {
            Stage(slug): count
            for slug, count in self._stage_counts.items()
        }


class HistoryIndex:
    """Immutable per-ASN release-history map behind the temporal
    endpoints.

    The serving-side face of :class:`~repro.core.history.ReleaseHistory`:
    one pass over the snapshot store's version chain at build time
    precomputes every AS's timeline plus a day → version resolution
    table, and the finished index is never mutated.  The service
    publishes a rebuilt history with the same single-assignment swap
    discipline as :class:`ReadIndex`, so ``/asn/{asn}/history`` and
    ``/asof/{day}/asn/{asn}`` answers are always internally consistent
    — no request ever sees half an old history and half a new one.
    """

    def __init__(
        self,
        timelines: Dict[int, Tuple[TimelineEvent, ...]],
        infos: Dict[int, SnapshotInfo],
        generation: int,
        source: str = "",
    ) -> None:
        self._timelines = timelines
        self._infos = infos
        #: (through_day, version) ascending — bisect resolves "the
        #: release in force on day D" without touching the store.
        self._days: List[Tuple[int, int]] = sorted(
            (info.through_day, info.version)
            for info in infos.values()
            if info.through_day is not None
        )
        self._day_keys = [day for day, _ in self._days]
        self.generation = generation
        self.source = source

    @classmethod
    def build(
        cls,
        store: SnapshotStore,
        generation: int = 1,
        source: str = "",
    ) -> "HistoryIndex":
        """Precompute all timelines from a snapshot store."""
        history = ReleaseHistory(store)
        return cls(
            history.timelines(),
            {info.version: info for info in store.versions()},
            generation=generation,
            source=source or f"snapshots:{store.root}",
        )

    def extend(
        self,
        store: SnapshotStore,
        generation: int,
        source: str = "",
    ) -> Optional["HistoryIndex"]:
        """Successor covering releases appended since this build.

        Appends just the new versions' events onto the existing
        timelines (copy-on-write: untouched ASes share their event
        tuples with this index) instead of rescanning the whole delta
        chain.  Applies only when the store's lineage matches — the
        newest release this index covers must still be present with the
        same digest, and everything after it must be a plain delta.
        Returns ``None`` otherwise; the caller falls back to
        :meth:`build`.  This index is left untouched.
        """
        base = self.latest_version
        if base == 0:
            return None
        try:
            base_info = store.info(base)
        except SnapshotError:
            return None
        if base_info.digest != self._infos[base].digest:
            return None
        chain = store.deltas_since(base)
        if chain is None:
            return None
        timelines = dict(self._timelines)

        def apply(info: SnapshotInfo, asn: int,
                  item: Optional[dict]) -> None:
            timeline = timelines.get(asn, ())
            current = timeline[-1].item if timeline else None
            event = event_for(info, current, item)
            if event is not None:
                timelines[asn] = timeline + (event,)

        for info, changed, removed in chain:
            for asn in removed:
                apply(info, int(asn), None)
            for item in changed:
                apply(info, int(item["asn"]), item)
        infos = dict(self._infos)
        for info, _, _ in chain:
            infos[info.version] = info
        return HistoryIndex(
            timelines,
            infos,
            generation=generation,
            source=source or self.source,
        )

    # -- lookups -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._timelines)

    @property
    def latest_version(self) -> int:
        """Newest release version covered by this build (0 if empty)."""
        return max(self._infos) if self._infos else 0

    def info(self, version: int) -> SnapshotInfo:
        """Manifest facts for one covered version (KeyError if absent)."""
        return self._infos[version]

    def timeline(self, asn: int) -> Optional[Tuple[TimelineEvent, ...]]:
        """The AS's event trajectory, or None if it never appears."""
        return self._timelines.get(asn)

    def version_on(self, day: int) -> Optional[int]:
        """The release in force on ``day`` (newest version whose sweep
        window closed at or before it), or None."""
        position = bisect.bisect_right(self._day_keys, day) - 1
        return self._days[position][1] if position >= 0 else None

    def record_asof(
        self, asn: int, version: int
    ) -> Optional[Dict[str, object]]:
        """The AS's record item as of ``version``, replayed from its
        precomputed timeline (None when absent at that point)."""
        state: Optional[Dict[str, object]] = None
        for event in self._timelines.get(asn, ()):
            if event.version > version:
                break
            state = event.item
        return state
