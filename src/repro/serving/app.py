"""Dependency-free asyncio HTTP service over hot dataset snapshots.

The query API the paper's "continuously refreshed product" story
implies, built on two invariants:

* **Immutable index, atomic swap.**  Every request reads
  ``self._index`` exactly once into a local; all of its answers come
  from that one :class:`~repro.serving.index.ReadIndex`.  A refresh
  builds a complete new index off the read path and publishes it with
  a single attribute assignment — readers mid-request keep the old
  index, new requests see the new one, nobody locks anything.
* **Work off the read path.**  Unknown-ASN lookups enqueue onto the
  bounded :class:`~repro.serving.queue.ClassificationQueue` and answer
  ``202`` with a retry hint; a worker thread classifies in the
  background and the results arrive via the next swap.

Endpoints (JSON unless noted)::

    GET  /healthz        liveness + generation + queue depth
    GET  /version        IndexVersion facts for the served build
    GET  /categories     layer-1 histogram + stage counts
    GET  /asn/{asn}      one record (404 unknown, 202 queued, 503 full)
    GET  /org/{query}    token-match organizations (?limit=N, capped)
    GET  /metrics        Prometheus text exposition (text/plain)
    POST /refresh        admin: rebuild from the source and swap

Every GET endpoint also answers ``HEAD`` (same headers and
Content-Length, no body), and a known path hit with the wrong method
gets a proper ``405`` with an ``Allow`` header.  ``/asn/{asn}``,
``/categories``, and ``/version`` responses are immutable for the
lifetime of one index generation, so the service pre-renders their
exact bytes into a per-generation cache (memoized on first hit, dying
with the index at swap time) and stamps a strong ``ETag`` (generation
+ release digest); a poller sending ``If-None-Match`` gets a bodyless
``304 Not Modified`` until a refresh actually lands.

``POST /refresh`` absorbs a new release in O(changed) when it can:
with an incremental refresh source attached, the snapshot lineage is
checked against the served ``IndexVersion`` (snapshot version +
digest) and the recorded deltas are applied copy-on-write onto the
previous immutable index; any mismatch falls back to the full
rebuild.  Both the read index and the history index successors are
built *before* either is published, then swapped pairwise, so a
rebuild failure leaves the service on the old, mutually consistent
pair.

and, when the service was built from a snapshot store (a
:class:`~repro.serving.index.HistoryIndex` is attached), the temporal
pair from ROADMAP item 3::

    GET  /asn/{asn}/history      per-release classification trajectory
    GET  /asof/{day}/asn/{asn}   the record in force on a given day

The HTTP layer is a minimal HTTP/1.1 implementation over
``asyncio.start_server`` — GET/POST only, keep-alive, Content-Length
framing — because the serving contract (stdlib only) rules out real
web frameworks.  All routing and response logic lives in the
synchronous, thread-safe :meth:`ServingApp.handle_request`, so tests
and benchmarks can drive the service without sockets.

Observability: requests meter ``asdb_serve_requests_total`` /
``asdb_serve_seconds`` per endpoint, swaps meter
``asdb_serve_swaps_total``, the history build meters
``asdb_serve_history_versions`` / ``asdb_serve_history_asns``; with a
run ledger attached the service emits ``serve.start`` / ``serve.swap``
/ ``serve.history_swap`` / ``serve.queue`` / ``serve.stop`` events
(see :mod:`repro.obs.runlog`).
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, unquote

from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..obs.runlog import NULL_RUNLOG
from .index import HistoryIndex, ReadIndex, record_view
from .queue import (
    OFFER_FULL,
    OFFER_QUEUED,
    ClassificationQueue,
    QueueWorker,
)

__all__ = ["ServingApp", "Response"]

#: (status, JSON-able body or raw text, extra headers)
Response = Tuple[int, object, Dict[str, str]]

_REASONS = {
    200: "OK",
    202: "Accepted",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}

#: Endpoint slugs used as the metrics label — bounded cardinality, no
#: raw paths.
_ENDPOINTS = (
    "healthz", "version", "categories", "asn", "org", "metrics",
    "refresh", "history", "asof", "other",
)

#: Routes whose 200 responses are immutable per index generation and
#: therefore pre-rendered into the per-generation response cache.
_CACHEABLE_ROUTES = frozenset({"asn", "categories", "version"})

#: Per-generation response-cache entry ceiling — a backstop against a
#: scan of a million distinct ASNs pinning a body per ASN; entries past
#: the cap are computed per-request, never cached.
_CACHE_MAX_ENTRIES = 65536

#: Methods every read endpoint accepts.
_READ_METHODS = ("GET", "HEAD")

#: Default and ceiling for the ``/org/{query}`` ``?limit=`` parameter —
#: a broad token match over a large index stays bounded either way.
ORG_LIMIT_DEFAULT = 20
ORG_LIMIT_CAP = 200


class ServingApp:
    """The ASdb query service over an immutable, swappable read index.

    Args:
        index: The initial :class:`ReadIndex` to serve.
        rebuild: ``rebuild(generation) -> ReadIndex`` — builds a fresh
            index from the backing source stamped with the given
            generation; :meth:`refresh` publishes its result.  None
            disables ``POST /refresh`` (405) and queue-driven swaps.
        queue: Bounded on-demand queue; None answers unknown ASNs with
            a plain 404 (read-only serving).
        worker: The queue's drain thread, when one exists; owned and
            stopped by :meth:`close`.
        metrics: Registry for the ``asdb_serve_*`` families; also the
            body of ``GET /metrics``.
        runlog: Run ledger for ``serve.*`` events; None stays silent.
        retry_after: Seconds clients should wait before retrying a 202
            or 503 (the ``Retry-After`` header).
        history: The :class:`HistoryIndex` serving the temporal
            endpoints; None answers them 404 (history needs a snapshot
            store behind the service).
        rebuild_history: ``rebuild_history(generation) -> HistoryIndex``
            — rebuilt and swapped alongside the read index on every
            :meth:`refresh`, so both views always cover the same
            release set.
        refresh_incremental: ``(generation, current_index) ->
            Optional[ReadIndex]`` — the O(changed) refresh path.
            Returns the delta-applied successor, or None when the
            backing lineage no longer matches the served index (then
            :meth:`refresh` falls back to ``rebuild``).
        refresh_history_incremental: ``(generation, current_history) ->
            Optional[HistoryIndex]`` — same contract for the history
            index; only consulted when the read index itself refreshed
            incrementally.
    """

    def __init__(
        self,
        index: ReadIndex,
        rebuild: Optional[Callable[[int], ReadIndex]] = None,
        queue: Optional[ClassificationQueue] = None,
        worker: Optional[QueueWorker] = None,
        metrics: Optional[MetricsRegistry] = None,
        runlog=None,
        retry_after: int = 1,
        history: Optional[HistoryIndex] = None,
        rebuild_history: Optional[Callable[[int], HistoryIndex]] = None,
        refresh_incremental: Optional[
            Callable[[int, ReadIndex], Optional[ReadIndex]]
        ] = None,
        refresh_history_incremental: Optional[
            Callable[[int, HistoryIndex], Optional[HistoryIndex]]
        ] = None,
    ) -> None:
        self._index = index
        self._rebuild = rebuild
        self._history = history
        self._rebuild_history = rebuild_history
        self._refresh_incremental = refresh_incremental
        self._refresh_history_incremental = refresh_history_incremental
        self.queue = queue
        self.worker = worker
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.runlog = runlog if runlog is not None else NULL_RUNLOG
        self._retry_after = max(0, int(retry_after))
        self._server: Optional[asyncio.AbstractServer] = None

        self._m_requests = self.metrics.counter(
            "asdb_serve_requests_total",
            "Serving requests by endpoint and status.",
            ("endpoint", "status"),
        )
        self._m_seconds = self.metrics.histogram(
            "asdb_serve_seconds",
            "Request handling latency by endpoint.",
            ("endpoint",),
        )
        self._m_swaps = self.metrics.counter(
            "asdb_serve_swaps_total", "Index swaps published."
        )
        self._m_records = self.metrics.gauge(
            "asdb_serve_index_records", "Records in the served index."
        )
        self._m_records.set(len(index))
        self._m_history_versions = self.metrics.gauge(
            "asdb_serve_history_versions",
            "Releases covered by the served history index.",
        )
        self._m_history_asns = self.metrics.gauge(
            "asdb_serve_history_asns",
            "ASes with a timeline in the served history index.",
        )
        self._m_refresh_incremental = self.metrics.counter(
            "asdb_serve_refresh_incremental_total",
            "Refreshes absorbed by delta-applying onto the live index.",
        )
        self._m_refresh_full = self.metrics.counter(
            "asdb_serve_refresh_full_total",
            "Refreshes that rebuilt the index from scratch.",
        )
        self._m_cache_hits = self.metrics.counter(
            "asdb_serve_cache_hits_total",
            "Responses served from the per-generation response cache.",
        )
        self._m_cache_misses = self.metrics.counter(
            "asdb_serve_cache_misses_total",
            "Cacheable responses rendered (and memoized) on demand.",
        )
        if history is not None:
            self._m_history_versions.set(history.latest_version)
            self._m_history_asns.set(len(history))

    # -- index lifecycle -----------------------------------------------------

    @property
    def index(self) -> ReadIndex:
        """The currently served index (a point-in-time handle)."""
        return self._index

    def swap(self, index: ReadIndex) -> None:
        """Atomically publish a new index.

        A single reference assignment: requests already holding the old
        index finish against it; everything after sees the new one.
        """
        self._index = index
        self._m_swaps.inc(1)
        self._m_records.set(len(index))
        self.runlog.emit(
            "serve.swap",
            generation=index.version.generation,
            records=index.version.records,
            snapshot_version=index.version.snapshot_version,
        )

    @property
    def history(self) -> Optional[HistoryIndex]:
        """The currently served history index, when one is attached."""
        return self._history

    def swap_history(self, history: HistoryIndex) -> None:
        """Atomically publish a new history index.

        Same discipline as :meth:`swap`: one reference assignment, so a
        request mid-flight keeps answering from the history it already
        read while new requests see the fresh one.
        """
        self._history = history
        self._m_history_versions.set(history.latest_version)
        self._m_history_asns.set(len(history))
        self.runlog.emit(
            "serve.history_swap",
            generation=history.generation,
            versions=history.latest_version,
            asns=len(history),
        )

    def refresh(self) -> ReadIndex:
        """Absorb the backing source's current state and swap it in.

        Prefers the O(changed) incremental path when one is attached
        and the source lineage still matches the served index (snapshot
        version + digest); otherwise rebuilds from scratch.  When a
        history source is attached, the history successor is built
        *before* either swap — a failure anywhere leaves the service on
        the old, mutually consistent index/history pair — and both are
        then published pairwise, stamped with the same generation.  The
        chosen path lands in the ``serve.refresh_mode`` ledger event
        and the ``asdb_serve_refresh_incremental_total`` /
        ``asdb_serve_refresh_full_total`` counters.
        """
        if self._rebuild is None:
            raise RuntimeError("service has no rebuild source")
        generation = self._index.version.generation + 1
        mode = "full"
        index: Optional[ReadIndex] = None
        with self.runlog.span("serve.rebuild") as span:
            if self._refresh_incremental is not None:
                try:
                    index = self._refresh_incremental(
                        generation, self._index
                    )
                except Exception as exc:  # noqa: BLE001 - fall back
                    self.runlog.emit(
                        "serve.refresh_fallback", error=repr(exc)
                    )
                    index = None
                if index is not None:
                    mode = "incremental"
            if index is None:
                index = self._rebuild(generation)
            span.note(
                generation=index.version.generation,
                records=index.version.records,
                mode=mode,
            )
        history: Optional[HistoryIndex] = None
        history_mode = None
        if self._rebuild_history is not None:
            if (mode == "incremental"
                    and self._history is not None
                    and self._refresh_history_incremental is not None):
                history = self._refresh_history_incremental(
                    generation, self._history
                )
            history_mode = "incremental" if history is not None else "full"
            if history is None:
                history = self._rebuild_history(generation)
        if mode == "incremental":
            self._m_refresh_incremental.inc(1)
        else:
            self._m_refresh_full.inc(1)
        self.runlog.emit(
            "serve.refresh_mode",
            mode=mode,
            history_mode=history_mode,
            generation=generation,
            snapshot_version=index.version.snapshot_version,
            records=index.version.records,
        )
        self.swap(index)
        if history is not None:
            self.swap_history(history)
        return index

    def on_drained(self, asns: List[int]) -> None:
        """Queue-worker hook: surface freshly classified ASNs.

        Emits the ledger event and, when a rebuild source exists,
        publishes the swap that makes the results visible.
        """
        self.runlog.emit("serve.queue", drained=len(asns), asns=asns[:32])
        if self._rebuild is not None:
            self.refresh()

    # -- request handling (sync, thread-safe) --------------------------------

    def handle_request(
        self,
        method: str,
        target: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> Response:
        """Route one request; returns ``(status, body, headers)``.

        Reads ``self._index`` once and answers entirely from that
        snapshot — the swap-consistency contract lives here.  Bodies
        are JSON-able dicts except ``/metrics`` (Prometheus text).
        ``headers`` carries request headers (lower-cased names);
        ``If-None-Match`` against the served ETag short-circuits the
        cacheable endpoints to a bodyless 304.
        """
        status, body, response_headers, _ = self._respond(
            method, target, headers
        )
        return status, body, response_headers

    def _respond(
        self,
        method: str,
        target: str,
        request_headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, object, Dict[str, str], Optional[bytes]]:
        """Route one request, consulting the per-generation response
        cache; returns ``(status, body, headers, payload)`` where
        ``payload`` is the pre-rendered body bytes when the response
        came from (or just entered) the cache, else None.
        """
        method = method.upper()
        path, _, query_string = target.partition("?")
        endpoint = self._endpoint_of(path)
        start = time.perf_counter()
        try:
            result = self._routed(
                method, target, path, query_string,
                request_headers or {},
            )
        finally:
            elapsed = time.perf_counter() - start
            self._m_seconds.observe(elapsed, endpoint=endpoint)
        self._m_requests.inc(1, endpoint=endpoint, status=str(result[0]))
        return result

    def _routed(
        self,
        method: str,
        target: str,
        path: str,
        query_string: str,
        request_headers: Dict[str, str],
    ) -> Tuple[int, object, Dict[str, str], Optional[bytes]]:
        # The one read of each served view; everything below — routing,
        # cache lookups, cache *stores* — uses these locals, never the
        # attributes.  Storing into ``index.response_cache`` (the very
        # index that produced the body) is what keeps a swap racing a
        # miss from poisoning the new generation's cache.
        index = self._index
        history = self._history
        lookup = "GET" if method == "HEAD" else method
        parts = [part for part in path.split("/") if part]
        route, allowed = self._resolve(parts)
        cacheable = lookup == "GET" and route in _CACHEABLE_ROUTES
        if cacheable:
            etag = index.etag
            if self._etag_matches(
                request_headers.get("if-none-match"), etag
            ):
                return 304, "", {"ETag": etag}, b""
            entry = index.response_cache.get(target)
            if entry is not None:
                self._m_cache_hits.inc(1)
                return entry
            self._m_cache_misses.inc(1)
        status, body, headers = self._route(
            lookup, path, parts, route, allowed, query_string,
            index, history,
        )
        if cacheable and status == 200:
            headers["ETag"] = etag
            entry = (status, body, headers,
                     self._render_payload(body))
            if len(index.response_cache) < _CACHE_MAX_ENTRIES:
                index.response_cache[target] = entry
            return entry
        return status, body, headers, None

    @staticmethod
    def _etag_matches(header_value: Optional[str], etag: str) -> bool:
        """RFC 7232 ``If-None-Match``: ``*`` or any listed entity-tag
        (strong comparison — our tags are strong by construction)."""
        if not header_value:
            return False
        value = header_value.strip()
        if value == "*":
            return True
        return etag in (
            candidate.strip() for candidate in value.split(",")
        )

    @staticmethod
    def _render_payload(body: object) -> bytes:
        """The exact response body bytes for one routed body — the
        same rendering :meth:`_encode` would perform."""
        if isinstance(body, str):
            return body.encode("utf-8")
        return (json.dumps(body) + "\n").encode("utf-8")

    @staticmethod
    def _endpoint_of(path: str) -> str:
        parts = [part for part in path.strip("/").split("/") if part]
        if (len(parts) == 3 and parts[0] == "asn"
                and parts[2] == "history"):
            return "history"
        head = parts[0] if parts else "other"
        return head if head in _ENDPOINTS else "other"

    @staticmethod
    def _resolve(
        parts: List[str],
    ) -> Tuple[Optional[str], Tuple[str, ...]]:
        """``(route, allowed methods)`` for a path, or ``(None, ())``
        when no route exists — the split that lets wrong-method hits on
        known paths answer 405 + ``Allow`` instead of a blanket 404."""
        if len(parts) == 1 and parts[0] in (
            "healthz", "version", "categories", "metrics",
        ):
            return parts[0], _READ_METHODS
        if parts == ["refresh"]:
            return "refresh", ("POST",)
        if len(parts) == 2 and parts[0] == "asn":
            return "asn", _READ_METHODS
        if len(parts) == 2 and parts[0] == "org":
            return "org", _READ_METHODS
        if (len(parts) == 3 and parts[0] == "asn"
                and parts[2] == "history"):
            return "history", _READ_METHODS
        if (len(parts) == 4 and parts[0] == "asof"
                and parts[2] == "asn"):
            return "asof", _READ_METHODS
        return None, ()

    def _route(
        self,
        method: str,
        path: str,
        parts: List[str],
        route: Optional[str],
        allowed: Tuple[str, ...],
        query_string: str,
        index: ReadIndex,
        history: Optional[HistoryIndex],
    ) -> Response:
        if route is None:
            return self._error(404, f"no route for {path}")
        if method not in allowed:
            return 405, {
                "error": f"{method} is not allowed for {path}",
                "allow": list(allowed),
            }, {"Allow": ", ".join(allowed)}
        if route == "refresh":
            if self._rebuild is None:
                return self._error(
                    405, "refresh is disabled: no rebuild source"
                )
            new = self.refresh()
            return 200, {"swapped": True,
                         "version": new.version.to_dict()}, {}

        if parts == ["healthz"]:
            return 200, {
                "status": "ok",
                "generation": index.version.generation,
                "records": len(index),
                "queue_depth": (
                    self.queue.depth() if self.queue is not None else None
                ),
            }, {}
        if parts == ["version"]:
            return 200, index.version.to_dict(), {}
        if parts == ["categories"]:
            return 200, {
                "generation": index.version.generation,
                "categories": index.categories(),
                "stages": index.stage_counts(),
            }, {}
        if parts == ["metrics"]:
            return 200, self.metrics.to_prometheus(), {
                "Content-Type": "text/plain; version=0.0.4",
            }
        if len(parts) == 2 and parts[0] == "asn":
            return self._get_asn(index, parts[1])
        if len(parts) == 2 and parts[0] == "org":
            return self._get_org(index, parts[1], query_string)
        if (len(parts) == 3 and parts[0] == "asn"
                and parts[2] == "history"):
            return self._get_history(history, parts[1])
        if (len(parts) == 4 and parts[0] == "asof"
                and parts[2] == "asn"):
            return self._get_asof(history, parts[1], parts[3])
        return self._error(404, f"no route for {path}")

    def _get_asn(self, index: ReadIndex, raw: str) -> Response:
        try:
            asn = int(unquote(raw))
        except ValueError:
            return self._error(400, f"not an ASN: {raw!r}")
        record = index.get(asn)
        if record is not None:
            return 200, {
                "generation": index.version.generation,
                "record": record_view(record),
            }, {}
        if self.queue is None:
            return self._error(404, f"AS{asn} is not in the dataset")
        failure = self.queue.failure(asn)
        if failure is not None:
            return self._error(
                404, f"AS{asn} could not be classified: {failure}"
            )
        outcome = self.queue.offer(asn)
        retry = {"Retry-After": str(self._retry_after)}
        if outcome == OFFER_FULL:
            return 503, {
                "error": "classification queue is full",
                "asn": asn,
                "retry_after": self._retry_after,
            }, retry
        return 202, {
            "status": outcome,
            "asn": asn,
            "retry_after": self._retry_after,
            "detail": (
                "classification queued; retry for the next index "
                "generation"
                if outcome == OFFER_QUEUED
                else "classification already pending"
            ),
        }, retry

    def _get_org(
        self, index: ReadIndex, raw: str, query_string: str
    ) -> Response:
        query = unquote(raw)
        limit = ORG_LIMIT_DEFAULT
        params = parse_qs(query_string)
        if "limit" in params:
            try:
                limit = max(1, min(ORG_LIMIT_CAP,
                                   int(params["limit"][0])))
            except ValueError:
                return self._error(
                    400, f"bad limit {params['limit'][0]!r} "
                    f"(want an integer, 1..{ORG_LIMIT_CAP})"
                )
        asns = index.org_matches(query)
        matches = [index.get(asn) for asn in asns[:limit]]
        return 200, {
            "generation": index.version.generation,
            "query": query,
            "count": len(matches),
            "total": len(asns),
            "limit": limit,
            "truncated": len(asns) > limit,
            "matches": [record_view(record) for record in matches],
        }, {}

    _NO_HISTORY = (
        "history is not served here: start the service from a "
        "snapshot store (repro serve --snapshots DIR) to enable "
        "temporal endpoints"
    )

    def _get_history(
        self, history: Optional[HistoryIndex], raw: str
    ) -> Response:
        if history is None:
            return self._error(404, self._NO_HISTORY)
        try:
            asn = int(unquote(raw))
        except ValueError:
            return self._error(400, f"not an ASN: {raw!r}")
        events = history.timeline(asn)
        if events is None:
            return self._error(
                404, f"AS{asn} never appears in the release history"
            )
        return 200, {
            "asn": asn,
            "generation": history.generation,
            "latest_version": history.latest_version,
            "events": [event.to_dict() for event in events],
        }, {}

    def _get_asof(
        self,
        history: Optional[HistoryIndex],
        raw_day: str,
        raw_asn: str,
    ) -> Response:
        if history is None:
            return self._error(404, self._NO_HISTORY)
        try:
            day = int(unquote(raw_day))
        except ValueError:
            return self._error(400, f"not a day: {raw_day!r}")
        try:
            asn = int(unquote(raw_asn))
        except ValueError:
            return self._error(400, f"not an ASN: {raw_asn!r}")
        version = history.version_on(day)
        if version is None:
            return self._error(
                404, f"no release at or before day {day}"
            )
        info = history.info(version)
        item = history.record_asof(asn, version)
        if item is None:
            return 404, {
                "error": (
                    f"AS{asn} was not in the dataset as of day {day}"
                ),
                "day": day,
                "version": version,
                "generation": history.generation,
            }, {}
        return 200, {
            "asn": asn,
            "day": day,
            "version": version,
            "since_day": info.since_day,
            "through_day": info.through_day,
            "digest": info.digest,
            "generation": history.generation,
            "record": item,
        }, {}

    @staticmethod
    def _error(status: int, message: str) -> Response:
        return status, {"error": message}, {}

    # -- asyncio HTTP layer --------------------------------------------------

    @staticmethod
    def _encode(status: int, body: object,
                headers: Dict[str, str],
                payload: Optional[bytes] = None,
                head_only: bool = False) -> bytes:
        """One wire response.  ``payload`` short-circuits body
        rendering with pre-cached bytes; ``head_only`` (HEAD requests)
        sends the real Content-Length but no body."""
        if isinstance(body, str):
            if payload is None:
                payload = body.encode("utf-8")
            content_type = headers.pop(
                "Content-Type", "text/plain; charset=utf-8"
            )
        else:
            if payload is None:
                payload = (json.dumps(body) + "\n").encode("utf-8")
            content_type = headers.pop("Content-Type", "application/json")
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
        ]
        lines.extend(f"{key}: {value}" for key, value in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        return head if head_only else head + payload

    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    raw = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    ConnectionResetError,
                ):
                    break
                request_line, _, header_block = raw.partition(b"\r\n")
                try:
                    method, target, http_version = (
                        request_line.decode("latin-1").split(" ", 2)
                    )
                except ValueError:
                    writer.write(self._encode(
                        400, {"error": "malformed request line"}, {}
                    ))
                    await writer.drain()
                    break
                header_lines = header_block.decode("latin-1").split("\r\n")
                header_map = {}
                for line in header_lines:
                    name, sep, value = line.partition(":")
                    if sep:
                        header_map[name.strip().lower()] = value.strip()
                # Discard any request body so the next request in the
                # pipeline frames correctly.
                length = int(header_map.get("content-length", 0) or 0)
                if length:
                    await reader.readexactly(length)
                connection = header_map.get("connection", "").lower()
                keep_alive = (
                    connection != "close"
                    and http_version.strip() != "HTTP/1.0"
                )
                status, body, extra, payload = self._respond(
                    method.upper(), target, header_map
                )
                headers = dict(extra)
                headers["Connection"] = (
                    "keep-alive" if keep_alive else "close"
                )
                writer.write(self._encode(
                    status, body, headers, payload=payload,
                    head_only=(method.upper() == "HEAD"
                               or status == 304),
                ))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancels in-flight handlers; absorbing the
            # cancellation here keeps task.exception() retrieval in
            # asyncio.streams from spamming the loop's error handler.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_client, host, port
        )
        bound_host, bound_port = (
            self._server.sockets[0].getsockname()[:2]
        )
        if self.worker is not None and not self.worker.is_alive():
            self.worker.start()
        self.runlog.emit(
            "serve.start",
            host=bound_host,
            port=bound_port,
            records=len(self._index),
            generation=self._index.version.generation,
        )
        return bound_host, bound_port

    async def serve_forever(self) -> None:
        """Block serving requests until cancelled."""
        if self._server is None:
            raise RuntimeError("call start() first")
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and shut the worker down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.close()

    def close(self) -> None:
        """Synchronous teardown: stop the queue worker, log the stop."""
        if self.worker is not None:
            self.worker.stop()
        self.runlog.emit(
            "serve.stop", generation=self._index.version.generation
        )
