"""Web substrate: synthetic websites, languages, translation, scraping.

Stands in for the live web + Google Translate that the paper's ML pipeline
depends on.  The :class:`WebUniverse` holds generated sites; the
:class:`Scraper` implements the Figure-3 keyword-link-following scrape; the
:mod:`translate` module inverts the synthetic language ciphers.
"""

from .corpus import FILLER_WORDS, UNINFORMATIVE_TEXT, category_text
from .language import ENGLISH, LANGUAGES, Language, by_code, encode_text
from .scraper import ScrapeResult, Scraper
from .site import Link, Page, Website, WebUniverse
from .sitegen import SiteTraits, generate_site
from .translate import TranslationResult, detect_language, translate_to_english

__all__ = [
    "Page",
    "Link",
    "Website",
    "WebUniverse",
    "SiteTraits",
    "generate_site",
    "Scraper",
    "ScrapeResult",
    "Language",
    "LANGUAGES",
    "ENGLISH",
    "by_code",
    "encode_text",
    "detect_language",
    "translate_to_english",
    "TranslationResult",
    "category_text",
    "FILLER_WORDS",
    "UNINFORMATIVE_TEXT",
]
