"""Synthetic website generator.

Builds a :class:`~repro.web.site.Website` for an organization given its
NAICSlite category and a set of *traits* modeling the paper's documented
real-world failure modes:

* ``language`` - 49% of Gold Standard AS websites are not in English;
* ``uninformative`` - e.g. an Apache test page (11% of crowdwork cases);
* ``text_in_images`` - descriptive text rendered in images, unscrapable;
* ``hidden_info`` - service descriptions live on an internal page whose
  link title matches none of the scraper's keywords (67% of ML failures);
* ``misleading_keywords`` - off-category words on the homepage (the Indian
  Institute of Tropical Meteorology's "cloud computing performance" case).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..taxonomy import keywords as taxonomy_keywords
from . import corpus
from .language import ENGLISH, Language, encode_text
from .site import Link, Page, Website

__all__ = ["SiteTraits", "generate_site"]

#: Vocabulary bleed between adjacent technology categories: hosting
#: providers advertise their network; ISPs upsell hosting.  This overlap -
#: not label noise - is what caps the ML classifiers' separability
#: (Table 6: hosting AUC .80 vs ISP AUC .94).
_VOCAB_BLEED = {
    "hosting": ("isp", 0.22),
    "isp": ("hosting", 0.05),
    "phone_provider": ("isp", 0.12),
    "it_other": ("hosting", 0.10),
    "tech_consulting": ("hosting", 0.08),
}


@dataclass(frozen=True)
class SiteTraits:
    """Failure-mode switches for a generated website."""

    language: Language = ENGLISH
    uninformative: bool = False
    text_in_images: bool = False
    hidden_info: bool = False
    misleading_keywords: Tuple[str, ...] = ()


def _page(
    rng: random.Random,
    title: str,
    layer2_slug: Optional[str],
    n_words: int,
    keyword_weight: float,
    language: Language,
    text_in_images: bool = False,
    extra_keywords: Sequence[str] = (),
) -> Page:
    bleed_keywords: Sequence[str] = ()
    bleed_weight = 0.0
    if layer2_slug in _VOCAB_BLEED:
        bleed_slug, bleed_weight = _VOCAB_BLEED[layer2_slug]
        bleed_keywords = taxonomy_keywords.keywords_for_layer2(bleed_slug)
    text = corpus.category_text(
        rng,
        layer2_slug,
        n_words,
        keyword_weight=keyword_weight,
        extra_keywords=extra_keywords,
        bleed_keywords=bleed_keywords,
        bleed_weight=bleed_weight,
    )
    return Page(
        title=title,
        text=encode_text(text, language),
        text_in_images=text_in_images,
    )


def generate_site(
    rng: random.Random,
    org_name: str,
    domain: str,
    layer2_slug: str,
    traits: SiteTraits = SiteTraits(),
) -> Website:
    """Generate one organization website.

    The homepage is keyword-diluted; descriptive text concentrates on
    internal pages (as the paper observes).  Traits inject failure modes.

    Args:
        rng: Seeded random source.
        org_name: Organization name (echoed in the homepage title, which
            "most similar domain" matching relies on).
        domain: The site's domain.
        layer2_slug: Ground-truth NAICSlite layer 2 slug of the owner.
        traits: Failure-mode switches.
    """
    language = traits.language
    home_title = corpus.page_title_for(org_name, "home")

    if traits.uninformative:
        homepage = Page(
            title="Test Page",
            text=encode_text(corpus.UNINFORMATIVE_TEXT, language),
        )
        return Website(
            domain=domain,
            homepage=homepage,
            links=(),
            language_code=language.code,
        )

    # Homepage: diluted signal unless info is hidden deeper.
    home_keyword_weight = 0.05 if traits.hidden_info else 0.25
    homepage = _page(
        rng,
        home_title,
        layer2_slug,
        n_words=rng.randint(60, 140),
        keyword_weight=home_keyword_weight,
        language=language,
        text_in_images=traits.text_in_images,
        extra_keywords=traits.misleading_keywords,
    )

    links: List[Link] = []
    n_internal = rng.randint(2, 6)
    titles = list(corpus.INTERNAL_PAGE_TITLES)
    rng.shuffle(titles)
    for title in titles[:n_internal]:
        links.append(
            Link(
                title=title,
                page=_page(
                    rng,
                    title,
                    layer2_slug,
                    n_words=rng.randint(80, 200),
                    keyword_weight=0.05 if traits.hidden_info else 0.45,
                    language=language,
                    text_in_images=traits.text_in_images,
                ),
            )
        )

    if traits.hidden_info:
        # The descriptive text exists but sits behind a link whose title
        # matches none of the scraper's keywords.
        hidden_titles = list(corpus.HIDDEN_PAGE_TITLES)
        rng.shuffle(hidden_titles)
        links.append(
            Link(
                title=hidden_titles[0],
                page=_page(
                    rng,
                    hidden_titles[0],
                    layer2_slug,
                    n_words=rng.randint(120, 240),
                    keyword_weight=0.5,
                    language=language,
                ),
            )
        )

    return Website(
        domain=domain,
        homepage=homepage,
        links=tuple(links),
        language_code=language.code,
    )
