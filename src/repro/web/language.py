"""Synthetic non-English languages and language detection.

49% of Gold Standard AS websites are not in English (Section 4.1); the paper
pipes scraped text through Google Translate before featurization.  Offline,
we model "a foreign language" as an invertible token cipher: each language
transforms every word deterministically (reverse the word and add a
language-specific suffix).  The :mod:`repro.web.translate` module inverts the
cipher, playing the role of the translation service.

The ciphers are bijective on lowercase ASCII tokens, so translation can be
(nearly) lossless - and crucially, *untranslated* foreign text shares no
vocabulary with the English training corpus, reproducing why translation is
a load-bearing pipeline stage (the ablation bench disables it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["Language", "LANGUAGES", "ENGLISH", "by_code", "encode_text"]


@dataclass(frozen=True)
class Language:
    """A synthetic language defined by a word cipher.

    Attributes:
        code: Two-letter language code (``"en"`` is the identity).
        name: Display name.
        suffix: Suffix appended to each reversed word; unique per language
            and used for detection.
    """

    code: str
    name: str
    suffix: str

    @property
    def is_english(self) -> bool:
        """Whether this is the identity language."""
        return self.code == "en"

    def encode_word(self, word: str) -> str:
        """Cipher one lowercase word into this language."""
        if self.is_english or not word:
            return word
        return word[::-1] + self.suffix

    def decode_word(self, word: str) -> Optional[str]:
        """Invert the cipher; None if ``word`` is not in this language."""
        if self.is_english:
            return word
        if not word.endswith(self.suffix) or len(word) <= len(self.suffix):
            return None
        return word[: -len(self.suffix)][::-1]


ENGLISH = Language(code="en", name="English", suffix="")

#: The non-English languages of the synthetic web.  Suffixes are chosen so
#: no suffix is a suffix of another (detection is unambiguous).
LANGUAGES: Tuple[Language, ...] = (
    ENGLISH,
    Language(code="xa", name="Xalian", suffix="ax"),
    Language(code="xb", name="Xborese", suffix="ubo"),
    Language(code="xc", name="Xocian", suffix="eco"),
    Language(code="xd", name="Xdunic", suffix="idu"),
    Language(code="xe", name="Xelvan", suffix="ove"),
)

_BY_CODE: Dict[str, Language] = {lang.code: lang for lang in LANGUAGES}


def by_code(code: str) -> Language:
    """Look up a language by its two-letter code."""
    return _BY_CODE[code]


def encode_text(text: str, language: Language) -> str:
    """Cipher whole text (word by word) into ``language``."""
    if language.is_english:
        return text
    return " ".join(
        language.encode_word(word) for word in text.split()
    )
