"""The web scraper feeding the ML classification pipeline (Figure 3).

The paper's scraper fetches the root page of an organization's domain and,
because service descriptions often live on inner pages, follows up to five
internal links whose link titles contain a curated keyword list.  Scraped
text is then translated to English before featurization.

This implementation mirrors that design against the synthetic
:class:`~repro.web.site.WebUniverse`.  The failure modes are faithful:

* unreachable domains scrape to nothing;
* pages whose text lives in images contribute nothing;
* informative pages behind non-keyword link titles are never visited
  (the paper attributes 67% of ML false negatives to this).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..taxonomy.keywords import SCRAPER_LINK_KEYWORDS
from .site import WebUniverse
from .translate import translate_many, translate_to_english

__all__ = ["ScrapeResult", "RawScrape", "Scraper"]

#: Maximum internal pages visited per site (Figure 3: "up to five").
MAX_INTERNAL_PAGES = 5


@dataclass(frozen=True)
class RawScrape:
    """One domain's fetch *before* the translation stage.

    The ML pipeline's content-addressed cache keys on this raw text, so
    it gathers first, consults the cache, and only pays for translation
    (via :meth:`Scraper.translate_texts`) on digest misses.

    Attributes:
        domain: The domain fetched.
        reachable: Whether the site answered at all.
        raw_text: Concatenated untranslated text from visited pages.
        pages_visited: Titles of the pages visited, homepage first.
    """

    domain: str
    reachable: bool
    raw_text: str
    pages_visited: Tuple[str, ...] = ()

    @property
    def empty(self) -> bool:
        """Whether nothing useful was fetched.

        Translation of a non-empty text is never empty (and vice
        versa), so this agrees with :attr:`ScrapeResult.empty` for the
        same fetch — which is what keeps the outcome counters and the
        pipeline's unscraped verdicts identical on the raw path.
        """
        return not self.raw_text.strip()


@dataclass(frozen=True)
class ScrapeResult:
    """Outcome of scraping one domain.

    Attributes:
        domain: The domain scraped.
        reachable: Whether the site answered at all.
        text: Concatenated translated text from visited pages.
        pages_visited: Titles of the pages visited, homepage first.
        detected_language: Language code detected during translation.
    """

    domain: str
    reachable: bool
    text: str
    pages_visited: Tuple[str, ...] = ()
    detected_language: str = "en"

    @property
    def empty(self) -> bool:
        """Whether nothing useful was scraped."""
        return not self.text.strip()


def _link_matches_keywords(title: str, keywords: Tuple[str, ...]) -> bool:
    lowered = title.lower()
    tokens = set(lowered.replace("-", " ").split())
    return any(keyword in tokens for keyword in keywords)


class Scraper:
    """Keyword-link-following scraper over a :class:`WebUniverse`.

    Args:
        universe: The web to scrape.
        link_keywords: Keywords for selecting internal links (defaults to
            the paper's Figure-3 list).
        max_internal_pages: Cap on internal pages per site.
        translate: Whether to run the translation stage (the ML ablation
            bench turns this off).
        metrics: Optional metrics registry; emits scrape latency and
            per-outcome scrape counters.
    """

    def __init__(
        self,
        universe: WebUniverse,
        link_keywords: Tuple[str, ...] = SCRAPER_LINK_KEYWORDS,
        max_internal_pages: int = MAX_INTERNAL_PAGES,
        translate: bool = True,
        follow_internal_links: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._universe = universe
        self._link_keywords = tuple(kw.lower() for kw in link_keywords)
        self._max_internal_pages = max_internal_pages
        self._translate = translate
        self._follow_internal_links = follow_internal_links
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_scrape_seconds = registry.histogram(
            "asdb_scrape_seconds",
            "Site scrape latency (fetch, link-follow, translate).",
        )
        self._m_scrapes = registry.counter(
            "asdb_scrapes_total",
            "Scrape attempts by outcome.",
            ("outcome",),
        )
        for outcome in ("ok", "empty", "unreachable"):
            self._m_scrapes.inc(0, outcome=outcome)
        self._m_batch_seconds = registry.histogram(
            "asdb_scrape_batch_seconds",
            "Bulk scrape latency per batch (fetch + batched translate).",
        )

    def scrape(self, domain: str) -> ScrapeResult:
        """Scrape one domain: root page plus keyword-selected inner pages."""
        start = time.perf_counter()
        result = self._scrape(domain)
        self._m_scrape_seconds.observe(time.perf_counter() - start)
        self._m_scrapes.inc(1, outcome=self._outcome(result))
        return result

    def scrape_many(self, domains: Sequence[str]) -> List[ScrapeResult]:
        """Batch scrape: fetch every site, translate all texts in one pass.

        Elementwise identical to :meth:`scrape` — page selection is
        per-domain, and batch translation is per-text deterministic.
        Outcome counters tick per domain exactly as in the scalar path;
        latency lands in ``asdb_scrape_batch_seconds`` (one observation
        per batch) instead of the per-scrape histogram.
        """
        start = time.perf_counter()
        gathered = [self._gather(domain) for domain in domains]
        positions = [
            index for index, (_, raw, _) in enumerate(gathered)
            if raw and self._translate
        ]
        translations = translate_many(
            [gathered[index][1] for index in positions]
        )
        translated = dict(zip(positions, translations))
        results: List[ScrapeResult] = []
        for index, (reachable, raw, visited) in enumerate(gathered):
            if not reachable:
                results.append(
                    ScrapeResult(
                        domain=domains[index], reachable=False, text=""
                    )
                )
                continue
            text, detected = raw, "en"
            hit = translated.get(index)
            if hit is not None:
                text, detected = hit.text, hit.detected.code
            results.append(
                ScrapeResult(
                    domain=domains[index],
                    reachable=True,
                    text=text,
                    pages_visited=visited,
                    detected_language=detected,
                )
            )
        self._m_batch_seconds.observe(time.perf_counter() - start)
        for result in results:
            self._m_scrapes.inc(1, outcome=self._outcome(result))
        return results

    def gather(self, domain: str) -> RawScrape:
        """Fetch one domain without translating (see :class:`RawScrape`).

        Scrape latency and outcome counters tick exactly as for
        :meth:`scrape` — the outcome of a fetch does not depend on
        translation.
        """
        start = time.perf_counter()
        reachable, raw, visited = self._gather(domain)
        result = RawScrape(
            domain=domain,
            reachable=reachable,
            raw_text=raw,
            pages_visited=visited,
        )
        self._m_scrape_seconds.observe(time.perf_counter() - start)
        self._m_scrapes.inc(1, outcome=self._raw_outcome(result))
        return result

    def gather_many(self, domains: Sequence[str]) -> List[RawScrape]:
        """Batch :meth:`gather`; elementwise identical to the scalar
        form.  Batch latency lands in ``asdb_scrape_batch_seconds`` and
        outcome counters tick per domain, as in :meth:`scrape_many`."""
        start = time.perf_counter()
        results = []
        for domain in domains:
            reachable, raw, visited = self._gather(domain)
            results.append(
                RawScrape(
                    domain=domain,
                    reachable=reachable,
                    raw_text=raw,
                    pages_visited=visited,
                )
            )
        self._m_batch_seconds.observe(time.perf_counter() - start)
        for result in results:
            self._m_scrapes.inc(1, outcome=self._raw_outcome(result))
        return results

    def translate_texts(self, texts: Sequence[str]) -> List[str]:
        """Translate raw scraped texts exactly as :meth:`scrape_many`
        would (elementwise deterministic); a no-op passthrough when the
        scraper's translation stage is disabled."""
        out = list(texts)
        if not self._translate:
            return out
        positions = [index for index, text in enumerate(out) if text]
        translations = translate_many([out[index] for index in positions])
        for index, result in zip(positions, translations):
            out[index] = result.text
        return out

    @staticmethod
    def _raw_outcome(result: RawScrape) -> str:
        return (
            "unreachable" if not result.reachable
            else "empty" if result.empty
            else "ok"
        )

    @staticmethod
    def _outcome(result: ScrapeResult) -> str:
        return (
            "unreachable" if not result.reachable
            else "empty" if result.empty
            else "ok"
        )

    def _gather(
        self, domain: str
    ) -> Tuple[bool, str, Tuple[str, ...]]:
        """Fetch one site's raw (untranslated) text.

        Returns ``(reachable, raw_text, pages_visited)``; the scalar and
        batch paths share this so their page selection cannot diverge.
        """
        site = self._universe.fetch(domain)
        if site is None:
            return False, "", ()

        chunks: List[str] = []
        visited: List[str] = [site.homepage.title]
        root_text = site.homepage.scrapable_text
        if root_text:
            chunks.append(root_text)

        if self._follow_internal_links:
            followed = 0
            for link in site.links:
                if followed >= self._max_internal_pages:
                    break
                if not _link_matches_keywords(link.title, self._link_keywords):
                    continue
                followed += 1
                visited.append(link.page.title)
                inner_text = link.page.scrapable_text
                if inner_text:
                    chunks.append(inner_text)

        return True, " ".join(chunks), tuple(visited)

    def _scrape(self, domain: str) -> ScrapeResult:
        reachable, raw, visited = self._gather(domain)
        if not reachable:
            return ScrapeResult(domain=domain, reachable=False, text="")
        detected = "en"
        if self._translate and raw:
            result = translate_to_english(raw)
            raw = result.text
            detected = result.detected.code
        return ScrapeResult(
            domain=domain,
            reachable=True,
            text=raw,
            pages_visited=visited,
            detected_language=detected,
        )
