"""The translation stage of the ML pipeline (stands in for Google Translate).

The paper translates scraped non-English text to English using Chrome's
Google Translate (Section 4.1).  Our translator detects the synthetic
language by suffix statistics and inverts the token cipher.  Real machine
translation is imperfect; we model that with a small deterministic loss:
words whose decode fails (or that were never cipher-encoded, e.g. proper
nouns) pass through untranslated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .language import ENGLISH, LANGUAGES, Language

__all__ = [
    "TranslationResult",
    "detect_language",
    "translate_to_english",
    "translate_many",
]

#: Minimum fraction of tokens matching a language's suffix for detection.
_DETECTION_THRESHOLD = 0.3


@dataclass(frozen=True)
class TranslationResult:
    """Outcome of a translation call.

    Attributes:
        text: The (possibly partially) translated text.
        detected: The detected source language.
        translated_fraction: Fraction of tokens successfully translated
            (1.0 for English input).
    """

    text: str
    detected: Language
    translated_fraction: float


def detect_language(text: str) -> Language:
    """Detect the dominant language of ``text`` by suffix statistics."""
    words = text.split()
    if not words:
        return ENGLISH
    best, best_fraction = ENGLISH, 0.0
    for language in LANGUAGES:
        if language.is_english:
            continue
        hits = sum(
            1 for word in words if language.decode_word(word) is not None
        )
        fraction = hits / len(words)
        if fraction > best_fraction:
            best, best_fraction = language, fraction
    if best_fraction >= _DETECTION_THRESHOLD:
        return best
    return ENGLISH


def translate_to_english(text: str) -> TranslationResult:
    """Translate ``text`` to English, auto-detecting the source language."""
    language = detect_language(text)
    return _decode_as(text.split(), text, language)


def _detect_fast(words: Sequence[str]) -> Language:
    """Detection over pre-split words, skipping per-word decoding.

    ``decode_word(w) is not None`` holds exactly when ``w`` ends with the
    language's suffix and is strictly longer than it, so counting with
    ``str.endswith`` visits the same words in the same language order and
    picks the same winner as :func:`detect_language` — without building
    the reversed decode of every matching word just to discard it.
    """
    if not words:
        return ENGLISH
    total = len(words)
    best, best_fraction = ENGLISH, 0.0
    for language in LANGUAGES:
        if language.is_english:
            continue
        suffix = language.suffix
        floor = len(suffix)
        hits = sum(
            1 for word in words
            if word.endswith(suffix) and len(word) > floor
        )
        fraction = hits / total
        if fraction > best_fraction:
            best, best_fraction = language, fraction
    if best_fraction >= _DETECTION_THRESHOLD:
        return best
    return ENGLISH


def _decode_as(
    words: Sequence[str], text: str, language: Language
) -> TranslationResult:
    """The shared decode pass once the source language is known."""
    if language.is_english:
        return TranslationResult(
            text=text, detected=ENGLISH, translated_fraction=1.0
        )
    out: List[str] = []
    translated = 0
    for word in words:
        decoded = language.decode_word(word)
        if decoded is not None:
            out.append(decoded)
            translated += 1
        else:
            out.append(word)
    fraction = translated / len(words) if words else 1.0
    return TranslationResult(
        text=" ".join(out), detected=language, translated_fraction=fraction
    )


def translate_many(texts: Sequence[str]) -> List[TranslationResult]:
    """Batch translation: elementwise equal to :func:`translate_to_english`.

    Each text is detected and decoded independently (translation has no
    cross-document state), so results are identical to the scalar call;
    the batch entry point exists so bulk callers (the batch scraper and
    Zvelo's bulk endpoint) go through the fast suffix-count detector.
    """
    results: List[TranslationResult] = []
    for text in texts:
        words = text.split()
        results.append(_decode_as(words, text, _detect_fast(words)))
    return results
