"""Text corpora for the synthetic web.

Page text is generated as a mixture of three vocabularies:

* the owning organization's NAICSlite category keyword profile
  (:mod:`repro.taxonomy.keywords`) - the signal;
* generic web words present on nearly every site (nav labels, boilerplate);
* neutral filler words - the noise floor.

The mixture weights control how "on-topic" a page is: homepages are diluted
(the paper notes service descriptions often live on inner pages), while
"About us" / "Our services" pages are keyword-dense.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..taxonomy import keywords

__all__ = [
    "FILLER_WORDS",
    "category_text",
    "page_title_for",
    "INTERNAL_PAGE_TITLES",
    "UNINFORMATIVE_TEXT",
]

#: Neutral words that carry no industry signal.
FILLER_WORDS: Tuple[str, ...] = (
    "the", "and", "for", "with", "that", "this", "from", "your", "you",
    "are", "was", "will", "can", "has", "have", "all", "new", "one", "two",
    "also", "its", "our", "out", "get", "use", "see", "now", "here",
    "every", "each", "over", "under", "between", "during", "within",
    "provide", "offer", "make", "made", "help", "best", "great", "many",
    "most", "other", "some", "such", "than", "then", "them", "they",
    "year", "years", "time", "day", "place", "people", "work", "working",
    "based", "located", "around", "across", "along", "available", "visit",
    "find", "call", "page", "site", "information", "details", "read",
    "click", "view", "open", "close", "start", "end", "first", "last",
    "number", "name", "list", "area", "region", "local", "global",
    "national", "international", "group", "member", "part", "full",
)

#: Canonical internal-page titles.  Titles in the first group contain the
#: scraper's link keywords (Figure 3) and get followed; the second group's
#: titles do not and get skipped even when they hold descriptive text.
INTERNAL_PAGE_TITLES: Tuple[str, ...] = (
    "About Us",
    "Our Services",
    "Our Company",
    "Network Coverage",
    "What We Do",
    "Solutions",
    "Company History",
    "Connect With Us",
)

#: Internal-page titles that do NOT match any scraper keyword.
HIDDEN_PAGE_TITLES: Tuple[str, ...] = (
    "Portfolio",
    "Blog",
    "Press Releases",
    "Investors",
    "Legal Notices",
)

#: Text of an uninformative site (the paper's Apache-test-page case).
UNINFORMATIVE_TEXT: str = (
    "it works this is the default web page for this server the web server "
    "software is running but no content has been added yet"
)


def category_text(
    rng: random.Random,
    layer2_slug: Optional[str],
    n_words: int,
    keyword_weight: float = 0.4,
    generic_weight: float = 0.3,
    extra_keywords: Sequence[str] = (),
    bleed_keywords: Sequence[str] = (),
    bleed_weight: float = 0.0,
) -> str:
    """Generate ``n_words`` of page text for a category.

    Args:
        rng: Seeded random source.
        layer2_slug: NAICSlite layer 2 slug supplying the keyword profile,
            or None for a category-free page (pure boilerplate).
        n_words: Number of words to emit.
        keyword_weight: Probability each word is drawn from the category
            profile (split evenly with ``extra_keywords`` when given).
        generic_weight: Probability each word is generic web boilerplate.
        extra_keywords: Additional vocabulary mixed into the keyword share
            (used to inject misleading terms, e.g. a research institute
            whose homepage talks about "cloud" and "computing").
        bleed_keywords: Vocabulary of an *adjacent* category mixed in at
            ``bleed_weight`` (hosting providers talk about their network;
            ISPs sell hosting add-ons) - the source of realistic
            classifier confusion.
        bleed_weight: Probability each word is drawn from
            ``bleed_keywords``.
    """
    profile: Sequence[str] = ()
    if layer2_slug is not None:
        profile = keywords.keywords_for_layer2(layer2_slug)
    words: List[str] = []
    bleed_edge = bleed_weight if bleed_keywords else 0.0
    for _ in range(n_words):
        roll = rng.random()
        if roll < bleed_edge:
            words.append(rng.choice(list(bleed_keywords)))
        elif roll < bleed_edge + keyword_weight and (
            profile or extra_keywords
        ):
            if extra_keywords and (not profile or rng.random() < 0.5):
                words.append(rng.choice(list(extra_keywords)))
            else:
                words.append(rng.choice(list(profile)))
        elif roll < bleed_edge + keyword_weight + generic_weight:
            words.append(rng.choice(keywords.GENERIC_WEB_WORDS))
        else:
            words.append(rng.choice(FILLER_WORDS))
    return " ".join(words)


def page_title_for(org_name: str, kind: str = "home") -> str:
    """A page title; homepages echo the organization name (the paper's
    "most similar domain" heuristic compares homepage titles to AS names).
    """
    if kind == "home":
        return f"{org_name} - Home"
    return kind
