"""Website and page model for the synthetic web.

A :class:`Website` is a homepage plus internal pages reachable through
titled links.  Pages can hide their text in images (``text_in_images``),
which defeats the scraper - one of the paper's documented failure modes.
:class:`WebUniverse` maps domains to websites and models unreachable sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Page", "Link", "Website", "WebUniverse"]


@dataclass(frozen=True)
class Page:
    """One web page.

    Attributes:
        title: The page's ``<title>``.
        text: Visible page text (already plain text; the scraper does not
            parse HTML).
        text_in_images: If True, the text is rendered inside images and a
            scraper harvests nothing from this page.
    """

    title: str
    text: str
    text_in_images: bool = False

    @property
    def scrapable_text(self) -> str:
        """Text a scraper can extract (empty when text is in images)."""
        return "" if self.text_in_images else self.text


@dataclass(frozen=True)
class Link:
    """A titled link from the homepage to an internal page.

    Attributes:
        title: The anchor text / link title the scraper filters on.
        page: The target page.
    """

    title: str
    page: Page


@dataclass(frozen=True)
class Website:
    """A website: homepage plus titled links to internal pages.

    Attributes:
        domain: The site's domain.
        homepage: The root page.
        links: Links from the homepage to internal pages.
        language_code: Language of all page text (``"en"`` or one of the
            synthetic languages in :mod:`repro.web.language`).
    """

    domain: str
    homepage: Page
    links: Tuple[Link, ...] = ()
    language_code: str = "en"

    @property
    def all_pages(self) -> List[Page]:
        """Homepage followed by internal pages."""
        return [self.homepage] + [link.page for link in self.links]


class WebUniverse:
    """The synthetic World-Wide-Web: domain -> website.

    Sites can be registered as *down* (domain known but unreachable),
    matching the paper's observation that 31% of crowdwork-escalated ASes
    had no working website.
    """

    def __init__(self) -> None:
        self._sites: Dict[str, Website] = {}
        self._down: set = set()

    def add(self, site: Website) -> None:
        """Register a website (replaces any previous site at the domain)."""
        self._sites[site.domain] = site
        self._down.discard(site.domain)

    def mark_down(self, domain: str) -> None:
        """Mark a domain as unreachable."""
        self._down.add(domain)

    def is_down(self, domain: str) -> bool:
        """Whether a domain is registered but unreachable."""
        return domain in self._down

    def fetch(self, domain: str) -> Optional[Website]:
        """Fetch a website; None when unknown or down."""
        if domain in self._down:
            return None
        return self._sites.get(domain)

    def homepage_title(self, domain: str) -> Optional[str]:
        """The homepage title, or None for unknown/down domains.

        Used by "most similar domain" selection, which compares homepage
        titles to registered AS names (Table 5).
        """
        site = self.fetch(domain)
        return site.homepage.title if site else None

    def domains(self) -> List[str]:
        """All known (reachable or down) domains."""
        return sorted(set(self._sites) | self._down)

    def __len__(self) -> int:
        return len(self._sites)

    def __contains__(self, domain: str) -> bool:
        return domain in self._sites and domain not in self._down
