"""Evaluation framework: labelers, gold standards, metrics, baselines.

Implements the paper's evaluation methodology end to end: simulated
expert labelers with pair resolution (Section 3.2), the four labeled
datasets of Table 2, the coverage/recall/precision metrics of Section 3.3,
ASdb's per-stage breakdown (Table 8), the coarse F1 comparison (Table 7),
and the prior-work baselines (Section 2).
"""

from .baselines import (
    BF_CATEGORIES,
    BaumannFabianClassifier,
    CaidaEvaluation,
    evaluate_caida,
)
from .goldstandard import (
    LabeledAS,
    LabeledDataset,
    build_gold_standard,
    build_test_set,
    build_uniform_gold_standard,
)
from .harness import (
    AgreementStats,
    ConfidenceBucket,
    EntityResolutionRow,
    category_accuracy_rows,
    figure1_agreement,
    figure2_dnb_confidence,
    pairwise_precision_rows,
    table5_entity_resolution,
    table7_coarse_f1,
)
from .labeler import Labeler, NaicsJudgment, NaicsliteJudgment, resolve_pair
from .metrics import (
    Fraction,
    SourceEvaluation,
    StageBreakdown,
    StageRow,
    coarse_class_of_labels,
    coarse_f1,
    evaluate_source,
    evaluate_stages,
    peeringdb_coarse_class,
)

__all__ = [
    "Labeler",
    "NaicsJudgment",
    "NaicsliteJudgment",
    "resolve_pair",
    "LabeledAS",
    "LabeledDataset",
    "build_gold_standard",
    "build_test_set",
    "build_uniform_gold_standard",
    "Fraction",
    "SourceEvaluation",
    "evaluate_source",
    "StageBreakdown",
    "StageRow",
    "evaluate_stages",
    "coarse_class_of_labels",
    "peeringdb_coarse_class",
    "coarse_f1",
    "BaumannFabianClassifier",
    "BF_CATEGORIES",
    "CaidaEvaluation",
    "evaluate_caida",
    "AgreementStats",
    "figure1_agreement",
    "ConfidenceBucket",
    "figure2_dnb_confidence",
    "EntityResolutionRow",
    "table5_entity_resolution",
    "table7_coarse_f1",
    "category_accuracy_rows",
    "pairwise_precision_rows",
]
