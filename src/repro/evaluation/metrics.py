"""Evaluation metrics mirroring the paper's definitions.

* **Coverage** - fraction of (labelable) ASes a source has a classified
  entry for (Table 3).
* **Recall / correctness** - fraction of covered ASes whose source labels
  overlap the expert labels in at least one NAICSlite category (Table 4);
  computed at layer 1 and layer 2 granularity, with tech / non-tech /
  hosting / ISP splits.
* **Stage breakdown** - ASdb coverage and accuracy per pipeline stage
  (Table 8).
* **Coarse F1** - ASdb vs IPinfo vs PeeringDB under the Section-5.2
  four-way mapping (Table 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.database import ASdbDataset
from ..core.stages import Stage
from ..datasources.base import DataSource
from ..ml.metrics import confusion_matrix
from ..taxonomy import LabelSet
from ..world.organization import World
from .goldstandard import LabeledDataset

__all__ = [
    "Fraction",
    "SourceEvaluation",
    "evaluate_source",
    "StageRow",
    "evaluate_stages",
    "COARSE_CLASSES",
    "coarse_class_of_labels",
    "peeringdb_coarse_class",
    "coarse_f1",
]


@dataclass(frozen=True)
class Fraction:
    """A hits/total pair rendered like the paper's ``93/121 (77%)``."""

    hits: int
    total: int

    @property
    def value(self) -> float:
        """The ratio (0.0 for an empty denominator)."""
        return self.hits / self.total if self.total else 0.0

    def __str__(self) -> str:
        return f"{self.hits}/{self.total} ({self.value:.0%})"


def _fraction(pairs: Sequence[Tuple[bool, bool]]) -> Fraction:
    """(eligible, hit) pairs -> Fraction over the eligible ones."""
    eligible = [hit for keep, hit in pairs if keep]
    return Fraction(hits=sum(eligible), total=len(eligible))


@dataclass(frozen=True)
class SourceEvaluation:
    """One source's Table 3 + Table 4 row against one labeled dataset."""

    source: str
    coverage: Fraction
    coverage_tech: Fraction
    coverage_nontech: Fraction
    l1_recall: Fraction
    l1_recall_tech: Fraction
    l1_recall_nontech: Fraction
    l2_recall: Fraction
    l2_recall_tech: Fraction
    l2_recall_nontech: Fraction
    l2_recall_hosting: Fraction
    l2_recall_isp: Fraction


def evaluate_source(
    source: DataSource,
    world: World,
    dataset: LabeledDataset,
) -> SourceEvaluation:
    """Manual-mode evaluation of one source (researchers hand-verify the
    entity, so only coverage and label quality are measured)."""
    coverage_pairs: List[Tuple[bool, bool]] = []
    coverage_tech: List[Tuple[bool, bool]] = []
    coverage_nontech: List[Tuple[bool, bool]] = []
    l1_pairs: List[Tuple[bool, bool]] = []
    l1_tech: List[Tuple[bool, bool]] = []
    l1_nontech: List[Tuple[bool, bool]] = []
    l2_pairs: List[Tuple[bool, bool]] = []
    l2_tech: List[Tuple[bool, bool]] = []
    l2_nontech: List[Tuple[bool, bool]] = []
    l2_hosting: List[Tuple[bool, bool]] = []
    l2_isp: List[Tuple[bool, bool]] = []

    for entry in dataset.labeled_entries():
        org = world.org_of_asn(entry.asn)
        try:
            match = source.lookup_by_org(org.org_id)
        except NotImplementedError:
            # Source not indexable by organization (e.g. a pure website
            # classifier): counts as no coverage, not a harness crash.
            match = None
        covered = match is not None and bool(match.labels)
        tech = entry.is_tech
        coverage_pairs.append((True, covered))
        coverage_tech.append((tech, covered))
        coverage_nontech.append((not tech, covered))
        if not covered:
            continue
        l1_hit = match.labels.overlaps_layer1(entry.labels)
        l1_pairs.append((True, l1_hit))
        l1_tech.append((tech, l1_hit))
        l1_nontech.append((not tech, l1_hit))
        if entry.has_layer2 and match.labels.has_layer2:
            l2_hit = match.labels.overlaps_layer2(entry.labels)
            l2_pairs.append((True, l2_hit))
            l2_tech.append((tech, l2_hit))
            l2_nontech.append((not tech, l2_hit))
            # The hosting/ISP columns ask a sharper question: does the
            # source *identify* the category (not merely overlap some
            # other service of a multi-service org)?
            slugs = entry.labels.layer2_slugs()
            match_slugs = match.labels.layer2_slugs()
            l2_hosting.append(
                ("hosting" in slugs, "hosting" in match_slugs)
            )
            l2_isp.append(("isp" in slugs, "isp" in match_slugs))

    return SourceEvaluation(
        source=source.name,
        coverage=_fraction(coverage_pairs),
        coverage_tech=_fraction(coverage_tech),
        coverage_nontech=_fraction(coverage_nontech),
        l1_recall=_fraction(l1_pairs),
        l1_recall_tech=_fraction(l1_tech),
        l1_recall_nontech=_fraction(l1_nontech),
        l2_recall=_fraction(l2_pairs),
        l2_recall_tech=_fraction(l2_tech),
        l2_recall_nontech=_fraction(l2_nontech),
        l2_recall_hosting=_fraction(l2_hosting),
        l2_recall_isp=_fraction(l2_isp),
    )


@dataclass(frozen=True)
class StageRow:
    """One Table-8 row: per-stage coverage and layer 1 accuracy."""

    stage: Stage
    coverage: Fraction
    accuracy: Fraction


@dataclass(frozen=True)
class StageBreakdown:
    """Full Table-8 block for one labeled dataset."""

    rows: Tuple[StageRow, ...]
    overall_l1_coverage: Fraction
    overall_l1_accuracy: Fraction
    l2_tech_accuracy: Fraction
    l2_nontech_accuracy: Fraction
    overall_l2_coverage: Fraction
    overall_l2_accuracy: Fraction


def evaluate_stages(
    dataset_records: ASdbDataset,
    labeled: LabeledDataset,
) -> StageBreakdown:
    """Compute Table 8's per-stage and overall coverage/accuracy."""
    total = len(labeled.labeled_entries())
    per_stage_cov: Dict[Stage, int] = {}
    per_stage_hits: Dict[Stage, int] = {}
    per_stage_classified: Dict[Stage, int] = {}
    l1_cov = l1_hits = 0
    l2_cov = l2_hits = 0
    l2_tech = [0, 0]
    l2_nontech = [0, 0]
    l2_total = len(labeled.layer2_entries())

    for entry in labeled.labeled_entries():
        record = dataset_records.get(entry.asn)
        if record is None:
            continue
        stage = record.stage
        # Cached answers attribute to the stage that produced them; keep
        # the cached row separate only if it exists in the breakdown.
        per_stage_cov[stage] = per_stage_cov.get(stage, 0) + 1
        if record.classified:
            l1_cov += 1
            hit = record.labels.overlaps_layer1(entry.labels)
            l1_hits += hit
            per_stage_classified[stage] = (
                per_stage_classified.get(stage, 0) + 1
            )
            per_stage_hits[stage] = per_stage_hits.get(stage, 0) + hit
        if entry.has_layer2 and record.labels.has_layer2:
            l2_cov += 1
            l2_hit = record.labels.overlaps_layer2(entry.labels)
            l2_hits += l2_hit
            bucket = l2_tech if entry.is_tech else l2_nontech
            bucket[0] += l2_hit
            bucket[1] += 1

    rows = tuple(
        StageRow(
            stage=stage,
            coverage=Fraction(per_stage_cov.get(stage, 0), total),
            accuracy=Fraction(
                per_stage_hits.get(stage, 0),
                per_stage_classified.get(stage, 0),
            ),
        )
        for stage in Stage
        if per_stage_cov.get(stage)
    )
    return StageBreakdown(
        rows=rows,
        overall_l1_coverage=Fraction(l1_cov, total),
        overall_l1_accuracy=Fraction(l1_hits, l1_cov),
        l2_tech_accuracy=Fraction(l2_tech[0], l2_tech[1]),
        l2_nontech_accuracy=Fraction(l2_nontech[0], l2_nontech[1]),
        overall_l2_coverage=Fraction(l2_cov, l2_total),
        overall_l2_accuracy=Fraction(l2_hits, l2_cov),
    )


# -- Table 7: coarse four-class comparison -----------------------------------

COARSE_CLASSES: Tuple[str, ...] = ("business", "isp", "hosting", "education")


def coarse_class_of_labels(labels: LabelSet) -> Optional[str]:
    """Map NAICSlite labels onto IPinfo's four classes (Section 5.2).

    Hosting and ISP map to themselves, the education layer 1 maps to
    education, and all other 92 categories map to "business".
    """
    if not labels:
        return None
    slugs = labels.layer2_slugs()
    if "hosting" in slugs:
        return "hosting"
    if "isp" in slugs:
        return "isp"
    if "education" in labels.layer1_slugs():
        return "education"
    return "business"


def peeringdb_coarse_class(native_category: str) -> str:
    """Map PeeringDB's six categories onto the four classes (Section 5.2):
    content -> hosting; enterprise and non-profit -> business;
    education -> education; all remaining -> ISP."""
    if native_category == "Content":
        return "hosting"
    if native_category in ("Enterprise", "Non-profit"):
        return "business"
    if native_category == "Education/Research":
        return "education"
    return "isp"


def coarse_f1(
    truth_classes: Sequence[Optional[str]],
    predicted_classes: Sequence[Optional[str]],
    positive: str,
) -> float:
    """F1 for one coarse class over parallel class sequences; ASes the
    predictor left unclassified count as negative predictions."""
    truth = [cls == positive for cls in truth_classes]
    predicted = [cls == positive for cls in predicted_classes]
    return confusion_matrix(truth, predicted).f1
