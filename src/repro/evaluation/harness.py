"""Per-experiment computation harness.

One function per paper experiment, returning plain data structures the
benchmark suite renders (and the tests assert on).  Keeping the logic here
- instead of inside the benchmarks - means every number in EXPERIMENTS.md
is produced by library code under test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.database import ASdbDataset
from ..datasources.base import DataSource, Query
from ..datasources.dnb import DunBradstreet
from ..matching import domains as domain_selection
from ..matching.domains import DomainFrequencyIndex
from ..taxonomy import LabelSet, naicslite
from ..world.organization import World
from .goldstandard import LabeledDataset
from .labeler import Labeler
from .metrics import (
    Fraction,
    coarse_class_of_labels,
    coarse_f1,
    peeringdb_coarse_class,
)

__all__ = [
    "AgreementStats",
    "figure1_agreement",
    "ConfidenceBucket",
    "figure2_dnb_confidence",
    "EntityResolutionRow",
    "table5_entity_resolution",
    "table7_coarse_f1",
    "category_accuracy_rows",
    "pairwise_precision_rows",
]


# -- Figure 1: labeler agreement by framework --------------------------------


@dataclass(frozen=True)
class AgreementStats:
    """Two-labeler agreement rates for one classification framework."""

    framework: str
    top_complete: float   # identical top-level assignments
    low_complete: float   # identical full/low-level assignments
    top_overlap: float    # >= 1 shared top-level category
    low_overlap: float    # >= 1 shared low-level category


def figure1_agreement(
    world: World, n: int = 150, seed: int = 0
) -> Tuple[AgreementStats, AgreementStats]:
    """Label ``n`` ASes with two independent labelers under NAICS and
    NAICSlite; return (naics_stats, naicslite_stats)."""
    rng = random.Random(("figure1", seed).__repr__())
    asns = rng.sample(world.asns(), min(n, len(world.asns())))
    labeler_a = Labeler("fig1-a", seed=seed)
    labeler_b = Labeler("fig1-b", seed=seed + 1)

    naics_counts = [0, 0, 0, 0]
    lite_counts = [0, 0, 0, 0]
    total = 0
    for asn in asns:
        org = world.org_of_asn(asn)
        total += 1
        # NAICS.
        codes_a = labeler_a.label_naics(org)
        codes_b = labeler_b.label_naics(org)
        sectors_a, sectors_b = codes_a.sectors(), codes_b.sectors()
        full_a, full_b = set(codes_a.codes), set(codes_b.codes)
        naics_counts[0] += sectors_a == sectors_b and bool(sectors_a)
        naics_counts[1] += full_a == full_b and bool(full_a)
        naics_counts[2] += bool(sectors_a & sectors_b)
        naics_counts[3] += bool(full_a & full_b)
        # NAICSlite.
        lite_a = labeler_a.label_naicslite(org).labels
        lite_b = labeler_b.label_naicslite(org).labels
        l1_a, l1_b = lite_a.layer1_slugs(), lite_b.layer1_slugs()
        l2_a, l2_b = lite_a.layer2_slugs(), lite_b.layer2_slugs()
        lite_counts[0] += l1_a == l1_b and bool(l1_a)
        lite_counts[1] += l2_a == l2_b and bool(l2_a)
        lite_counts[2] += bool(l1_a & l1_b)
        lite_counts[3] += bool(l2_a & l2_b)

    def _stats(name: str, counts: List[int]) -> AgreementStats:
        return AgreementStats(
            framework=name,
            top_complete=counts[0] / total,
            low_complete=counts[1] / total,
            top_overlap=counts[2] / total,
            low_overlap=counts[3] / total,
        )

    return _stats("NAICS", naics_counts), _stats("NAICSlite", lite_counts)


# -- Figure 2: D&B confidence codes -------------------------------------------


@dataclass(frozen=True)
class ConfidenceBucket:
    """Match accuracy for one D&B confidence code."""

    code: int
    accuracy: Fraction


def figure2_dnb_confidence(
    dnb: DunBradstreet,
    world: World,
    dataset: LabeledDataset,
) -> List[ConfidenceBucket]:
    """Automated D&B lookups bucketed by returned confidence code."""
    buckets: Dict[int, List[bool]] = {}
    for entry in dataset.labeled_entries():
        org = world.org_of_asn(entry.asn)
        match = dnb.lookup(
            Query(name=org.name, domain=org.domain, address=org.address)
        )
        if match is None or match.confidence is None:
            continue
        buckets.setdefault(match.confidence, []).append(
            match.entry.org_id == org.org_id
        )
    return [
        ConfidenceBucket(
            code=code,
            accuracy=Fraction(sum(results), len(results)),
        )
        for code, results in sorted(buckets.items())
    ]


# -- Table 5: automated entity resolution --------------------------------------


@dataclass(frozen=True)
class EntityResolutionRow:
    """One Table-5 row: a matching strategy's outcome distribution."""

    target: str
    algorithm: str
    match_accuracy: float   # correct / (correct + incorrect)
    correct: float          # correct / all queried
    incorrect: float
    missing: float


def _resolution_row(
    target: str, algorithm: str, outcomes: Sequence[Optional[bool]]
) -> EntityResolutionRow:
    total = len(outcomes)
    correct = sum(1 for outcome in outcomes if outcome is True)
    incorrect = sum(1 for outcome in outcomes if outcome is False)
    missing = total - correct - incorrect
    matched = correct + incorrect
    return EntityResolutionRow(
        target=target,
        algorithm=algorithm,
        match_accuracy=correct / matched if matched else 0.0,
        correct=correct / total if total else 0.0,
        incorrect=incorrect / total if total else 0.0,
        missing=missing / total if total else 0.0,
    )


def table5_entity_resolution(
    world: World,
    dataset: LabeledDataset,
    dnb: DunBradstreet,
    crunchbase,
    ipinfo,
    frequency_index: DomainFrequencyIndex,
) -> List[EntityResolutionRow]:
    """All Table-5 rows over one labeled dataset.

    Outcomes per AS are True (correct entity/domain), False (wrong), or
    None (no match).
    """
    entries = dataset.labeled_entries()

    # D&B at two confidence thresholds.
    dnb_rows: List[EntityResolutionRow] = []
    for threshold, label in ((1, "Conf >=1"), (6, "Conf >=6")):
        outcomes: List[Optional[bool]] = []
        for entry in entries:
            org = world.org_of_asn(entry.asn)
            match = dnb.lookup(
                Query(name=org.name, domain=org.domain,
                      address=org.address)
            )
            if match is None or (match.confidence or 0) < threshold:
                outcomes.append(None)
            else:
                outcomes.append(match.entry.org_id == org.org_id)
        dnb_rows.append(_resolution_row("D&B", label, outcomes))

    # Crunchbase by domain, then by tokenized name.
    cb_domain: List[Optional[bool]] = []
    cb_name: List[Optional[bool]] = []
    for entry in entries:
        org = world.org_of_asn(entry.asn)
        domain_match = (
            crunchbase.lookup(Query(domain=org.domain))
            if org.domain
            else None
        )
        cb_domain.append(
            None
            if domain_match is None
            else domain_match.entry.org_id == org.org_id
        )
        name_match = crunchbase.lookup(Query(name=org.name))
        cb_name.append(
            None
            if name_match is None
            else name_match.entry.org_id == org.org_id
        )
    cb_rows = [
        _resolution_row("Crunchbase", "Domain", cb_domain),
        _resolution_row("Crunchbase", "Name", cb_name),
    ]

    # Domain selection heuristics: random / least common / most similar.
    heuristics = {
        "Random": lambda cands, asn, as_name: (
            domain_selection.select_random(cands, seed_material=str(asn))
        ),
        "Least Common": lambda cands, asn, as_name: (
            domain_selection.select_least_common(cands, frequency_index)
        ),
        "Most Similar": lambda cands, asn, as_name: (
            domain_selection.select_most_similar(cands, as_name, world.web)
        ),
    }
    domain_rows: List[EntityResolutionRow] = []
    for label, heuristic in heuristics.items():
        outcomes = []
        for entry in entries:
            org = world.org_of_asn(entry.asn)
            contact = world.registry.contact(entry.asn)
            as_name = world.ases[entry.asn].as_name
            if org.domain is None:
                outcomes.append(None)
                continue
            chosen = heuristic(
                contact.candidate_domains, entry.asn, as_name
            )
            if chosen is None:
                outcomes.append(None)
            else:
                outcomes.append(chosen == org.domain)
        domain_rows.append(_resolution_row("Domain", label, outcomes))

    # IPinfo's published domains.
    ipinfo_outcomes: List[Optional[bool]] = []
    for entry in entries:
        org = world.org_of_asn(entry.asn)
        hint = ipinfo.domain_hint(entry.asn)
        if hint is None or org.domain is None:
            ipinfo_outcomes.append(None)
        else:
            ipinfo_outcomes.append(hint == org.domain)
    domain_rows.append(
        _resolution_row("Domain", "IPinfo", ipinfo_outcomes)
    )

    return dnb_rows + cb_rows + domain_rows


# -- Table 7: coarse F1 comparison -----------------------------------------------


def table7_coarse_f1(
    asdb_dataset: ASdbDataset,
    ipinfo,
    peeringdb,
    dataset: LabeledDataset,
) -> Dict[str, Dict[str, float]]:
    """F1 per coarse class for ASdb, IPinfo, and PeeringDB.

    Returns ``{class: {"asdb": f1, "ipinfo": f1, "peeringdb": f1,
    "n": count}}``.
    """
    truth: List[Optional[str]] = []
    asdb_pred: List[Optional[str]] = []
    ipinfo_pred: List[Optional[str]] = []
    pdb_pred: List[Optional[str]] = []
    for entry in dataset.labeled_entries():
        truth.append(coarse_class_of_labels(entry.labels))
        record = asdb_dataset.get(entry.asn)
        asdb_pred.append(
            coarse_class_of_labels(record.labels) if record else None
        )
        ipinfo_category = ipinfo.native_category(entry.asn)
        ipinfo_pred.append(ipinfo_category)
        pdb_category = peeringdb.native_category(entry.asn)
        pdb_pred.append(
            peeringdb_coarse_class(pdb_category)
            if pdb_category is not None
            else None
        )
    result: Dict[str, Dict[str, float]] = {}
    for cls in ("business", "isp", "hosting", "education"):
        result[cls] = {
            "n": sum(1 for t in truth if t == cls),
            "asdb": coarse_f1(truth, asdb_pred, cls),
            "ipinfo": coarse_f1(truth, ipinfo_pred, cls),
            "peeringdb": coarse_f1(truth, pdb_pred, cls),
        }
    return result


# -- Tables 10/11: per-category accuracy and pairwise precision --------------------


def category_accuracy_rows(
    world: World,
    dataset: LabeledDataset,
    classifier_of_asn,
) -> Dict[str, Fraction]:
    """Per-layer-1 accuracy/coverage of any AS -> LabelSet function.

    ``classifier_of_asn(asn)`` returns a LabelSet (empty = uncovered).
    Returns {layer1_slug: Fraction(correct, covered)} keyed by the
    *expert* layer 1 category.
    """
    hits: Dict[str, int] = {}
    totals: Dict[str, int] = {}
    for entry in dataset.labeled_entries():
        labels = classifier_of_asn(entry.asn)
        if not labels:
            continue
        hit = labels.overlaps_layer1(entry.labels)
        for slug in entry.labels.layer1_slugs():
            totals[slug] = totals.get(slug, 0) + 1
            hits[slug] = hits.get(slug, 0) + hit
    return {
        slug: Fraction(hits.get(slug, 0), totals[slug])
        for slug in sorted(totals)
    }


def pairwise_precision_rows(
    world: World,
    dataset: LabeledDataset,
    sources: Dict[str, DataSource],
) -> Dict[Tuple[str, ...], Fraction]:
    """Table-11 pairwise agreement: for each source combination, precision
    of the *intersection* of their categories over ASes where all members
    of the combination matched and pairwise agree at layer 1."""
    names = sorted(sources)
    combos: List[Tuple[str, ...]] = [(name,) for name in names]
    for index, first in enumerate(names):
        for second in names[index + 1:]:
            combos.append((first, second))
    if len(names) >= 3:
        combos.append(tuple(names))

    results: Dict[Tuple[str, ...], List[bool]] = {
        combo: [] for combo in combos
    }
    for entry in dataset.labeled_entries():
        org = world.org_of_asn(entry.asn)
        matched: Dict[str, LabelSet] = {}
        for name in names:
            try:
                match = sources[name].lookup_by_org(org.org_id)
            except NotImplementedError:
                # Source not indexable by organization: it simply never
                # participates in an agreement combination.
                continue
            if match is not None and match.labels:
                matched[name] = match.labels
        for combo in combos:
            if not all(name in matched for name in combo):
                continue
            combined = matched[combo[0]]
            agreed = True
            for name in combo[1:]:
                if not combined.overlaps_layer1(matched[name]):
                    agreed = False
                    break
                combined = combined.union(matched[name])
            if not agreed:
                continue
            if len(combo) > 1:
                shared = set.intersection(
                    *(matched[name].layer1_slugs() for name in combo)
                )
                correct = bool(shared & entry.labels.layer1_slugs())
            else:
                correct = combined.overlaps_layer1(entry.labels)
            results[combo].append(correct)
    return {
        combo: Fraction(sum(outcomes), len(outcomes))
        for combo, outcomes in results.items()
    }
