"""Labeled ground-truth datasets (Table 2).

Four datasets drive the paper's evaluation:

* **Gold Standard** - 150 random ASes, each independently labeled by two
  researchers with pair resolution; evaluates external data sources and
  ASdb's design iterations.
* **Uniform Gold Standard** - 320 ASes uniformly sub-sampled across all 16
  non-residual NAICSlite layer 1 categories; evaluates the long tail.
* **ML training set** - 150 random + 75 D&B-labeled hosting ASes (built in
  :mod:`repro.ml.training`).
* **New test set** - 150 fresh random ASes for the deployment-fairness
  evaluation (Section 5.2).

A couple of Gold Standard ASes end up unlabelable (the paper could label
148/150, with 142 carrying layer 2 labels) - reproduced via the labeling
simulation, not hard-coded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..taxonomy import LabelSet, naicslite
from ..world.organization import World
from .labeler import Labeler, resolve_pair

__all__ = [
    "LabeledAS",
    "LabeledDataset",
    "build_gold_standard",
    "build_uniform_gold_standard",
    "build_test_set",
]


@dataclass(frozen=True)
class LabeledAS:
    """One labeled AS: the dataset's ground truth for evaluation.

    Attributes:
        asn: The AS number.
        labels: The resolved expert labels (may be layer 1 only, or empty
            for the rare unlabelable AS).
    """

    asn: int
    labels: LabelSet

    @property
    def labeled(self) -> bool:
        """Whether the researchers could assign any category."""
        return bool(self.labels)

    @property
    def has_layer2(self) -> bool:
        """Whether a layer 2 category was assigned."""
        return self.labels.has_layer2

    @property
    def is_tech(self) -> bool:
        """Tech/non-tech split used throughout Section 3."""
        return self.labels.is_tech


@dataclass(frozen=True)
class LabeledDataset:
    """A named set of labeled ASes."""

    name: str
    entries: Tuple[LabeledAS, ...]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def asns(self) -> List[int]:
        """All ASNs in the dataset."""
        return [entry.asn for entry in self.entries]

    def labeled_entries(self) -> List[LabeledAS]:
        """Entries the researchers could assign a category to."""
        return [entry for entry in self.entries if entry.labeled]

    def layer2_entries(self) -> List[LabeledAS]:
        """Entries carrying a layer 2 category."""
        return [entry for entry in self.entries if entry.has_layer2]


#: Probability the pair simply cannot identify/classify the organization
#: at all (2 of 150 Gold Standard ASes).
_UNLABELABLE = 0.013


def _label_asns(
    world: World, asns: Sequence[int], name: str, seed: int
) -> LabeledDataset:
    """Run the two-labeler + pair-resolution protocol over ``asns``."""
    rng = random.Random((name, seed).__repr__())
    labelers = [Labeler(f"researcher-{index}", seed=seed)
                for index in range(5)]
    entries: List[LabeledAS] = []
    for asn in asns:
        org = world.org_of_asn(asn)
        if rng.random() < _UNLABELABLE:
            entries.append(LabeledAS(asn=asn, labels=LabelSet()))
            continue
        first, second = rng.sample(labelers, 2)
        resolved = resolve_pair(
            first.label_naicslite(org),
            second.label_naicslite(org),
            org,
            rng,
        )
        entries.append(LabeledAS(asn=asn, labels=resolved))
    return LabeledDataset(name=name, entries=tuple(entries))


def build_gold_standard(
    world: World, size: int = 150, seed: int = 0
) -> LabeledDataset:
    """150 randomly selected ASes, expert-labeled (Table 2 row 1)."""
    rng = random.Random(("gold", seed).__repr__())
    asns = rng.sample(world.asns(), min(size, len(world.asns())))
    return _label_asns(world, sorted(asns), "gold_standard", seed)


def build_test_set(
    world: World,
    size: int = 150,
    seed: int = 1,
    exclude: Sequence[int] = (),
) -> LabeledDataset:
    """A fresh random sample, disjoint from ``exclude`` (Table 2 row 4)."""
    rng = random.Random(("test", seed).__repr__())
    excluded = set(exclude)
    pool = [asn for asn in world.asns() if asn not in excluded]
    asns = rng.sample(pool, min(size, len(pool)))
    return _label_asns(world, sorted(asns), "test_set", seed)


def build_uniform_gold_standard(
    world: World,
    per_category: int = 20,
    seed: int = 2,
) -> LabeledDataset:
    """ASes uniformly sub-sampled across the 16 non-residual layer 1
    categories (Table 2 row 2; 320 ASes at 20 per category).

    Categories with fewer available ASes contribute what they have.
    """
    rng = random.Random(("uniform", seed).__repr__())
    by_layer1: Dict[str, List[int]] = {
        category.slug: [] for category in naicslite.sampleable_layer1()
    }
    for asn in world.asns():
        truth = world.truth(asn)
        for slug in truth.layer1_slugs():
            if slug in by_layer1:
                by_layer1[slug].append(asn)
    chosen: List[int] = []
    seen: Set[int] = set()
    for slug in sorted(by_layer1):
        pool = [asn for asn in by_layer1[slug] if asn not in seen]
        take = rng.sample(pool, min(per_category, len(pool)))
        chosen.extend(take)
        seen.update(take)
    return _label_asns(
        world, sorted(chosen), "uniform_gold_standard", seed
    )
