"""Simulated expert labelers (Section 3.2, Figure 1).

Five computer-networking researchers labeled the Gold Standard: each AS
was independently classified by two researchers, who then met in pairs to
resolve discrepancies.  The paper found that the *framework* drives
agreement: NAICS' >2,000 redundant codes halve labeler agreement relative
to NAICSlite.

A :class:`Labeler` sees the ground truth but renders it imperfectly:

* **NAICS mode** - picks one of the several plausible 6-digit codes for
  the organization's category (the paper's AS56885 example: one labeler
  chose 335911 Storage Battery Manufacturing, the other 334416 Capacitor/
  Resistor/Coil Manufacturing - semantically agreeing, zero code overlap);
* **NAICSlite mode** - picks the layer 2 slug directly, with a small
  subjectivity rate toward a confusable sibling (13% of Gold Standard ASes
  had disagreeing-yet-accurate labels, Section 3.4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..taxonomy import LabelSet, naics, translation
from ..world.calibration import CONFUSION_L1, CONFUSION_L2
from ..world.organization import Organization

__all__ = ["NaicsJudgment", "NaicsliteJudgment", "Labeler"]

#: Probability a labeler's subjective perception lands on a confusable
#: sibling category instead of the primary one.
_SUBJECTIVITY_NAICSLITE = 0.12
_SUBJECTIVITY_NAICS = 0.15
#: Probability the subjective reading even crosses into a different
#: layer 1 category (e.g. an online-learning service read as media vs
#: education vs information technology - Section 3.4's AS32169).
_CROSS_LAYER1 = 0.05
#: Preference for the most canonical NAICS code of a category.  NAICS'
#: redundancy means several codes fit; labelers still converge on the
#: best-known one about this often.
_CANONICAL_CODE_PREFERENCE = 0.60


@dataclass(frozen=True)
class NaicsJudgment:
    """One labeler's NAICS verdict for one organization."""

    codes: Tuple[str, ...]

    def sectors(self) -> Set[str]:
        """The 2-digit sector prefixes of the chosen codes."""
        return {code[:2] for code in self.codes}


@dataclass(frozen=True)
class NaicsliteJudgment:
    """One labeler's NAICSlite verdict for one organization."""

    labels: LabelSet


class Labeler:
    """A simulated expert researcher.

    Args:
        name: Labeler identity (folded into per-judgment determinism).
        seed: Base seed.
    """

    def __init__(self, name: str, seed: int = 0) -> None:
        self.name = name
        self._seed = seed

    def _rng(self, org: Organization) -> random.Random:
        return random.Random((self.name, self._seed, org.org_id).__repr__())

    def _perceived_slug(
        self, rng: random.Random, org: Organization, subjectivity: float
    ) -> Optional[str]:
        slugs = sorted(org.truth.layer2_slugs())
        if not slugs:
            return None
        # Multi-service orgs: labelers latch onto different services.
        slug = rng.choice(slugs)
        if rng.random() < subjectivity:
            if rng.random() < _CROSS_LAYER1:
                from ..taxonomy import naicslite

                layer1 = naicslite.layer2_by_name(slug).layer1
                wrong_l1 = rng.choice(
                    CONFUSION_L1.get(layer1.slug, ("service",))
                )
                candidates = naicslite.layer1_by_slug(wrong_l1).layer2
                return rng.choice([sub.slug for sub in candidates])
            partners = CONFUSION_L2.get(slug)
            if partners:
                slug = rng.choice(partners)
        return slug

    def label_naics(self, org: Organization) -> NaicsJudgment:
        """Label with raw NAICS codes.

        Several 6-digit codes plausibly describe most organizations; the
        labeler picks one (sometimes two) according to personal reading.
        """
        rng = self._rng(org)
        slug = self._perceived_slug(rng, org, _SUBJECTIVITY_NAICS)
        if slug is None:
            return NaicsJudgment(codes=())
        candidates = translation.naics_candidates_for_layer2(slug)
        if not candidates:
            return NaicsJudgment(codes=())
        if rng.random() < _CANONICAL_CODE_PREFERENCE:
            codes = [candidates[0]]  # the best-known code for the category
        else:
            codes = [rng.choice(candidates)]
        if rng.random() < 0.15 and len(candidates) > 1:
            second = rng.choice(candidates)
            if second not in codes:
                codes.append(second)
        return NaicsJudgment(codes=tuple(codes))

    def label_naicslite(self, org: Organization) -> NaicsliteJudgment:
        """Label with NAICSlite layer 2 categories."""
        rng = self._rng(org)
        slug = self._perceived_slug(rng, org, _SUBJECTIVITY_NAICSLITE)
        if slug is None:
            return NaicsliteJudgment(labels=LabelSet())
        slugs = {slug}
        # Multi-service orgs occasionally get both services recorded.
        extra = sorted(org.truth.layer2_slugs() - slugs)
        if extra and rng.random() < 0.35:
            slugs.add(rng.choice(extra))
        return NaicsliteJudgment(labels=LabelSet.from_layer2_slugs(slugs))


def resolve_pair(
    first: NaicsliteJudgment,
    second: NaicsliteJudgment,
    org: Organization,
    rng: random.Random,
) -> LabelSet:
    """The pair-resolution meeting (Section 3.2).

    Researchers reconcile their labels against the organization's actual
    materials; the outcome keeps every label both can verify (the truth
    labels either proposed) and drops unverifiable ones.  When neither
    proposed anything verifiable the meeting converges on the primary
    truth category - occasionally only at layer 1 (6 of 148 Gold Standard
    ASes carry no layer 2 label, Table 8's footnote).
    """
    proposed = first.labels.union(second.labels)
    verified = LabelSet(
        label
        for label in proposed
        if label.layer2 in org.truth.layer2_slugs()
    )
    if not verified:
        primary = sorted(org.truth.layer2_slugs())
        if not primary:
            return LabelSet()
        if rng.random() < 0.04:
            # The pair can only agree on the top-level category.
            return LabelSet.from_layer2_slugs([primary[0]]).restrict_to_layer1()
        return LabelSet.from_layer2_slugs([primary[0]])
    return verified
