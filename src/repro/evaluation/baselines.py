"""Prior-work baselines (Section 2).

* **Baumann & Fabian [27]** - keyword analysis of WHOIS data into 10
  categories (communication, construction, consulting, education,
  entertainment, finance, healthcare, transport, travel, utilities) with
  57% coverage, augmented by matching AS names against SEC records for
  U.S. publicly traded companies (dropping ambiguous multi-matches, which
  limited the augmentation to a few hundred ASes).
* **CAIDA AS Classification** - implemented as a dataset simulator in
  :mod:`repro.datasources.caida`; the evaluation helper here reproduces
  the paper's 150-AS spot check (72% coverage; 58/75/0% per-class
  accuracy).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datasources.caida import (
    CAIDA_CLASSES,
    CaidaASClassification,
    caida_class_for_truth,
)
from ..taxonomy import Label, LabelSet
from ..world.names import tokenize_name
from ..world.organization import World
from .goldstandard import LabeledDataset

__all__ = [
    "BF_CATEGORIES",
    "BaumannFabianClassifier",
    "CaidaEvaluation",
    "evaluate_caida",
]

#: Baumann & Fabian's 10 categories -> NAICSlite translation.
BF_CATEGORIES: Dict[str, LabelSet] = {
    "communication": LabelSet.from_layer2_slugs(
        ["isp", "phone_provider", "radio_tv"]
    ),
    "construction": LabelSet([Label(layer1="construction")]),
    "consulting": LabelSet.from_layer2_slugs(
        ["consulting", "tech_consulting"]
    ),
    "education": LabelSet([Label(layer1="education")]),
    "entertainment": LabelSet([Label(layer1="entertainment")]),
    "finance": LabelSet([Label(layer1="finance")]),
    "healthcare": LabelSet([Label(layer1="healthcare")]),
    "transport": LabelSet([Label(layer1="freight")]),
    "travel": LabelSet([Label(layer1="travel")]),
    "utilities": LabelSet([Label(layer1="utilities")]),
}

#: WHOIS-name/description keywords per B&F category.
_BF_KEYWORDS: Dict[str, Tuple[str, ...]] = {
    "communication": ("telecom", "communications", "com", "net", "wave",
                      "link", "broadband", "wireless", "mobile", "phone",
                      "radio", "tv", "broadcast", "stream", "band",
                      "connect", "path", "line"),
    "construction": ("construction", "building", "builders", "estate",
                     "property", "realty", "housing"),
    "consulting": ("consulting", "consultants", "advisory", "solutions",
                   "partners", "law", "legal"),
    "education": ("university", "college", "school", "institute",
                  "academy", "polytechnic", "education", "campus"),
    "entertainment": ("entertainment", "casino", "museum", "sports",
                      "theater", "games", "arcade", "zoo", "park"),
    "finance": ("bank", "trust", "savings", "financial", "insurance",
                "capital", "credit", "invest", "fund", "bancorp",
                "mutual"),
    "healthcare": ("hospital", "medical", "health", "clinic", "care",
                   "pharma", "nursing"),
    "transport": ("freight", "logistics", "shipping", "trucking",
                  "transport", "cargo", "courier", "postal", "transit"),
    "travel": ("hotel", "travel", "resort", "tours", "airline",
               "cruise", "inn"),
    "utilities": ("power", "electric", "energy", "gas", "water",
                  "utility", "utilities", "grid", "sewage"),
}


class BaumannFabianClassifier:
    """The keyword + SEC-augmentation baseline over a synthetic world.

    The keyword stage scans the WHOIS-extracted name (and description)
    for category keywords; the SEC stage looks up the AS name in a
    simulated registry of publicly traded U.S. companies and keeps only
    unambiguous single matches, as the original did.
    """

    def __init__(self, world: World, seed: int = 0) -> None:
        self._world = world
        self._sec_index = self._build_sec_index(
            random.Random(("sec", seed).__repr__())
        )

    def _build_sec_index(self, rng: random.Random) -> Dict[str, LabelSet]:
        """A registry of "publicly traded U.S." organizations: name token
        key -> truth labels.  Only ~15% of US orgs are public."""
        index: Dict[str, List[LabelSet]] = {}
        for org in self._world.iter_organizations():
            if org.country != "US" or rng.random() > 0.15:
                continue
            key = " ".join(sorted(set(tokenize_name(org.name))))
            index.setdefault(key, []).append(org.truth)
        # Drop ambiguous multi-matches, as Baumann & Fabian did.
        return {
            key: matches[0]
            for key, matches in index.items()
            if len(matches) == 1
        }

    @property
    def sec_index_size(self) -> int:
        """Number of unambiguous SEC entries (paper: 469 ASes reached)."""
        return len(self._sec_index)

    def classify_keywords(self, text: str) -> Optional[str]:
        """Keyword stage: the B&F category with the most keyword hits."""
        tokens = set(tokenize_name(text)) | set(text.lower().split())
        best: Optional[str] = None
        best_hits = 0
        for category in sorted(_BF_KEYWORDS):
            hits = sum(
                1 for keyword in _BF_KEYWORDS[category]
                if keyword in tokens
            )
            if hits > best_hits:
                best, best_hits = category, hits
        return best

    def classify(self, asn: int) -> Optional[LabelSet]:
        """Full baseline: keyword stage, then SEC augmentation."""
        contact = self._world.registry.contact(asn)
        text = contact.name
        parsed = self._world.registry.parsed(asn)
        if parsed.description:
            text = f"{text} {parsed.description}"
        category = self.classify_keywords(text)
        if category is not None:
            return BF_CATEGORIES[category]
        key = " ".join(sorted(set(tokenize_name(contact.name))))
        sec_truth = self._sec_index.get(key)
        if sec_truth is not None:
            return sec_truth.restrict_to_layer1()
        return None

    def coverage(self, asns: Sequence[int]) -> float:
        """Fraction of ``asns`` the baseline can classify (paper: 57%)."""
        covered = sum(1 for asn in asns if self.classify(asn) is not None)
        return covered / len(asns) if asns else 0.0


@dataclass(frozen=True)
class CaidaEvaluation:
    """The Section-2 CAIDA spot check: coverage + per-class accuracy."""

    coverage: float
    per_class_accuracy: Dict[str, float]


def evaluate_caida(
    caida: CaidaASClassification,
    world: World,
    dataset: LabeledDataset,
) -> CaidaEvaluation:
    """Reproduce the paper's manual 150-AS CAIDA evaluation."""
    covered = 0
    hits: Dict[str, int] = {cls: 0 for cls in CAIDA_CLASSES}
    totals: Dict[str, int] = {cls: 0 for cls in CAIDA_CLASSES}
    entries = dataset.labeled_entries()
    for entry in entries:
        label = caida.classify(entry.asn)
        if label is None:
            continue
        covered += 1
        true_class = caida_class_for_truth(entry.labels)
        totals[true_class] += 1
        if label == true_class:
            hits[true_class] += 1
    return CaidaEvaluation(
        coverage=covered / len(entries) if entries else 0.0,
        per_class_accuracy={
            cls: (hits[cls] / totals[cls] if totals[cls] else 0.0)
            for cls in CAIDA_CLASSES
        },
    )
