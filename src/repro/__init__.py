"""repro: a reproduction of "ASdb: A System for Classifying Owners of
Autonomous Systems" (IMC 2021).

ASdb classifies the organizations that own Autonomous Systems into 17
NAICSlite industry categories and 95 sub-categories by combining RIR WHOIS
data, business databases, a website classifier, networking databases, and
an in-house web-scraping + TF-IDF + SGD machine-learning pipeline.

Because the original system depends on proprietary data (Dun & Bradstreet,
Zvelo, the live web, Amazon Mechanical Turk), this reproduction runs the
real pipeline over a *calibrated synthetic world*: see DESIGN.md for the
substitution table and repro.world.calibration for the paper-measured
rates.

Quickstart::

    from repro import system, world

    w = world.generate_world(world.WorldConfig(n_orgs=300, seed=7))
    built = system.build_asdb(w)
    dataset = built.asdb.classify_all()
    print(f"coverage: {dataset.coverage():.0%}")

Package map:

=================  ========================================================
``repro.taxonomy``     NAICS / NAICSlite category systems and translation
``repro.whois``        Per-RIR WHOIS rendering, parsing, field extraction
``repro.world``        Synthetic ground-truth universe + calibration
``repro.web``          Synthetic websites, languages, translation, scraper
``repro.datasources``  D&B / Crunchbase / ZoomInfo / Clearbit / Zvelo /
                       PeeringDB / IPinfo / CAIDA simulators
``repro.matching``     Domain selection heuristics + entity resolution
``repro.ml``           CountVectorizer / TF-IDF / SGD / Figure-3 pipeline
``repro.core``         The ASdb system, consensus, cache, dataset, upkeep
``repro.crowd``        Amazon Mechanical Turk simulation (Appendix B)
``repro.evaluation``   Gold standards, metrics, baselines, harness
``repro.scan``         Synthetic LZR-style scan for the Telnet analysis
``repro.reporting``    Table / figure renderers for the benchmarks
``repro.obs``          Metrics, per-AS tracing, source instrumentation

=================  ========================================================
"""

from . import core, datasources, matching, ml, obs, system, taxonomy, web, whois, world
from .core import ASdb, ASdbDataset, ASdbRecord, Stage
from .system import BuiltSystem, SystemConfig, build_asdb
from .taxonomy import Label, LabelSet
from .world import WorldConfig, generate_world

__version__ = "1.0.0"

__all__ = [
    "ASdb",
    "ASdbDataset",
    "ASdbRecord",
    "Stage",
    "Label",
    "LabelSet",
    "WorldConfig",
    "generate_world",
    "SystemConfig",
    "BuiltSystem",
    "build_asdb",
    "taxonomy",
    "whois",
    "world",
    "web",
    "datasources",
    "matching",
    "ml",
    "obs",
    "core",
    "system",
    "__version__",
]
