"""String similarity primitives for entity resolution.

"Most similar domain" selection compares a website's homepage title to the
registered AS name (Section 3.3); name-keyed data-source matching compares
organization names.  We use token-set Jaccard blended with a normalized
longest-common-subsequence ratio - robust to word order, legal suffixes,
and the concatenations common in AS handles ("FIBERLINK-AS" vs "FiberLink
Communications").
"""

from __future__ import annotations

from typing import Set

from ..world.names import token_set
from .kernels import joined_form, lcs_ratio

__all__ = ["jaccard", "lcs_ratio", "name_similarity"]


def jaccard(a: Set[str], b: Set[str]) -> float:
    """Jaccard similarity of two token sets (1.0 when both are empty)."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


def name_similarity(a: str, b: str) -> float:
    """Blended similarity of two organization/AS names, in [0, 1].

    Token-set Jaccard catches reordered words; LCS on the joined
    lowercase forms catches concatenations and partial stems.  Token
    sets and joined forms are interned per name and the LCS runs on the
    trimmed kernel (:mod:`repro.matching.kernels`); values are
    bit-identical to the pre-kernel implementation.
    """
    token_score = jaccard(token_set(a), token_set(b))
    sequence_score = lcs_ratio(joined_form(a), joined_form(b))
    return 0.5 * token_score + 0.5 * sequence_score
