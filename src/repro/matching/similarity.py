"""String similarity primitives for entity resolution.

"Most similar domain" selection compares a website's homepage title to the
registered AS name (Section 3.3); name-keyed data-source matching compares
organization names.  We use token-set Jaccard blended with a normalized
longest-common-subsequence ratio - robust to word order, legal suffixes,
and the concatenations common in AS handles ("FIBERLINK-AS" vs "FiberLink
Communications").
"""

from __future__ import annotations

from typing import List, Sequence, Set

from ..world.names import tokenize_name

__all__ = ["jaccard", "lcs_ratio", "name_similarity"]


def jaccard(a: Set[str], b: Set[str]) -> float:
    """Jaccard similarity of two token sets (1.0 when both are empty)."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


def lcs_ratio(a: str, b: str) -> float:
    """Longest-common-subsequence length over max length, in [0, 1]."""
    if not a or not b:
        return 0.0
    # Classic O(len(a) * len(b)) DP with two rows.
    previous = [0] * (len(b) + 1)
    for char_a in a:
        current = [0]
        for index, char_b in enumerate(b):
            if char_a == char_b:
                current.append(previous[index] + 1)
            else:
                current.append(max(previous[index + 1], current[-1]))
        previous = current
    return previous[-1] / max(len(a), len(b))


def name_similarity(a: str, b: str) -> float:
    """Blended similarity of two organization/AS names, in [0, 1].

    Token-set Jaccard catches reordered words; LCS on the joined
    lowercase forms catches concatenations and partial stems.
    """
    tokens_a = set(tokenize_name(a))
    tokens_b = set(tokenize_name(b))
    token_score = jaccard(tokens_a, tokens_b)
    joined_a = "".join(sorted(tokens_a)) or a.lower().replace(" ", "")
    joined_b = "".join(sorted(tokens_b)) or b.lower().replace(" ", "")
    sequence_score = lcs_ratio(joined_a, joined_b)
    return 0.5 * token_score + 0.5 * sequence_score
