"""Organization-domain identification (Section 3.3 + Figure 4 step 2).

RIRs don't directly publish an AS-owning organization's domain, but the
correct domain usually hides among abuse-contact emails.  ASdb pools
candidate domains from WHOIS and ASN-keyed sources, then:

1. removes a hand-curated top-10 list of third-party mail providers;
2. if at least one candidate appears in fewer than 100 ASes, drops the
   candidates that appear in >= 100 ASes ("least common" filtering -
   eliminating, e.g., a big ISP's domain leaking into customer records);
3. picks the survivor whose homepage title is most similar to the AS name
   ("most similar" selection, 91% accuracy in Table 5).

All three strategies of Table 5 (random / least common / most similar) are
implemented so the entity-resolution bench can compare them.
"""

from __future__ import annotations

import random
import zlib
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..web.site import WebUniverse
from ..world.calibration import MATCHING
from .kernels import KernelStats, score_candidates

__all__ = [
    "DomainFrequencyIndex",
    "select_random",
    "select_least_common",
    "select_most_similar",
    "choose_domain",
]


class DomainFrequencyIndex:
    """How many ASes each candidate domain appears in.

    Built once over the whole registry; used by the "least common" filter
    (Figure 4 step 3: drop domains appearing in >= 100 ASes when a rarer
    alternative exists).
    """

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    @classmethod
    def from_candidates(
        cls, per_as_candidates: Iterable[Sequence[str]]
    ) -> "DomainFrequencyIndex":
        """Count each domain once per AS it appears in."""
        index = cls()
        for candidates in per_as_candidates:
            for domain in set(candidates):
                index._counts[domain] += 1
        return index

    def count(self, domain: str) -> int:
        """Number of ASes the domain appears in."""
        return self._counts[domain]

    def is_common(self, domain: str, threshold: Optional[int] = None) -> bool:
        """Whether the domain exceeds the common-domain threshold."""
        limit = (
            threshold
            if threshold is not None
            else MATCHING.common_domain_threshold
        )
        return self._counts[domain] >= limit


def _strip_email_providers(candidates: Sequence[str]) -> List[str]:
    providers = set(MATCHING.email_domain_top10)
    return [domain for domain in candidates if domain not in providers]


def select_random(
    candidates: Sequence[str], seed_material: str = ""
) -> Optional[str]:
    """Baseline: pick a candidate uniformly (deterministic per AS)."""
    pool = _strip_email_providers(candidates)
    if not pool:
        return None
    rng = random.Random(zlib.crc32(f"domain|{seed_material}".encode()))
    return rng.choice(sorted(set(pool)))


def select_least_common(
    candidates: Sequence[str], index: DomainFrequencyIndex
) -> Optional[str]:
    """Pick the candidate appearing in the fewest WHOIS records."""
    pool = _strip_email_providers(candidates)
    if not pool:
        return None
    return min(sorted(set(pool)), key=index.count)


def select_most_similar(
    candidates: Sequence[str],
    as_name: str,
    web: WebUniverse,
    stats: Optional[KernelStats] = None,
) -> Optional[str]:
    """Pick the candidate whose homepage title best matches the AS name.

    For unreachable sites the domain itself is compared instead, exactly
    as Table 5 describes.  The AS name is tokenized once for the whole
    selection and scored through the batch kernel
    (:func:`~repro.matching.kernels.score_candidates`), whose exact
    upper-bound prune preserves the first-max-wins tie-break; ``stats``
    (when given) accumulates computed/pruned candidate counts.
    """
    pool = _strip_email_providers(candidates)
    if not pool:
        return None
    ordered = sorted(set(pool))
    references = []
    for domain in ordered:
        title = web.homepage_title(domain)
        references.append(title if title is not None else domain)
    best_index, _ = score_candidates(as_name, references, stats=stats)
    return ordered[best_index]


def choose_domain(
    candidates: Sequence[str],
    as_name: str,
    web: WebUniverse,
    index: Optional[DomainFrequencyIndex] = None,
    stats: Optional[KernelStats] = None,
) -> Optional[str]:
    """The full Figure-4 domain-extraction algorithm.

    Pool -> strip mail providers -> least-common filtering (when a rare
    candidate exists) -> most-similar selection.
    """
    pool = _strip_email_providers(candidates)
    if not pool:
        return None
    if index is not None:
        rare = [domain for domain in pool if not index.is_common(domain)]
        if rare:
            pool = rare
    return select_most_similar(pool, as_name, web, stats=stats)
