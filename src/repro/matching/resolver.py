"""Entity resolution: from WHOIS contact data to data-source matches.

Implements the middle of Figure 4: pool candidate domains (WHOIS + the
ASN-keyed sources' hints), choose the most likely one, then match into the
identifier-keyed external sources.  To reduce entity disagreement, matches
whose returned domain contradicts the chosen domain are rejected
(Section 5.1), and D&B matches below a confidence threshold are dropped
(Figure 2 shows accuracy collapses below code 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..datasources.base import DataSource, Query, SourceMatch
from ..web.site import WebUniverse
from ..whois.extraction import ExtractedContact
from .domains import DomainFrequencyIndex, choose_domain

__all__ = ["ResolvedSources", "EntityResolver"]

#: D&B confidence codes below this are discarded (Table 5: thresholding at
#: 6 trades 8 points of coverage for 7 points of matching accuracy).
DEFAULT_DNB_CONFIDENCE_THRESHOLD = 6


@dataclass(frozen=True)
class ResolvedSources:
    """Everything entity resolution produced for one AS.

    Attributes:
        asn: The AS.
        chosen_domain: The "most likely domain" (Figure 4), or None.
        matches: Accepted matches keyed by source name.
        rejected: Source names whose match was rejected (low confidence or
            domain contradiction) - kept for evaluation breakdowns.
    """

    asn: int
    chosen_domain: Optional[str]
    matches: Dict[str, SourceMatch] = field(default_factory=dict)
    rejected: Tuple[str, ...] = ()


class EntityResolver:
    """Figure-4 stage 2+3: domain choice and data-source matching.

    Args:
        web: The web universe (homepage titles feed "most similar"
            selection).
        frequency_index: Per-domain AS counts for common-domain filtering.
        sources: Identifier-keyed sources to match into (D&B, Crunchbase,
            Zvelo in the deployed system).
        dnb_confidence_threshold: Minimum accepted D&B confidence code.
        reject_domain_mismatch: Drop matches whose entry domain disagrees
            with the chosen domain (ablation knob).
    """

    def __init__(
        self,
        web: WebUniverse,
        frequency_index: DomainFrequencyIndex,
        sources: Sequence[DataSource],
        dnb_confidence_threshold: int = DEFAULT_DNB_CONFIDENCE_THRESHOLD,
        reject_domain_mismatch: bool = True,
    ) -> None:
        self._web = web
        self._index = frequency_index
        self._sources = list(sources)
        self._dnb_threshold = dnb_confidence_threshold
        self._reject_mismatch = reject_domain_mismatch

    def choose_domain(
        self,
        contact: ExtractedContact,
        as_name: str,
        hint_domains: Sequence[str] = (),
    ) -> Optional[str]:
        """Pool WHOIS candidates with ASN-source hints; run the Figure-4
        domain-extraction algorithm."""
        pool: List[str] = list(contact.candidate_domains)
        for hint in hint_domains:
            if hint and hint not in pool:
                pool.append(hint)
        return choose_domain(pool, as_name, self._web, self._index)

    def resolve(
        self,
        contact: ExtractedContact,
        as_name: str,
        hint_domains: Sequence[str] = (),
    ) -> ResolvedSources:
        """Choose a domain, then match into every configured source."""
        domain = self.choose_domain(contact, as_name, hint_domains)
        query = Query(
            name=contact.name,
            domain=domain,
            address=contact.address,
            phone=contact.phone,
            asn=contact.asn,
        )
        matches: Dict[str, SourceMatch] = {}
        rejected: List[str] = []
        for source in self._sources:
            match = source.lookup(query)
            if match is None:
                continue
            if not self._accept(match, domain):
                rejected.append(source.name)
                continue
            matches[source.name] = match
        return ResolvedSources(
            asn=contact.asn,
            chosen_domain=domain,
            matches=matches,
            rejected=tuple(rejected),
        )

    def _accept(self, match: SourceMatch, domain: Optional[str]) -> bool:
        if match.source == "dnb" and match.confidence is not None:
            if match.confidence < self._dnb_threshold:
                return False
        if (
            self._reject_mismatch
            and domain is not None
            and match.entry.domain is not None
            and match.entry.domain != domain
        ):
            # The source believes this organization lives at a different
            # domain: likely an entity disagreement (Section 3.5).
            return False
        return True
