"""Entity resolution: from WHOIS contact data to data-source matches.

Implements the middle of Figure 4: pool candidate domains (WHOIS + the
ASN-keyed sources' hints), choose the most likely one, then match into the
identifier-keyed external sources.  To reduce entity disagreement, matches
whose returned domain contradicts the chosen domain are rejected
(Section 5.1), and D&B matches below a confidence threshold are dropped
(Figure 2 shows accuracy collapses below code 6).

The two halves are exposed separately (:meth:`EntityResolver.choose_domain`
and :meth:`EntityResolver.match_sources`) so the pipeline can time and
trace them as the distinct Figure-4 stages they are;
:meth:`EntityResolver.resolve` remains the one-call convenience.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..datasources.base import DataSource, Query, SourceMatch
from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..web.site import WebUniverse
from ..whois.extraction import ExtractedContact
from .domains import DomainFrequencyIndex, choose_domain
from .kernels import KernelStats

__all__ = ["ResolvedSources", "EntityResolver"]

#: D&B confidence codes below this are discarded (Table 5: thresholding at
#: 6 trades 8 points of coverage for 7 points of matching accuracy).
DEFAULT_DNB_CONFIDENCE_THRESHOLD = 6

#: Rejection reason slugs (also the ``outcome`` metric label values).
REASON_LOW_CONFIDENCE = "low_confidence"
REASON_DOMAIN_MISMATCH = "domain_mismatch"


@dataclass(frozen=True)
class ResolvedSources:
    """Everything entity resolution produced for one AS.

    Attributes:
        asn: The AS.
        chosen_domain: The "most likely domain" (Figure 4), or None.
        matches: Accepted matches keyed by source name.
        rejected: Source names whose match was rejected (low confidence or
            domain contradiction) - kept for evaluation breakdowns.
        rejected_reasons: Source name -> why its match was rejected
            (``low_confidence`` or ``domain_mismatch``).
        degraded: Sources that could not answer at all (outage, retry
            exhaustion, breaker open) — only populated when the sources
            are wrapped by the resilience layer.
    """

    asn: int
    chosen_domain: Optional[str]
    matches: Dict[str, SourceMatch] = field(default_factory=dict)
    rejected: Tuple[str, ...] = ()
    rejected_reasons: Dict[str, str] = field(default_factory=dict)
    degraded: Tuple[str, ...] = ()


class EntityResolver:
    """Figure-4 stage 2+3: domain choice and data-source matching.

    Args:
        web: The web universe (homepage titles feed "most similar"
            selection).
        frequency_index: Per-domain AS counts for common-domain filtering.
        sources: Identifier-keyed sources to match into (D&B, Crunchbase,
            Zvelo in the deployed system).
        dnb_confidence_threshold: Minimum accepted D&B confidence code.
        reject_domain_mismatch: Drop matches whose entry domain disagrees
            with the chosen domain (ablation knob).
        metrics: Optional metrics registry; emits domain-choice latency
            and per-source accept/reject decision counters.
    """

    def __init__(
        self,
        web: WebUniverse,
        frequency_index: DomainFrequencyIndex,
        sources: Sequence[DataSource],
        dnb_confidence_threshold: int = DEFAULT_DNB_CONFIDENCE_THRESHOLD,
        reject_domain_mismatch: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._web = web
        self._index = frequency_index
        self._sources = list(sources)
        self._dnb_threshold = dnb_confidence_threshold
        self._reject_mismatch = reject_domain_mismatch
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_choice_seconds = registry.histogram(
            "asdb_domain_choice_seconds",
            "Most-likely-domain selection latency per AS.",
        )
        self._m_decisions = registry.counter(
            "asdb_source_match_decisions_total",
            "Accept/reject decisions on source matches.",
            ("source", "outcome"),
        )
        for source in self._sources:
            for outcome in (
                "accepted", REASON_LOW_CONFIDENCE, REASON_DOMAIN_MISMATCH
            ):
                self._m_decisions.inc(0, source=source.name, outcome=outcome)
        self._m_kernel_candidates = registry.counter(
            "asdb_kernel_candidates_total",
            "Most-similar selection candidates by scoring outcome "
            "(computed = paid for the LCS, pruned = skipped by the "
            "exact upper bound).",
            ("outcome",),
        )
        for outcome in ("computed", "pruned"):
            self._m_kernel_candidates.inc(0, outcome=outcome)

    def choose_domain(
        self,
        contact: ExtractedContact,
        as_name: str,
        hint_domains: Sequence[str] = (),
    ) -> Optional[str]:
        """Pool WHOIS candidates with ASN-source hints; run the Figure-4
        domain-extraction algorithm."""
        start = time.perf_counter()
        pool: List[str] = list(contact.candidate_domains)
        for hint in hint_domains:
            if hint and hint not in pool:
                pool.append(hint)
        # A fresh per-call stats object keeps the batch engine's
        # concurrent choosers from racing on shared counters; deltas
        # flush into the (thread-safe) metric afterwards.
        stats = KernelStats()
        chosen = choose_domain(
            pool, as_name, self._web, self._index, stats=stats
        )
        self._m_choice_seconds.observe(time.perf_counter() - start)
        if stats.computed:
            self._m_kernel_candidates.inc(
                stats.computed, outcome="computed"
            )
        if stats.pruned:
            self._m_kernel_candidates.inc(stats.pruned, outcome="pruned")
        return chosen

    def match_sources(
        self,
        contact: ExtractedContact,
        domain: Optional[str],
    ) -> ResolvedSources:
        """Match into every configured source with a known domain."""
        query = Query(
            name=contact.name,
            domain=domain,
            address=contact.address,
            phone=contact.phone,
            asn=contact.asn,
        )
        matches: Dict[str, SourceMatch] = {}
        rejected: List[str] = []
        reasons: Dict[str, str] = {}
        degraded: List[str] = []
        for source in self._sources:
            if hasattr(source, "try_lookup"):
                outcome = source.try_lookup(query)
                if outcome.failed:
                    degraded.append(source.name)
                    continue
                match = outcome.match
            else:
                match = source.lookup(query)
            if match is None:
                continue
            reason = self._reject_reason(match, domain)
            if reason is not None:
                rejected.append(source.name)
                reasons[source.name] = reason
                self._m_decisions.inc(1, source=source.name, outcome=reason)
                continue
            matches[source.name] = match
            self._m_decisions.inc(1, source=source.name, outcome="accepted")
        return ResolvedSources(
            asn=contact.asn,
            chosen_domain=domain,
            matches=matches,
            rejected=tuple(rejected),
            rejected_reasons=reasons,
            degraded=tuple(degraded),
        )

    def match_sources_many(
        self,
        items: Sequence[Tuple[ExtractedContact, Optional[str]]],
    ) -> List[ResolvedSources]:
        """Batch :meth:`match_sources` over ``(contact, domain)`` pairs.

        Calls each source's bulk endpoint once for the whole batch
        instead of once per AS.  Accept/reject logic, its ordering
        within an item, and the decision counters are the scalar path's
        exactly — lookups are deterministic per query, so results are
        elementwise identical to ``[match_sources(c, d) for c, d in
        items]``.
        """
        queries = [
            Query(
                name=contact.name,
                domain=domain,
                address=contact.address,
                phone=contact.phone,
                asn=contact.asn,
            )
            for contact, domain in items
        ]
        matches: List[Dict[str, SourceMatch]] = [{} for _ in items]
        rejected: List[List[str]] = [[] for _ in items]
        reasons: List[Dict[str, str]] = [{} for _ in items]
        degraded: List[List[str]] = [[] for _ in items]
        for source in self._sources:
            if hasattr(source, "try_lookup_many"):
                results = [
                    outcome.match for outcome in self._note_degraded(
                        source, source.try_lookup_many(queries), degraded
                    )
                ]
            else:
                results = source.lookup_many(queries)
            for index, match in enumerate(results):
                if match is None:
                    continue
                reason = self._reject_reason(match, items[index][1])
                if reason is not None:
                    rejected[index].append(source.name)
                    reasons[index][source.name] = reason
                    self._m_decisions.inc(
                        1, source=source.name, outcome=reason
                    )
                    continue
                matches[index][source.name] = match
                self._m_decisions.inc(
                    1, source=source.name, outcome="accepted"
                )
        return [
            ResolvedSources(
                asn=contact.asn,
                chosen_domain=domain,
                matches=matches[index],
                rejected=tuple(rejected[index]),
                rejected_reasons=reasons[index],
                degraded=tuple(degraded[index]),
            )
            for index, (contact, domain) in enumerate(items)
        ]

    @staticmethod
    def _note_degraded(source, outcomes, degraded: List[List[str]]):
        """Record failed slots of a bulk resilient lookup, pass the
        outcomes through unchanged."""
        for index, outcome in enumerate(outcomes):
            if outcome.failed:
                degraded[index].append(source.name)
        return outcomes

    def resolve(
        self,
        contact: ExtractedContact,
        as_name: str,
        hint_domains: Sequence[str] = (),
    ) -> ResolvedSources:
        """Choose a domain, then match into every configured source."""
        domain = self.choose_domain(contact, as_name, hint_domains)
        return self.match_sources(contact, domain)

    def _reject_reason(
        self, match: SourceMatch, domain: Optional[str]
    ) -> Optional[str]:
        """Why a match must be dropped, or None to accept it."""
        if match.source == "dnb" and match.confidence is not None:
            if match.confidence < self._dnb_threshold:
                return REASON_LOW_CONFIDENCE
        if (
            self._reject_mismatch
            and domain is not None
            and match.entry.domain is not None
            and match.entry.domain != domain
        ):
            # The source believes this organization lives at a different
            # domain: likely an entity disagreement (Section 3.5).
            return REASON_DOMAIN_MISMATCH
        return None

    def _accept(self, match: SourceMatch, domain: Optional[str]) -> bool:
        """Backwards-compatible boolean form of :meth:`_reject_reason`."""
        return self._reject_reason(match, domain) is None
