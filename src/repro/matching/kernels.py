"""Hot-path similarity kernels for entity resolution.

`select_most_similar` runs one `name_similarity` per candidate domain
per AS, and `name_similarity` bottoms out in an O(n*m) LCS dynamic
program.  At registry scale that DP dominates the pure-Python CPU
budget of a classification pass, so this module provides three layers
of mechanically-equivalent speedups:

1. :func:`lcs_ratio` — the same LCS ratio as the classic two-row DP
   (:func:`lcs_ratio_reference`), but with equality/containment early
   exits, common prefix/suffix trimming, and the DP rows allocated over
   the *shorter* trimmed core.  Every return value is bit-identical to
   the reference: the early exits compute the same integer LCS length,
   trimming is the standard LCS prefix/suffix identity, and the final
   division uses the same numerator and denominator.

2. Interned tokenization — token sets and joined sorted-token forms are
   cached per distinct name (:func:`~repro.world.names.token_set`,
   :func:`joined_form`), so a name is regex-tokenized once per process
   instead of once per comparison.

3. :func:`score_candidates` — batch scoring of one query name against
   many references with an *exact* upper-bound prune.  For each
   reference the token-Jaccard half of the blend is computed exactly
   (cheap), and the LCS half is bounded above by
   ``min(len_a, len_b) / max(len_a, len_b)`` (an LCS can never exceed
   the shorter string).  Since both halves use the same denominators as
   the true score and IEEE division/addition by a non-negative constant
   are monotone, ``bound >= score`` holds exactly in floats — so when
   ``bound <= best_score`` the candidate provably cannot *strictly*
   beat the running best and the DP is skipped without perturbing the
   first-max-wins tie-break.

The reference implementations are kept here verbatim so property tests
and benchmarks can assert exact equivalence against an executable spec.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Set, Tuple

from ..world.names import token_set

__all__ = [
    "KernelStats",
    "lcs_ratio",
    "lcs_ratio_reference",
    "joined_form",
    "score_candidates",
    "score_candidates_reference",
    "name_similarity_reference",
]


@dataclass
class KernelStats:
    """Counters for one :func:`score_candidates` workload.

    Attributes:
        candidates: References considered.
        computed: References that paid for the LCS dynamic program.
        pruned: References skipped by the exact upper bound.
    """

    candidates: int = 0
    computed: int = 0
    pruned: int = 0


def lcs_ratio_reference(a: str, b: str) -> float:
    """The original LCS ratio: classic O(n*m) DP, no shortcuts.

    Kept as the executable spec :func:`lcs_ratio` is tested against.
    """
    if not a or not b:
        return 0.0
    previous = [0] * (len(b) + 1)
    for char_a in a:
        current = [0]
        for index, char_b in enumerate(b):
            if char_a == char_b:
                current.append(previous[index] + 1)
            else:
                current.append(max(previous[index + 1], current[-1]))
        previous = current
    return previous[-1] / max(len(a), len(b))


def _lcs_core_length(a: str, b: str) -> int:
    """LCS length of two non-empty strings with no cheap structure left.

    ``a`` must be the shorter string; the DP rows are allocated over it
    so memory and the inner loop scale with min(n, m).
    """
    length_a = len(a)
    previous = [0] * (length_a + 1)
    for char_b in b:
        current = [0]
        append = current.append
        for index, char_a in enumerate(a):
            if char_a == char_b:
                append(previous[index] + 1)
            else:
                tail = current[-1]
                above = previous[index + 1]
                append(above if above > tail else tail)
        previous = current
    return previous[-1]


def lcs_ratio(a: str, b: str) -> float:
    """LCS length over max length, bit-identical to
    :func:`lcs_ratio_reference` but skipping work the structure of the
    inputs makes unnecessary (equality, containment, shared affixes).
    """
    if not a or not b:
        return 0.0
    if a == b:
        return 1.0
    length_a, length_b = len(a), len(b)
    denominator = max(length_a, length_b)
    # A substring is a subsequence: LCS == len(shorter), exactly.
    if length_a <= length_b:
        if a in b:
            return length_a / denominator
    elif b in a:
        return length_b / denominator
    # LCS(p + x, p + y) == len(p) + LCS(x, y), likewise for a common
    # suffix; the suffix scan must not re-consume prefix characters.
    shorter = min(length_a, length_b)
    prefix = 0
    while prefix < shorter and a[prefix] == b[prefix]:
        prefix += 1
    suffix = 0
    limit = shorter - prefix
    while suffix < limit and a[length_a - 1 - suffix] == b[length_b - 1 - suffix]:
        suffix += 1
    core_a = a[prefix:length_a - suffix]
    core_b = b[prefix:length_b - suffix]
    if len(core_a) > len(core_b):
        core_a, core_b = core_b, core_a
    if not core_a:
        # One input is a prefix+suffix "border" of the other.
        return (prefix + suffix) / denominator
    lcs_length = prefix + suffix + _lcs_core_length(core_a, core_b)
    return lcs_length / denominator


@lru_cache(maxsize=65536)
def joined_form(name: str) -> str:
    """The concatenated sorted-token string `name_similarity` runs the
    LCS over, interned per distinct name (with the original fallback to
    the squashed lowercase name when tokenization yields nothing)."""
    tokens = token_set(name)
    return "".join(sorted(tokens)) or name.lower().replace(" ", "")


def _jaccard(a, b) -> float:
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


def score_candidates(
    as_name: str,
    references: Sequence[str],
    stats: Optional[KernelStats] = None,
) -> Tuple[int, float]:
    """Index and score of the reference most similar to ``as_name``.

    Equivalent to scoring every reference with ``name_similarity`` and
    keeping the first maximum, but the query is tokenized once and
    references that provably cannot beat the running best skip the LCS
    (see the module docstring for why the prune is exact).  Returns
    ``(-1, -1.0)`` for an empty reference list.
    """
    query_tokens = token_set(as_name)
    query_joined = joined_form(as_name)
    query_length = len(query_joined)
    best_index = -1
    best_score = -1.0
    computed = pruned = 0
    for index, reference in enumerate(references):
        token_score = _jaccard(query_tokens, token_set(reference))
        reference_joined = joined_form(reference)
        reference_length = len(reference_joined)
        if query_length and reference_length:
            if query_length <= reference_length:
                lcs_bound = query_length / reference_length
            else:
                lcs_bound = reference_length / query_length
        else:
            lcs_bound = 0.0
        if 0.5 * token_score + 0.5 * lcs_bound <= best_score:
            pruned += 1
            continue
        computed += 1
        score = (
            0.5 * token_score
            + 0.5 * lcs_ratio(query_joined, reference_joined)
        )
        if score > best_score:
            best_index, best_score = index, score
    if stats is not None:
        stats.candidates += len(references)
        stats.computed += computed
        stats.pruned += pruned
    return best_index, best_score


# -- reference implementations (executable spec for tests/benches) -----------

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def _tokenize_reference(name: str) -> Set[str]:
    """Uncached tokenization, as `name_similarity` ran before interning."""
    from ..world.names import _STOPWORDS

    return {
        token
        for token in _TOKEN_PATTERN.findall(name.lower())
        if token not in _STOPWORDS and len(token) > 1
    }


def name_similarity_reference(a: str, b: str) -> float:
    """The original `name_similarity`: per-call tokenization, full DP."""
    tokens_a = _tokenize_reference(a)
    tokens_b = _tokenize_reference(b)
    token_score = _jaccard(tokens_a, tokens_b)
    joined_a = "".join(sorted(tokens_a)) or a.lower().replace(" ", "")
    joined_b = "".join(sorted(tokens_b)) or b.lower().replace(" ", "")
    sequence_score = lcs_ratio_reference(joined_a, joined_b)
    return 0.5 * token_score + 0.5 * sequence_score


def score_candidates_reference(
    as_name: str, references: Sequence[str]
) -> Tuple[int, float]:
    """The original selection loop: score everything, first max wins."""
    best_index = -1
    best_score = -1.0
    for index, reference in enumerate(references):
        score = name_similarity_reference(as_name, reference)
        if score > best_score:
            best_index, best_score = index, score
    return best_index, best_score
