"""Entity resolution: domain selection heuristics and source matching.

Implements Section 3.3's "Website Identification" heuristics (random /
least-common / most-similar domain selection), the Figure-4 domain
extraction algorithm, and the resolver that matches an AS's identifiers
into the identifier-keyed external sources.
"""

from .domains import (
    DomainFrequencyIndex,
    choose_domain,
    select_least_common,
    select_most_similar,
    select_random,
)
from .kernels import (
    KernelStats,
    lcs_ratio_reference,
    name_similarity_reference,
    score_candidates,
)
from .resolver import EntityResolver, ResolvedSources
from .similarity import jaccard, lcs_ratio, name_similarity

__all__ = [
    "DomainFrequencyIndex",
    "choose_domain",
    "select_random",
    "select_least_common",
    "select_most_similar",
    "EntityResolver",
    "ResolvedSources",
    "jaccard",
    "lcs_ratio",
    "name_similarity",
    "KernelStats",
    "score_candidates",
    "lcs_ratio_reference",
    "name_similarity_reference",
]
