"""Command-line interface for the ASdb reproduction.

Subcommands::

    python -m repro classify  --n-orgs 400 --seed 42 --out dataset.csv
    python -m repro lookup    --asn 64512 --n-orgs 300 --seed 9
    python -m repro evaluate  --n-orgs 800 --seed 33
    python -m repro taxonomy  [--layer1 finance]
    python -m repro stats     --n-orgs 200 --format summary
    python -m repro snapshot  --store releases --n-orgs 200 --seed 42
    python -m repro refresh   --store releases --days 90
    python -m repro diff      --store releases --from 1 --to 2
    python -m repro asof      --store releases --day 120
    python -m repro timeline  --store releases --asn 64512
    python -m repro churn     --store releases --from 1 --to 3
    python -m repro serve     --snapshots releases --port 8311

``classify`` builds a world, runs the full pipeline, and writes the
dataset (CSV or JSON by extension); ``--workers N`` runs the pass
through the parallel batch engine with byte-identical output.  ``lookup`` narrates one AS through
the pipeline.  ``evaluate`` reproduces the gold-standard evaluation.
``taxonomy`` prints the NAICSlite category system.  ``stats`` runs a
classification pass and prints the collected pipeline metrics.

Release maintenance (Section 5.3): ``snapshot`` classifies a fresh
world through a baseline maintenance sweep and stores release v1 in a
versioned snapshot store (with world provenance in the manifest).
``refresh`` reopens a store, replays its recorded churn history,
simulates ``--days`` more days of registrations/metadata churn, and
runs one *incremental* sweep — only the changed ASNs are reclassified
(through the batch engine) and stored as a delta-encoded version.
``diff`` reports added/removed/relabeled/stage-changed ASNs between
any two stored versions.

Temporal queries (ROADMAP item 3): ``asof`` reconstructs the full
digest-verified dataset in force at a version or day (``snapshot
--checkpoint-every K`` bounds the replay to K deltas); ``timeline``
prints one AS's per-release classification trajectory from the delta
chain alone; ``churn`` counts category flows between two releases.

Serving: ``serve`` exposes the dataset as an async HTTP query API
(``/asn/{asn}``, ``/org/{query}``, ``/categories``, ``/version``,
``/healthz``, ``/metrics``) over an immutable in-memory index that is
atomically swapped on refresh — from a snapshot store
(``--snapshots DIR``), a dataset store (``--store URL``), or a fresh
classification pass (optionally ``--lazy``: start empty and classify
on demand through the bounded background queue; unknown ASNs answer
202 with a Retry-After hint, queue overflow answers 503).

Exit semantics: output piped into ``head``/``less`` may close stdout
early; the CLI treats the resulting broken pipe as deliberate
truncation and exits 0 quietly (no traceback) where a SIGPIPE-killed
process would report exit 141.

Observability flags (``classify`` and ``lookup``):

``--metrics-out FILE``
    Write the run's metrics snapshot to FILE after classification —
    Prometheus text exposition format, or JSON when FILE ends in
    ``.json``.
``--trace``
    Record a per-stage span trace for every AS.  ``lookup --trace``
    prints the narrated spans (stage, wall time, verdict, per-source
    decisions); ``classify --trace`` prints an aggregate per-stage
    timing table.
``--profile [N]``
    (``classify`` only) Print the top-N slowest pipeline stages
    (default 5) aggregated from the run's trace spans; implies
    ``--trace``.  The narration goes to *stderr* (or to
    ``--profile-out FILE``) so piped CSV/JSON exports stay clean.
``--runlog FILE``
    (``classify``, ``snapshot``, ``refresh``) Persist a structured
    NDJSON event ledger for the run — spans (including worker-side
    spans from the thread/process pools), per-AS traces (implies
    ``--trace``), resource samples, breaker transitions, and an
    end-of-run summary embedding the full metrics registry.  Inspect
    it later with ``repro report LEDGER``, diff two runs with ``repro
    report --compare A B``, and gate on budgets with ``repro health
    --slo slo.json LEDGER`` (exit 1 on SLO breach).

Storage flags:

``--store URL`` (``classify``, ``stats``)
    Back the run's dataset with a pluggable store: ``sqlite:PATH``
    (indexed, disk-backed, O(batch) memory), ``json:PATH``, or
    ``memory:``.  Exports and summary output are byte-identical across
    backends.  ``snapshot``/``refresh``/``diff`` spell the same flag
    ``--dataset-store URL`` (their ``--store`` is the snapshot-store
    directory); ``refresh`` reuses a populated sqlite store when its
    digest matches the latest version, and ``diff --dataset-store``
    streams both versions through scratch stores instead of holding
    them in memory.

``--sweep-batch N`` (``snapshot``, ``refresh``)
    Stream the maintenance sweep's classify phase in windows of N
    ASNs: the dataset store is flushed after each window, so a
    store-backed sweep holds O(batch) records resident with
    byte-identical results.

Performance flags (``classify``):

``--executor {thread,process}``
    Batch executor for ``--workers N``: ``process`` chunks the
    CPU-bound ML scoring stage over a process pool; output is
    byte-identical either way.

Resilience flags (``classify``):

``--inject-faults [RATE]``
    Wrap every source in deterministic fault injection (outages, rate
    limits, malformed entries, latency spikes) at the given rate
    (default 0.15) and run the pipeline through the retry/circuit-
    breaker layer; sources that stay down are recorded on each
    record's ``degraded_sources`` instead of crashing the run.
``--retry N``
    Retries per source lookup under ``--inject-faults`` (default 2).
"""

from __future__ import annotations

import argparse
import asyncio
import io
import json
import os
import sys
from typing import List, Optional, Tuple

from . import SystemConfig, WorldConfig, build_asdb, generate_world
from .core.history import ReleaseHistory, categorization
from .core.maintenance import MaintenanceDaemon
from .core.persistence import write_csv, write_json
from .core.resilience import RetryPolicy
from .core.snapshots import SnapshotError, SnapshotStore, dataset_digest
from .core.store import StoreError, diff_stores, open_store
from .datasources.faults import FaultPlan
from .evaluation import build_gold_standard, evaluate_stages
from .obs import (
    NULL_RUNLOG,
    LedgerError,
    MetricsRegistry,
    RunLog,
    SloError,
    aggregate_spans,
    evaluate_slos,
    format_seconds,
    load_events,
    load_slos,
    narrate_profile,
    narrate_sweep,
    narrate_trace,
    render_compare,
    render_health,
    render_report,
)
from .reporting import render_metrics_summary, render_table
from .taxonomy import naicslite
from .world import simulate_churn

__all__ = ["main", "run", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ASdb reproduction: classify owners of Autonomous "
        "Systems over a calibrated synthetic world.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    classify = sub.add_parser(
        "classify", help="classify every AS in a fresh world"
    )
    classify.add_argument("--n-orgs", type=int, default=400)
    classify.add_argument("--seed", type=int, default=42)
    classify.add_argument("--no-ml", action="store_true",
                          help="skip the ML pipeline stage")
    classify.add_argument("--workers", type=int, default=1,
                          help="worker threads for the batch engine "
                          "(output is byte-identical to --workers 1)")
    classify.add_argument("--executor", default="thread",
                          choices=("thread", "process"),
                          help="batch executor: 'process' chunks the "
                          "CPU-bound ML scoring over a process pool "
                          "(output is byte-identical to 'thread')")
    classify.add_argument("--profile", nargs="?", const=5, type=int,
                          default=None, metavar="N",
                          help="print the top-N slowest pipeline stages "
                          "(default 5) aggregated from trace spans to "
                          "stderr; implies --trace")
    classify.add_argument("--profile-out", default=None, metavar="FILE",
                          help="write the --profile narration to FILE "
                          "instead of stderr")
    classify.add_argument("--out", default=None,
                          help="write the dataset to a .csv or .json file")
    classify.add_argument("--store", default=None, metavar="URL",
                          help="dataset store backend (sqlite:PATH, "
                          "json:PATH, or memory:); exports are "
                          "byte-identical to the in-memory default")
    classify.add_argument("--inject-faults", nargs="?", const=0.15,
                          type=float, default=None, metavar="RATE",
                          help="inject deterministic source faults "
                          "(outages, rate limits, malformed entries, "
                          "latency spikes) at RATE (default 0.15) and "
                          "classify through the resilience layer")
    classify.add_argument("--retry", type=int, default=2, metavar="N",
                          help="retries per source lookup under "
                          "--inject-faults (default 2)")
    _add_obs_flags(classify)

    lookup = sub.add_parser("lookup", help="classify and explain one AS")
    lookup.add_argument("--asn", type=int, default=None,
                        help="ASN to look up (default: first with domain)")
    lookup.add_argument("--n-orgs", type=int, default=300)
    lookup.add_argument("--seed", type=int, default=9)
    _add_obs_flags(lookup)

    stats = sub.add_parser(
        "stats",
        help="run a classification pass and print pipeline metrics",
    )
    stats.add_argument("--n-orgs", type=int, default=200)
    stats.add_argument("--seed", type=int, default=42)
    stats.add_argument("--no-ml", action="store_true",
                       help="skip the ML pipeline stage")
    stats.add_argument("--format", default="summary",
                       choices=("summary", "prometheus", "json"),
                       help="metrics output format (default: summary table)")
    stats.add_argument("--workers", type=int, default=1,
                       help="worker threads for the classification pass")
    stats.add_argument("--store", default=None, metavar="URL",
                       help="dataset store backend (sqlite:PATH, "
                       "json:PATH, or memory:); summary aggregates are "
                       "pushed down to the backend's indexes")

    evaluate = sub.add_parser(
        "evaluate", help="gold-standard evaluation of the full system"
    )
    evaluate.add_argument("--n-orgs", type=int, default=800)
    evaluate.add_argument("--seed", type=int, default=33)
    evaluate.add_argument("--gold-size", type=int, default=150)

    taxonomy = sub.add_parser("taxonomy", help="print NAICSlite")
    taxonomy.add_argument("--layer1", default=None,
                          help="restrict to one layer 1 slug")

    snapshot = sub.add_parser(
        "snapshot",
        help="classify a fresh world and store release v1 in a "
        "versioned snapshot store",
    )
    snapshot.add_argument("--store", required=True, metavar="DIR",
                          help="snapshot store directory (created if "
                          "missing; must not already hold versions)")
    snapshot.add_argument("--n-orgs", type=int, default=200)
    snapshot.add_argument("--seed", type=int, default=42)
    snapshot.add_argument("--no-ml", action="store_true",
                          help="skip the ML pipeline stage")
    snapshot.add_argument("--workers", type=int, default=1,
                          help="worker threads for the batch engine")
    snapshot.add_argument("--trace", action="store_true",
                          help="record per-phase sweep spans")
    snapshot.add_argument("--metrics-out", default=None, metavar="FILE",
                          help="write the sweep metrics snapshot to FILE")
    snapshot.add_argument("--runlog", default=None, metavar="FILE",
                          help="persist an NDJSON event ledger for the "
                          "run (implies --trace)")
    snapshot.add_argument("--dataset-store", default=None, metavar="URL",
                          help="dataset store backend for the sweep "
                          "(sqlite:PATH, json:PATH, or memory:)")
    snapshot.add_argument("--sweep-batch", type=int, default=None,
                          metavar="N",
                          help="stream the sweep's classify phase in "
                          "windows of N ASNs (byte-identical results, "
                          "O(batch) memory)")
    snapshot.add_argument("--checkpoint-every", type=int, default=None,
                          metavar="K",
                          help="promote every K-th delta to a "
                          "checkpoint (recorded in the manifest, so "
                          "later refreshes keep the cadence); bounds "
                          "as-of reconstruction to O(K) deltas")

    refresh = sub.add_parser(
        "refresh",
        help="simulate churn and incrementally refresh a snapshot store",
    )
    refresh.add_argument("--store", required=True, metavar="DIR")
    refresh.add_argument("--days", type=int, required=True,
                         help="days of registration/metadata churn to "
                         "simulate before the sweep")
    refresh.add_argument("--churn-seed", type=int, default=None,
                         help="seed for this churn epoch (default: the "
                         "epoch number)")
    refresh.add_argument("--workers", type=int, default=1,
                         help="worker threads for the sweep's batch pass")
    refresh.add_argument("--trace", action="store_true",
                         help="record per-phase sweep spans")
    refresh.add_argument("--metrics-out", default=None, metavar="FILE",
                         help="write the sweep metrics snapshot to FILE")
    refresh.add_argument("--runlog", default=None, metavar="FILE",
                         help="persist an NDJSON event ledger for the "
                         "run (implies --trace)")
    refresh.add_argument("--dataset-store", default=None, metavar="URL",
                         help="dataset store backend for the sweep "
                         "(sqlite:PATH, json:PATH, or memory:); a "
                         "non-empty sqlite store matching the latest "
                         "version's digest is reused without reloading")
    refresh.add_argument("--sweep-batch", type=int, default=None,
                         metavar="N",
                         help="stream the sweep's classify phase in "
                         "windows of N ASNs (byte-identical results, "
                         "O(batch) memory)")

    diff = sub.add_parser(
        "diff", help="diff two stored dataset versions"
    )
    diff.add_argument("--store", required=True, metavar="DIR")
    diff.add_argument("--dataset-store", default=None, metavar="URL",
                      help="materialize both versions into scratch "
                      "dataset stores derived from URL (e.g. "
                      "sqlite:PATH) and diff them by streaming "
                      "cursors instead of in memory")
    diff.add_argument("--from", dest="from_version", type=int,
                      default=None, metavar="V",
                      help="older version (default: latest - 1)")
    diff.add_argument("--to", dest="to_version", type=int, default=None,
                      metavar="V", help="newer version (default: latest)")
    diff.add_argument("--json", action="store_true",
                      help="emit the diff as a JSON document")

    asof = sub.add_parser(
        "asof",
        help="reconstruct the dataset as of a version or a day",
    )
    asof.add_argument("--store", required=True, metavar="DIR",
                      help="snapshot store directory")
    asof.add_argument("--version", type=int, default=None, metavar="V",
                      help="reconstruct exactly version V")
    asof.add_argument("--day", type=int, default=None, metavar="D",
                      help="reconstruct the release in force on day D "
                      "(the newest version whose sweep window closed "
                      "at or before D)")
    asof.add_argument("--out", default=None,
                      help="write the reconstruction to a .csv or "
                      ".json file")
    asof.add_argument("--dataset-store", default=None, metavar="URL",
                      help="materialize into this backend "
                      "(sqlite:PATH keeps O(batch) records resident)")

    timeline = sub.add_parser(
        "timeline",
        help="per-release classification trajectory of one AS",
    )
    timeline.add_argument("--store", required=True, metavar="DIR",
                          help="snapshot store directory")
    timeline.add_argument("--asn", type=int, required=True,
                          help="ASN whose history to trace")
    timeline.add_argument("--json", action="store_true",
                          help="emit the trajectory as a JSON document")

    churn = sub.add_parser(
        "churn",
        help="category-flow analytics between two releases",
    )
    churn.add_argument("--store", required=True, metavar="DIR",
                       help="snapshot store directory")
    churn.add_argument("--from", dest="from_version", type=int,
                       default=None, metavar="V",
                       help="older version (default: latest - 1)")
    churn.add_argument("--to", dest="to_version", type=int,
                       default=None, metavar="V",
                       help="newer version (default: latest)")
    churn.add_argument("--json", action="store_true",
                       help="emit the report as a JSON document")

    report = sub.add_parser(
        "report",
        help="render a human-readable rollup from a run ledger",
    )
    report.add_argument("ledger", nargs="?", default=None,
                        help="NDJSON run ledger written with --runlog")
    report.add_argument("--compare", nargs=2, default=None,
                        metavar=("A", "B"),
                        help="diff two ledgers instead (BENCH-style "
                        "regression table)")

    health = sub.add_parser(
        "health",
        help="evaluate SLO budgets against a run ledger "
        "(exit 1 on breach)",
    )
    health.add_argument("ledger",
                        help="NDJSON run ledger written with --runlog")
    health.add_argument("--slo", required=True, metavar="FILE",
                        help="JSON SLO file (see docs/ARCHITECTURE.md "
                        "section 12)")

    serve = sub.add_parser(
        "serve",
        help="serve the dataset over an async HTTP query API",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port (0 picks an ephemeral port; "
                       "the bound port is printed and written to "
                       "--ready-file)")
    serve.add_argument("--snapshots", default=None, metavar="DIR",
                       help="serve the latest version of a snapshot "
                       "store; POST /refresh re-materializes so new "
                       "versions appear without a restart")
    serve.add_argument("--version", type=int, default=None,
                       help="pin a snapshot version (default: latest "
                       "at each rebuild)")
    serve.add_argument("--full-refresh", action="store_true",
                       help="force POST /refresh to rebuild from "
                       "scratch instead of delta-applying new "
                       "releases onto the live index (snapshot "
                       "serving only)")
    serve.add_argument("--store", default=None, metavar="URL",
                       help="serve an existing dataset store "
                       "(sqlite:PATH / json:PATH); reopened on each "
                       "refresh swap")
    serve.add_argument("--n-orgs", type=int, default=200,
                       help="world size when serving a fresh "
                       "classification pass (no --snapshots/--store)")
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--no-ml", action="store_true",
                       help="skip the ML pipeline stage (fresh-world "
                       "serving only)")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker threads for classification passes")
    serve.add_argument("--lazy", action="store_true",
                       help="start with an empty index and classify "
                       "on demand through the background queue "
                       "(fresh-world serving only)")
    serve.add_argument("--queue-size", type=int, default=256,
                       help="bound on the on-demand classification "
                       "queue; overflow answers 503 (default 256)")
    serve.add_argument("--queue-batch", type=int, default=16,
                       help="ASNs classified per background drain "
                       "window (default 16)")
    serve.add_argument("--retry-after", type=int, default=1,
                       help="Retry-After seconds on 202/503 responses")
    serve.add_argument("--ready-file", default=None, metavar="FILE",
                       help="write 'HOST PORT' to FILE once listening "
                       "(for scripts and smoke tests)")
    serve.add_argument("--max-seconds", type=float, default=None,
                       metavar="S",
                       help="serve for S seconds then exit cleanly "
                       "(smoke tests; default: until interrupted)")
    serve.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the final metrics snapshot to FILE "
                       "on shutdown")
    serve.add_argument("--runlog", default=None, metavar="FILE",
                       help="persist serve.* events (start, swaps, "
                       "queue drains, stop) to an NDJSON ledger")

    dump = sub.add_parser(
        "dump",
        help="export a world's bulk WHOIS, or parse an existing dump",
    )
    dump.add_argument("--n-orgs", type=int, default=200)
    dump.add_argument("--seed", type=int, default=42)
    dump.add_argument("--out", default=None,
                      help="write a synthetic bulk WHOIS dump here")
    dump.add_argument("--parse", default=None, metavar="FILE",
                      help="parse FILE instead and print field stats")
    return parser


def _add_obs_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--trace", action="store_true",
        help="record a per-stage span trace for every AS",
    )
    subparser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the metrics snapshot to FILE (Prometheus text, or "
        "JSON when FILE ends in .json)",
    )
    subparser.add_argument(
        "--runlog", default=None, metavar="FILE",
        help="persist an NDJSON event ledger for the run (implies "
        "--trace); inspect with `repro report` / `repro health`",
    )


def _open_runlog(args: argparse.Namespace, kind: str, world: dict):
    """A real ledger when ``--runlog`` was passed, else the null one.

    The run's config stanza is the parsed CLI arguments (minus the
    ledger path itself — two otherwise-identical runs logging to
    different files should share a config digest).
    """
    path = getattr(args, "runlog", None)
    if not path:
        return NULL_RUNLOG
    config = {
        key: value for key, value in sorted(vars(args).items())
        if key != "runlog"
    }
    return RunLog(path, kind=kind, config=config, world=world)


def _resource_providers(built, registry: MetricsRegistry):
    """Stats stanzas for ``resource.sample`` events: org cache, string
    kernels, and the ML feature cache."""
    cache = built.asdb.cache
    providers = {
        "cache": lambda: {
            "hits": cache.hits,
            "misses": cache.misses,
            "none_keys": cache.none_keys,
            "hit_rate": cache.hit_rate,
        },
    }
    kernels = registry.get("asdb_kernel_candidates_total")
    if kernels is not None:
        providers["kernels"] = lambda: {
            "computed": kernels.value(outcome="computed"),
            "pruned": kernels.value(outcome="pruned"),
        }
    if built.ml_pipeline is not None:
        featcache = built.ml_pipeline.feature_cache
        providers["featcache"] = lambda: {
            "hits": featcache.stats().hits,
            "misses": featcache.stats().misses,
            "size": featcache.stats().size,
            "hit_rate": featcache.stats().hit_rate,
        }
    return providers


def _finish_runlog(
    runlog, registry: MetricsRegistry, built, dataset=None,
    **summary: object,
) -> None:
    """Emit the end-of-run summary: metrics snapshot, degraded-source
    tally, and circuit-breaker states."""
    if not runlog.enabled:
        return
    if dataset is not None:
        summary["degraded"] = {
            "records": sum(
                1 for record in dataset if record.degraded_sources
            ),
            "total": len(dataset),
        }
    if built.resilient:
        summary["breakers"] = {
            source.name: source.breaker_state()
            for source in built.resilient
        }
    runlog.finish(status="ok", metrics=registry, **summary)


def _write_metrics(registry: MetricsRegistry, path: str) -> None:
    payload = (
        registry.to_json() if path.endswith(".json")
        else registry.to_prometheus()
    )
    with open(path, "w") as handle:
        handle.write(payload)
    print(f"wrote metrics snapshot to {path}")


def _record_traces(dataset):
    return (
        record.trace for record in dataset if record.trace is not None
    )


def _print_stage_timings(dataset) -> None:
    """Aggregate traced span wall time per pipeline stage."""
    totals = aggregate_spans(_record_traces(dataset))
    if not totals:
        return
    rows = [
        [name, str(count), format_seconds(seconds),
         format_seconds(seconds / count)]
        for name, count, seconds in totals
    ]
    print(render_table(["Span", "Calls", "Total", "Mean"], rows,
                       title="Per-stage wall time"))


def _cmd_classify(args: argparse.Namespace) -> int:
    if args.out and not args.out.endswith((".csv", ".json")):
        print("error: --out must end in .csv or .json", file=sys.stderr)
        return 2
    registry = MetricsRegistry()
    world = generate_world(WorldConfig(n_orgs=args.n_orgs, seed=args.seed))
    faults = retry = None
    if args.inject_faults is not None:
        faults = FaultPlan.uniform(args.inject_faults, seed=args.seed)
        # backoff_base=0 keeps chaos runs fast: retries still happen,
        # they just don't sleep between attempts.
        retry = RetryPolicy(
            seed=args.seed, max_retries=max(0, args.retry),
            backoff_base=0.0,
        )
    runlog = _open_runlog(args, "classify",
                          {"n_orgs": args.n_orgs, "seed": args.seed})
    # --profile aggregates trace spans and the ledger embeds per-AS
    # traces, so either implies recording them.
    trace = args.trace or args.profile is not None or runlog.enabled
    try:
        built = build_asdb(
            world,
            SystemConfig(
                seed=args.seed,
                train_ml=not args.no_ml,
                metrics=registry,
                trace=trace,
                workers=args.workers,
                executor=args.executor,
                faults=faults,
                retry=retry,
                runlog=runlog if runlog.enabled else None,
                dataset_store=args.store,
            ),
        )
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    providers = _resource_providers(built, registry)
    runlog.sample_resources(providers, phase="built")
    dataset = built.asdb.classify_all()
    runlog.sample_resources(providers, phase="classified")
    print(f"classified {len(dataset)} ASes "
          f"(coverage {dataset.coverage():.1%})")
    if args.store is not None:
        print(f"dataset store: {args.store}")
    if faults is not None:
        degraded = sum(
            1 for record in dataset if record.degraded_sources
        )
        errors = registry.counter(
            "asdb_source_errors_total", labelnames=("source", "kind")
        ).total()
        print(f"fault injection: {degraded} records with degraded "
              f"sources, {errors:.0f} source errors absorbed")
    for stage, count in sorted(
        dataset.stage_counts().items(), key=lambda item: -item[1]
    ):
        print(f"  {stage.display:40s} {count:5d}")
    cache = built.asdb.cache
    print(f"cache hit rate: {cache.hit_rate:.1%} "
          f"({cache.hits} hits, {cache.misses} misses, "
          f"{cache.none_keys} keyless)")
    if args.trace:
        _print_stage_timings(dataset)
    if args.profile is not None:
        # Never to stdout: `classify --profile --out=-`-style piping and
        # CSV redirects must not interleave with the narration.
        narration = narrate_profile(_record_traces(dataset),
                                    top=args.profile)
        if args.profile_out:
            with open(args.profile_out, "w") as handle:
                handle.write(narration + "\n")
            print(f"wrote profile narration to {args.profile_out}")
        else:
            print(narration, file=sys.stderr)
    if args.metrics_out:
        _write_metrics(registry, args.metrics_out)
    if args.out:
        # Streamed record by record: an export from a store-backed
        # dataset never materializes the document (and the bytes are
        # identical to the old whole-string write).
        with open(args.out, "w") as handle:
            if args.out.endswith(".json"):
                write_json(dataset, handle)
            else:
                write_csv(dataset, handle)
        print(f"wrote {args.out}")
    _finish_runlog(
        runlog, registry, built, dataset,
        asns=len(dataset), coverage=round(dataset.coverage(), 4),
    )
    dataset.close()
    return 0


def _cmd_lookup(args: argparse.Namespace) -> int:
    registry = MetricsRegistry()
    world = generate_world(WorldConfig(n_orgs=args.n_orgs, seed=args.seed))
    runlog = _open_runlog(args, "lookup",
                          {"n_orgs": args.n_orgs, "seed": args.seed})
    built = build_asdb(
        world,
        SystemConfig(
            seed=args.seed, metrics=registry,
            trace=args.trace or runlog.enabled,
            runlog=runlog if runlog.enabled else None,
        ),
    )
    asn = args.asn
    if asn is None:
        asn = next(
            a for a in world.asns()
            if world.org_of_asn(a).domain is not None
        )
    if asn not in world.ases:
        print(f"error: AS{asn} is not registered in this world "
              f"(try one of {world.asns()[:5]}...)", file=sys.stderr)
        runlog.finish(status="error: unknown ASN")
        return 2
    record = built.asdb.classify(asn)
    org = world.org_of_asn(asn)
    print(f"AS{asn}")
    print(f"  organization (truth): {org.name}")
    print(f"  classified as: "
          f"{', '.join(str(label) for label in record.labels) or '-'}")
    print(f"  stage: {record.stage.display}")
    print(f"  domain: {record.domain}")
    print(f"  sources: {'|'.join(record.sources) or '-'}")
    correct = record.labels.overlaps_layer1(org.truth)
    print(f"  layer-1 correct: {correct}")
    if args.trace and record.trace is not None:
        print()
        print(narrate_trace(record.trace))
    if args.metrics_out:
        _write_metrics(registry, args.metrics_out)
    _finish_runlog(runlog, registry, built, asn=asn,
                   stage=record.stage.display)
    return 0


def _render_cache_layers(built, registry: MetricsRegistry) -> str:
    """One row per work-avoidance layer: the org-record cache, the
    string-kernel candidate pruner, and the ML feature cache."""
    cache = built.asdb.cache
    rows = [[
        "org cache", str(cache.hits), str(cache.misses),
        f"{cache.hit_rate:.1%}", f"{cache.none_keys} keyless lookups",
    ]]
    kernels = registry.get("asdb_kernel_candidates_total")
    if kernels is not None:
        pruned = kernels.value(outcome="pruned")
        computed = kernels.value(outcome="computed")
        total = pruned + computed
        rows.append([
            "string kernels", f"{pruned:.0f}", f"{computed:.0f}",
            f"{pruned / total:.1%}" if total else "-",
            "candidates pruned before scoring",
        ])
    if built.ml_pipeline is not None:
        stats = built.ml_pipeline.feature_cache.stats()
        rows.append([
            "feature cache", str(stats.hits), str(stats.misses),
            f"{stats.hit_rate:.1%}", f"{stats.size} entries",
        ])
    return render_table(
        ["Layer", "Saved", "Computed", "Saved rate", "Notes"], rows,
        title="Cache & pruning layers",
    )


def _cmd_stats(args: argparse.Namespace) -> int:
    registry = MetricsRegistry()
    world = generate_world(WorldConfig(n_orgs=args.n_orgs, seed=args.seed))
    try:
        built = build_asdb(
            world,
            SystemConfig(
                seed=args.seed, train_ml=not args.no_ml, metrics=registry,
                workers=args.workers, dataset_store=args.store,
            ),
        )
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    dataset = built.asdb.classify_all()
    if args.format == "prometheus":
        print(registry.to_prometheus(), end="")
    elif args.format == "json":
        print(registry.to_json())
    else:
        print(f"classified {len(dataset)} ASes "
              f"(coverage {dataset.coverage():.1%})")
        if args.store is not None:
            print(f"dataset store: {args.store}")
        print(render_metrics_summary(registry))
        print(_render_cache_layers(built, registry))
    dataset.close()
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    world = generate_world(WorldConfig(n_orgs=args.n_orgs, seed=args.seed))
    gold = build_gold_standard(world, size=args.gold_size, seed=0)
    built = build_asdb(
        world,
        SystemConfig(
            seed=args.seed,
            exclude_asns_from_training=tuple(gold.asns()),
        ),
    )
    dataset = built.asdb.classify_all()
    breakdown = evaluate_stages(dataset, gold)
    rows = [
        [row.stage.display, str(row.coverage), str(row.accuracy)]
        for row in breakdown.rows
    ]
    rows.append(["Overall Layer 1", str(breakdown.overall_l1_coverage),
                 str(breakdown.overall_l1_accuracy)])
    rows.append(["Overall Layer 2", str(breakdown.overall_l2_coverage),
                 str(breakdown.overall_l2_accuracy)])
    print(render_table(["Stage", "Coverage", "Accuracy"], rows,
                       title="Gold-standard evaluation"))
    return 0


def _cmd_taxonomy(args: argparse.Namespace) -> int:
    categories = naicslite.ALL_LAYER1
    if args.layer1:
        try:
            categories = (naicslite.layer1_by_slug(args.layer1),)
        except KeyError:
            print(f"error: unknown layer 1 slug {args.layer1!r}; one of "
                  f"{[c.slug for c in naicslite.ALL_LAYER1]}",
                  file=sys.stderr)
            return 2
    for category in categories:
        print(f"{category.code:2d}  {category.name}  [{category.slug}]")
        for sub in category.layer2:
            print(f"      {sub.code:5s} {sub.name}  [{sub.slug}]")
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    store = SnapshotStore(args.store)
    if len(store):
        print(f"error: {args.store} already holds {len(store)} "
              f"version(s); use `repro refresh`", file=sys.stderr)
        return 2
    registry = MetricsRegistry()
    world = generate_world(WorldConfig(n_orgs=args.n_orgs, seed=args.seed))
    runlog = _open_runlog(args, "snapshot",
                          {"n_orgs": args.n_orgs, "seed": args.seed})
    try:
        built = build_asdb(
            world,
            SystemConfig(
                seed=args.seed,
                train_ml=not args.no_ml,
                metrics=registry,
                trace=args.trace or runlog.enabled,
                workers=args.workers,
                snapshot_dir=args.store,
                runlog=runlog if runlog.enabled else None,
                dataset_store=args.dataset_store,
                sweep_batch_size=args.sweep_batch,
                snapshot_checkpoint_every=args.checkpoint_every,
            ),
        )
    except (StoreError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    providers = _resource_providers(built, registry)
    runlog.sample_resources(providers, phase="built")
    report = built.daemon.sweep(current_day=0)
    runlog.sample_resources(providers, phase="swept")
    built.snapshots.set_meta({
        "n_orgs": args.n_orgs,
        "world_seed": args.seed,
        "train_ml": not args.no_ml,
        "last_day": 0,
        "epochs": [],
    })
    print(narrate_sweep(report))
    info = built.snapshots.latest()
    print(f"store {args.store}: v{info.version} ({info.kind}, "
          f"{info.record_count} records)")
    if built.snapshots.checkpoint_every:
        print(f"checkpointing every "
              f"{built.snapshots.checkpoint_every} deltas")
    if args.dataset_store is not None:
        print(f"dataset store: {args.dataset_store}")
    if args.metrics_out:
        _write_metrics(registry, args.metrics_out)
    _finish_runlog(
        runlog, registry, built, built.asdb.dataset,
        reclassified=report.reclassified, snapshot_version=info.version,
    )
    built.asdb.dataset.close()
    return 0


def _cmd_refresh(args: argparse.Namespace) -> int:
    probe = SnapshotStore(args.store)
    if not len(probe):
        print(f"error: {args.store} holds no versions; run "
              f"`repro snapshot` first", file=sys.stderr)
        return 2
    meta = dict(probe.meta)
    if "n_orgs" not in meta or "world_seed" not in meta:
        print(f"error: {args.store} has no world provenance; was it "
              f"created by `repro snapshot`?", file=sys.stderr)
        return 2
    if args.days < 0:
        print("error: --days must be >= 0", file=sys.stderr)
        return 2

    registry = MetricsRegistry()
    world = generate_world(
        WorldConfig(n_orgs=int(meta["n_orgs"]),
                    seed=int(meta["world_seed"]))
    )
    # Replay the recorded churn history so the registry reaches the
    # state the latest snapshot was swept from.
    epochs = list(meta.get("epochs", []))
    for epoch in epochs:
        simulate_churn(world, days=int(epoch["days"]),
                       seed=int(epoch["seed"]),
                       start_day=int(epoch["start_day"]))
    runlog = _open_runlog(args, "refresh", {
        "n_orgs": int(meta["n_orgs"]),
        "seed": int(meta["world_seed"]),
    })
    built = build_asdb(
        world,
        SystemConfig(
            seed=int(meta["world_seed"]),
            train_ml=bool(meta.get("train_ml", True)),
            metrics=registry,
            trace=args.trace or runlog.enabled,
            workers=args.workers,
            snapshot_dir=args.store,
            runlog=runlog if runlog.enabled else None,
        ),
    )
    store = built.snapshots
    if args.dataset_store is not None:
        try:
            dataset = open_store(
                args.dataset_store,
                metrics=registry,
                runlog=runlog if runlog.enabled else None,
            )
        except StoreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        latest = store.latest()
        if len(dataset):
            # A populated store left by a previous refresh is reused
            # only when it provably holds the latest version — its
            # streamed document digest must match the manifest's.
            if dataset_digest(dataset) != latest.digest:
                print(f"error: {args.dataset_store} does not match "
                      f"v{latest.version}'s digest; point "
                      f"--dataset-store at an empty or current store",
                      file=sys.stderr)
                return 2
            built.asdb.dataset = dataset
        else:
            built.asdb.dataset = store.load(into=dataset)
    else:
        built.asdb.dataset = store.load()

    last_day = int(meta.get("last_day", 0))
    epoch_seed = (
        args.churn_seed if args.churn_seed is not None else len(epochs) + 1
    )
    stats = simulate_churn(world, days=args.days, seed=epoch_seed,
                           start_day=last_day + 1)
    daemon = MaintenanceDaemon(
        built.asdb, workers=args.workers, snapshots=store,
        last_day=last_day, batch_size=args.sweep_batch,
    )
    providers = _resource_providers(built, registry)
    runlog.sample_resources(providers, phase="churned")
    report = daemon.sweep(last_day + args.days)
    runlog.sample_resources(providers, phase="swept")
    meta["epochs"] = epochs + [{
        "start_day": last_day + 1, "days": args.days, "seed": epoch_seed,
    }]
    meta["last_day"] = last_day + args.days
    store.set_meta(meta)

    print(narrate_sweep(report))
    exact = report.changed_asns == stats.changed_asns
    print(f"reclassified {report.reclassified} ASes "
          f"({len(report.new_asns)} new, "
          f"{len(report.updated_asns)} updated)")
    print(f"reclassified exactly the churned set: {exact}")
    if args.metrics_out:
        _write_metrics(registry, args.metrics_out)
    _finish_runlog(
        runlog, registry, built, built.asdb.dataset,
        reclassified=report.reclassified, exact=exact,
    )
    built.asdb.dataset.close()
    return 0 if exact else 1


def _format_asns(asns: Tuple[int, ...], limit: int = 12) -> str:
    shown = ", ".join(f"AS{asn}" for asn in asns[:limit])
    extra = len(asns) - limit
    return shown + (f", (+{extra} more)" if extra > 0 else "")


def _store_scratch_url(url: str, tag: str) -> str:
    """Derive a per-version scratch store URL (``sqlite:PATH`` ->
    ``sqlite:PATH.TAG``); ``memory:`` stays as-is."""
    scheme, _, rest = url.partition(":")
    if scheme == "memory" or (scheme and not rest and url == "memory"):
        return "memory:"
    if rest:
        return f"{scheme}:{rest}.{tag}"
    return f"{url}.{tag}"


def _cmd_diff(args: argparse.Namespace) -> int:
    store = SnapshotStore(args.store)
    old = args.from_version
    new = args.to_version
    if new is None:
        new = len(store)
    if old is None:
        old = new - 1
    try:
        if args.dataset_store is not None:
            # Materialize each side into a scratch store, then diff by
            # streaming both cursors through the ordered merge — the
            # versions never sit in memory together.
            old_ds = open_store(
                _store_scratch_url(args.dataset_store, f"v{old}")
            )
            new_ds = open_store(
                _store_scratch_url(args.dataset_store, f"v{new}")
            )
            store.load(old, into=old_ds)
            store.load(new, into=new_ds)
            diff = diff_stores(new_ds, old_ds)
            old_ds.close()
            new_ds.close()
        else:
            diff = store.diff(old, new)
    except (SnapshotError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({
            "from": old,
            "to": new,
            "added": list(diff.added),
            "removed": list(diff.removed),
            "relabeled": list(diff.relabeled),
            "stage_changed": list(diff.stage_changed),
        }, indent=2))
        return 0
    print(f"v{old} -> v{new}: {len(diff.added)} added, "
          f"{len(diff.removed)} removed, {len(diff.relabeled)} "
          f"relabeled, {len(diff.stage_changed)} stage-changed")
    for title, asns in (
        ("added", diff.added),
        ("removed", diff.removed),
        ("relabeled", diff.relabeled),
        ("stage-changed", diff.stage_changed),
    ):
        if asns:
            print(f"  {title}: {_format_asns(asns)}")
    if diff.empty:
        print("  (datasets are classification-identical)")
    return 0


def _cmd_asof(args: argparse.Namespace) -> int:
    if (args.version is None) == (args.day is None):
        print("error: provide exactly one of --version or --day",
              file=sys.stderr)
        return 2
    if args.out and not (args.out.endswith(".csv")
                         or args.out.endswith(".json")):
        print("error: --out must end in .csv or .json", file=sys.stderr)
        return 2
    history = ReleaseHistory(SnapshotStore(args.store))
    into = None
    try:
        if args.dataset_store is not None:
            into = open_store(args.dataset_store)
        dataset, info = history.asof(
            version=args.version, day=args.day, into=into
        )
    except (SnapshotError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    asked = (f"day {args.day}" if args.day is not None
             else f"v{args.version}")
    window = (f"({info.since_day}, {info.through_day}]"
              if info.through_day is not None else "(no sweep window)")
    print(f"as of {asked}: v{info.version} ({info.kind}, "
          f"window {window})")
    print(f"  records: {info.record_count}  digest: {info.digest} "
          f"(verified)")
    if args.out:
        with open(args.out, "w") as handle:
            if args.out.endswith(".json"):
                write_json(dataset, handle)
            else:
                write_csv(dataset, handle)
        print(f"wrote {args.out}")
    dataset.close()
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    store = SnapshotStore(args.store)
    try:
        events = ReleaseHistory(store).timeline(args.asn)
    except SnapshotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({
            "asn": args.asn,
            "versions": len(store),
            "events": [event.to_dict() for event in events],
        }, indent=2))
        return 0
    if not events:
        print(f"AS{args.asn} never appears in {args.store} "
              f"({len(store)} versions)")
        return 0
    rows = []
    for event in events:
        item = event.item or {}
        window = (f"({event.since_day}, {event.through_day}]"
                  if event.through_day is not None else "-")
        rows.append([
            f"v{event.version}",
            window,
            event.change,
            categorization(event.item) if event.item is not None
            else "-",
            str(item.get("stage", "-")),
        ])
    print(render_table(
        ["Version", "Window", "Change", "Categories", "Stage"],
        rows,
        title=f"AS{args.asn} classification timeline",
    ))
    return 0


def _cmd_churn(args: argparse.Namespace) -> int:
    store = SnapshotStore(args.store)
    new = args.to_version if args.to_version is not None else len(store)
    old = args.from_version if args.from_version is not None else new - 1
    try:
        report = ReleaseHistory(store).churn(old, new)
    except (SnapshotError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0
    print(f"v{old} -> v{new}: {report.added} added, "
          f"{report.removed} removed, {report.relabeled} relabeled, "
          f"{report.unchanged} unchanged "
          f"({report.old_records} -> {report.new_records} records)")
    if report.flows:
        print(render_table(
            ["From", "To", "ASes"],
            [[source, target, str(count)]
             for source, target, count in report.flows],
            title="Category flow",
        ))
    else:
        print("  (no category movement between these releases)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.compare is None and args.ledger is None:
        print("error: provide a LEDGER path or --compare A B",
              file=sys.stderr)
        return 2
    try:
        if args.compare is not None:
            a_path, b_path = args.compare
            print(render_compare(load_events(a_path),
                                 load_events(b_path), a_path, b_path))
        else:
            print(render_report(load_events(args.ledger), args.ledger))
    except (OSError, LedgerError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    try:
        events = load_events(args.ledger)
        rules = load_slos(args.slo)
    except (OSError, LedgerError, SloError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    results = evaluate_slos(events, rules)
    print(render_health(results))
    return 1 if any(not result.ok for result in results) else 0


def _build_serving_app(args: argparse.Namespace, registry, runlog):
    """Wire a ServingApp from the chosen source (snapshots, store, or
    a fresh classification pass).  Returns the app, or an exit code on
    a usage/source error."""
    from .serving import (
        ClassificationQueue,
        QueueWorker,
        ServingApp,
        history_from_snapshots,
        index_from_snapshots,
        index_from_store,
        refresh_history_from_snapshots,
        refresh_index_from_snapshots,
    )

    sources = sum(
        1 for flag in (args.snapshots, args.store) if flag is not None
    )
    if sources > 1:
        print("error: choose one of --snapshots or --store",
              file=sys.stderr)
        return 2
    if args.lazy and sources:
        print("error: --lazy only applies to fresh-world serving",
              file=sys.stderr)
        return 2

    if args.snapshots is not None:
        def rebuild(generation: int):
            return index_from_snapshots(
                args.snapshots, version=args.version,
                generation=generation,
            )

        def rebuild_history(generation: int):
            return history_from_snapshots(
                args.snapshots, generation=generation
            )

        try:
            index = rebuild(1)
            history = rebuild_history(1)
        except (SnapshotError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        # Delta-apply refresh only makes sense tracking the latest
        # release: a pinned --version always re-serves that version,
        # and --full-refresh opts out explicitly.
        incremental = args.version is None and not args.full_refresh
        return ServingApp(
            index, rebuild=rebuild, metrics=registry,
            runlog=runlog, retry_after=args.retry_after,
            history=history,
            rebuild_history=rebuild_history,
            refresh_incremental=(
                (lambda generation, previous:
                 refresh_index_from_snapshots(
                     args.snapshots, previous, generation))
                if incremental else None
            ),
            refresh_history_incremental=(
                (lambda generation, previous:
                 refresh_history_from_snapshots(
                     args.snapshots, previous, generation))
                if incremental else None
            ),
        )

    if args.store is not None:
        def rebuild(generation: int):
            # Reopen per rebuild: a sqlite store picks up rows written
            # by another process since the last swap, and the handle
            # never crosses threads.
            store = open_store(args.store)
            try:
                return index_from_store(
                    store, generation=generation, source=args.store
                )
            finally:
                store.close()

        try:
            index = rebuild(1)
        except StoreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return ServingApp(index, rebuild=rebuild, metrics=registry,
                          runlog=runlog, retry_after=args.retry_after)

    # Fresh world: classify (unless --lazy), then serve with on-demand
    # classification through the bounded background queue.
    world = generate_world(WorldConfig(n_orgs=args.n_orgs,
                                       seed=args.seed))
    built = build_asdb(
        world,
        SystemConfig(
            seed=args.seed,
            train_ml=not args.no_ml,
            metrics=registry,
            workers=args.workers,
            runlog=runlog if runlog.enabled else None,
        ),
    )
    if not args.lazy:
        built.asdb.classify_all()

    def rebuild(generation: int):
        return index_from_store(
            built.asdb.dataset, generation=generation, source="pipeline"
        )

    queue = ClassificationQueue(args.queue_size, metrics=registry)
    app = ServingApp(rebuild(1), rebuild=rebuild, queue=queue,
                     metrics=registry, runlog=runlog,
                     retry_after=args.retry_after)
    app.worker = QueueWorker(
        queue,
        classify=lambda asns: built.asdb.classify_batch(
            asns, workers=args.workers
        ),
        classify_one=built.asdb.classify,
        after=app.on_drained,
        batch_size=args.queue_batch,
    )
    return app


def _cmd_serve(args: argparse.Namespace) -> int:
    registry = MetricsRegistry()
    runlog = _open_runlog(args, "serve", {
        "snapshots": args.snapshots, "store": args.store,
        "n_orgs": args.n_orgs, "seed": args.seed,
    })
    app = _build_serving_app(args, registry, runlog)
    if isinstance(app, int):
        runlog.finish(status="error: bad serving source")
        return app

    async def _run() -> None:
        host, port = await app.start(args.host, args.port)
        print(f"serving on http://{host}:{port}", flush=True)
        print(f"index: {len(app.index)} records "
              f"(generation {app.index.version.generation})",
              flush=True)
        if app.history is not None:
            print(f"history: {app.history.latest_version} release(s) "
                  f"over {len(app.history)} ASes", flush=True)
        if args.ready_file:
            with open(args.ready_file, "w") as handle:
                handle.write(f"{host} {port}\n")
        try:
            if args.max_seconds is not None:
                await asyncio.sleep(args.max_seconds)
            else:
                await app.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await app.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    if args.metrics_out:
        _write_metrics(registry, args.metrics_out)
    requests = registry.counter(
        "asdb_serve_requests_total",
        labelnames=("endpoint", "status"),
    ).total()
    runlog.finish(status="ok", metrics=registry,
                  requests=int(requests))
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    from .whois import read_dump, write_dump

    if args.parse:
        try:
            with open(args.parse) as handle:
                registry = read_dump(handle)
        except OSError as exc:
            print(f"error: cannot read {args.parse}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 2
        print(f"parsed {len(registry)} AS objects from {args.parse}")
        stats = registry.field_availability()
        for fieldname, value in sorted(stats.items()):
            print(f"  {fieldname:8s} {value:.1%}")
        return 0
    world = generate_world(WorldConfig(n_orgs=args.n_orgs, seed=args.seed))
    if not args.out:
        print("error: provide --out FILE or --parse FILE",
              file=sys.stderr)
        return 2
    with open(args.out, "w") as handle:
        count = write_dump(world.registry, handle)
    print(f"wrote {count} AS objects to {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "classify": _cmd_classify,
        "lookup": _cmd_lookup,
        "evaluate": _cmd_evaluate,
        "taxonomy": _cmd_taxonomy,
        "dump": _cmd_dump,
        "stats": _cmd_stats,
        "snapshot": _cmd_snapshot,
        "refresh": _cmd_refresh,
        "diff": _cmd_diff,
        "asof": _cmd_asof,
        "timeline": _cmd_timeline,
        "churn": _cmd_churn,
        "report": _cmd_report,
        "health": _cmd_health,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


def run(argv: Optional[List[str]] = None) -> int:
    """Process entry point: :func:`main` plus pipe-friendly exits.

    Piping CLI output to ``head``/``less`` closes stdout early; Python
    turns the ignored SIGPIPE into :class:`BrokenPipeError` on the next
    write.  A traceback there is noise — the reader got everything it
    asked for.  This boundary flushes what it can, points the stdout
    file descriptor at ``/dev/null`` (so interpreter shutdown cannot
    trip over the dead pipe again), and exits 0: where a SIGPIPE-killed
    process would report 141, the truncation is deliberate here, so the
    quiet success exit is too.  Ctrl-C exits 130 like a signal-killed
    process.
    """
    try:
        code = main(argv)
        sys.stdout.flush()
        return code
    except BrokenPipeError:
        try:
            sys.stderr.flush()
        except (OSError, ValueError):
            pass
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        except (OSError, ValueError, AttributeError,
                io.UnsupportedOperation):
            pass
        return 0
    except KeyboardInterrupt:
        return 130
