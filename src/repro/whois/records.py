"""Data model for RIR WHOIS information about Autonomous Systems.

Two representations exist:

* :class:`RawWhoisObject` - the semi-structured text blob a Regional Internet
  Registry publishes for an AS (what bulk WHOIS dumps contain);
* :class:`ParsedWhois` - the structured fields our parsers recover from it.

Each of the five RIRs formats its data differently and omits different
fields; :class:`RIR` enumerates them and records their quirks (paper
Appendix A), which the renderers and parsers in this package honor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["RIR", "RawWhoisObject", "ParsedWhois"]


class RIR(enum.Enum):
    """The five Regional Internet Registries."""

    ARIN = "arin"
    RIPE = "ripe"
    APNIC = "apnic"
    AFRINIC = "afrinic"
    LACNIC = "lacnic"

    @property
    def provides_phone(self) -> bool:
        """APNIC and ARIN provide contact phone numbers for 100% of their
        ASes; no other RIR provides phone numbers (Appendix A)."""
        return self in (RIR.APNIC, RIR.ARIN)

    @property
    def provides_emails(self) -> bool:
        """LACNIC does not provide domains or contact emails (Appendix A)."""
        return self is not RIR.LACNIC

    @property
    def rpsl_style(self) -> bool:
        """RIPE, APNIC, and AFRINIC publish RPSL-style ``key: value``
        objects; ARIN and LACNIC use their own layouts."""
        return self in (RIR.RIPE, RIR.APNIC, RIR.AFRINIC)


@dataclass(frozen=True)
class RawWhoisObject:
    """A raw WHOIS text blob for one AS, as published by one RIR.

    Attributes:
        rir: The registry that published the object.
        asn: The autonomous system number the object describes.
        text: The semi-structured record text.
    """

    rir: RIR
    asn: int
    text: str


@dataclass(frozen=True)
class ParsedWhois:
    """Structured fields recovered from a :class:`RawWhoisObject`.

    All fields except ``asn``, ``rir`` and ``as_name`` are optional: RIRs
    inconsistently collect and publish them (Section 2).  Tuples are used for
    multi-valued fields so instances stay hashable.

    Attributes:
        asn: Autonomous system number.
        rir: Source registry.
        as_name: The registered AS handle (always present).
        org_name: Organization name (present for ~80% of ASes).
        description: Free-text description lines, joined (present ~25%).
        address_lines: Street address lines as published (possibly
            ``*``-obfuscated for AFRINIC).
        city: City, when published separately (LACNIC).
        country: ISO-3166 alpha-2 country code.
        phone: Contact phone number (APNIC/ARIN only).
        emails: Contact / abuse email addresses.
        remarks: Free-text remark lines (may contain URLs).
    """

    asn: int
    rir: RIR
    as_name: str
    org_name: Optional[str] = None
    description: Optional[str] = None
    address_lines: Tuple[str, ...] = ()
    city: Optional[str] = None
    country: Optional[str] = None
    phone: Optional[str] = None
    emails: Tuple[str, ...] = ()
    remarks: Tuple[str, ...] = ()

    @property
    def has_some_name(self) -> bool:
        """Whether any form of name is present (true for 100% of RIR
        records, per Section 3.1)."""
        return bool(self.org_name or self.description or self.as_name)
