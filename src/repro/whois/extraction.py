"""RIR data extraction (paper Appendix A).

Turns a :class:`~repro.whois.records.ParsedWhois` into the clean
:class:`ExtractedContact` the rest of the pipeline consumes:

* **Name** - extracted in the paper's preference order: organization name
  (provided for 80.19% of ASes), description (24.81%), then AS name (100%).
* **Street address** - per-RIR: RIPE has no address field so the description
  is used; AFRINIC addresses are 92% ``*``-obfuscated so masked parts are
  removed; LACNIC provides only city and country.
* **Phone** - only APNIC and ARIN publish phone numbers.
* **Domains** - candidate domains come from contact-email hosts plus a URL
  regex over the remarks; LACNIC provides neither.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .records import RIR, ParsedWhois

__all__ = ["ExtractedContact", "extract", "extract_domains", "domain_of_email"]

_URL_RE = re.compile(
    r"(?:https?://)?(?:www\.)?"
    r"([A-Za-z0-9](?:[A-Za-z0-9-]*[A-Za-z0-9])?"
    r"(?:\.[A-Za-z0-9](?:[A-Za-z0-9-]*[A-Za-z0-9])?)+)"
)
_OBFUSCATED_RE = re.compile(r"^\*+$")


@dataclass(frozen=True)
class ExtractedContact:
    """Clean organization contact data extracted from WHOIS.

    Attributes:
        asn: Autonomous system number.
        name: Best-available organization name (never empty; Section 3.1
            reports 100% of RIR records have some form of name).
        name_source: Which field supplied the name: ``"org"``,
            ``"description"`` or ``"as-name"``.
        address: Street address, joined, or None.
        city: City, when separately available.
        country: ISO country code, or None.
        phone: Phone number, or None.
        emails: Contact emails.
        candidate_domains: Domains pooled from emails and remark URLs, in
            discovery order, deduplicated.
    """

    asn: int
    name: str
    name_source: str
    address: Optional[str] = None
    city: Optional[str] = None
    country: Optional[str] = None
    phone: Optional[str] = None
    emails: Tuple[str, ...] = ()
    candidate_domains: Tuple[str, ...] = ()


def domain_of_email(email: str) -> Optional[str]:
    """The domain part of an email address, lowercased, or None."""
    _, _, host = email.partition("@")
    host = host.strip().lower().rstrip(".")
    return host or None


def _extract_name(record: ParsedWhois) -> Tuple[str, str]:
    if record.org_name:
        return record.org_name, "org"
    if record.description:
        return record.description.splitlines()[0], "description"
    return record.as_name, "as-name"


def _extract_address(record: ParsedWhois) -> Optional[str]:
    if record.rir is RIR.RIPE:
        # RIPE has no address field; the description doubles as location.
        return record.description
    if record.rir is RIR.LACNIC:
        # Only city/country available; handled by the city field.
        return None
    lines: List[str] = []
    for line in record.address_lines:
        # Drop AFRINIC-style fully obfuscated parts, keep readable ones.
        parts = [
            part.strip()
            for part in line.split(",")
            if part.strip() and not _OBFUSCATED_RE.match(part.strip())
        ]
        if parts:
            lines.append(", ".join(parts))
    return "; ".join(lines) or None


def extract_domains(record: ParsedWhois) -> Tuple[str, ...]:
    """Candidate organization domains from emails and remark URLs.

    LACNIC records yield nothing: LACNIC publishes neither contact emails
    nor remarks with URLs (Appendix A).
    """
    if record.rir is RIR.LACNIC:
        return ()
    found: List[str] = []
    for email in record.emails:
        host = domain_of_email(email)
        if host:
            found.append(host)
    for remark in record.remarks:
        for match in _URL_RE.finditer(remark):
            host = match.group(1).lower()
            # Require at least one dot and an alphabetic TLD to avoid
            # matching version numbers and the like.
            tld = host.rsplit(".", 1)[-1]
            if "." in host and tld.isalpha() and len(tld) >= 2:
                found.append(host)
    return tuple(dict.fromkeys(found))


def extract(record: ParsedWhois) -> ExtractedContact:
    """Extract the full contact bundle from one parsed WHOIS record."""
    name, name_source = _extract_name(record)
    return ExtractedContact(
        asn=record.asn,
        name=name,
        name_source=name_source,
        address=_extract_address(record),
        city=record.city,
        country=record.country,
        phone=record.phone,
        emails=record.emails,
        candidate_domains=extract_domains(record),
    )
