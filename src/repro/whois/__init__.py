"""WHOIS substrate: RIR record model, renderers, parsers, extraction.

This package stands in for bulk RIR WHOIS dumps.  The synthetic world
(:mod:`repro.world`) renders raw per-RIR text via :mod:`repro.whois.render`;
the ASdb pipeline recovers structure via :mod:`repro.whois.parsers` and
applies the paper's Appendix-A extraction via
:mod:`repro.whois.extraction`.
"""

from .as2org import As2OrgInferrer, As2OrgMap, InferredOrg
from .dump import iter_dump_objects, read_dump, write_dump
from .extraction import ExtractedContact, extract, extract_domains
from .parsers import parse
from .records import RIR, ParsedWhois, RawWhoisObject
from .registry import RegistryEntry, WhoisRegistry
from .render import WhoisFacts, render

__all__ = [
    "RIR",
    "RawWhoisObject",
    "ParsedWhois",
    "WhoisFacts",
    "render",
    "parse",
    "extract",
    "extract_domains",
    "ExtractedContact",
    "WhoisRegistry",
    "RegistryEntry",
    "As2OrgInferrer",
    "As2OrgMap",
    "InferredOrg",
    "write_dump",
    "read_dump",
    "iter_dump_objects",
]
