"""Per-RIR WHOIS text renderers.

Given the facts that should appear in a record, these renderers produce raw
text in each registry's native layout:

* **RIPE / APNIC / AFRINIC** - RPSL-style ``key: value`` objects
  (``aut-num`` + ``organisation`` blocks);
* **ARIN** - the ``ASNumber`` / ``OrgName`` / ``Address`` report layout;
* **LACNIC** - the minimal ``aut-num`` / ``owner`` layout with only city and
  country location data and no contact emails.

The renderers exist so the synthetic world produces *realistic raw inputs*:
the ASdb pipeline only ever sees raw text and must recover structure through
:mod:`repro.whois.parsers`, exactly as the real system bootstraps from bulk
WHOIS dumps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .records import RIR, RawWhoisObject

__all__ = ["WhoisFacts", "render"]


@dataclass(frozen=True)
class WhoisFacts:
    """The facts a WHOIS record should carry, before RIR formatting.

    The synthetic world generator decides which optional fields are present
    (honoring the paper's measured availability rates) and the renderer lays
    them out in the target RIR's format.

    Attributes:
        asn: Autonomous system number.
        as_name: Registered AS handle (e.g. ``"EXAMPLENET-AS"``).
        org_name: Organization name, or None if the RIR record lacks one.
        description: Free-text description, or None.
        address_lines: Street address lines (empty if unavailable).
        city: City name (used by LACNIC, which publishes no street address).
        country: ISO-3166 alpha-2 code, or None.
        phone: Contact phone, or None (only rendered by APNIC/ARIN).
        emails: Contact/abuse emails (never rendered by LACNIC).
        remark_urls: URLs that should appear in free-text remarks.
        obfuscate_address: AFRINIC-style ``*`` masking of street parts
            (92% of AFRINIC entries do this, Appendix A).
    """

    asn: int
    as_name: str
    org_name: Optional[str] = None
    description: Optional[str] = None
    address_lines: Tuple[str, ...] = ()
    city: Optional[str] = None
    country: Optional[str] = None
    phone: Optional[str] = None
    emails: Tuple[str, ...] = ()
    remark_urls: Tuple[str, ...] = ()
    obfuscate_address: bool = False


def render(facts: WhoisFacts, rir: RIR) -> RawWhoisObject:
    """Render ``facts`` in ``rir``'s native layout."""
    if rir.rpsl_style:
        text = _render_rpsl(facts, rir)
    elif rir is RIR.ARIN:
        text = _render_arin(facts)
    else:
        text = _render_lacnic(facts)
    return RawWhoisObject(rir=rir, asn=facts.asn, text=text)


def _kv(key: str, value: str) -> str:
    return f"{key}:{' ' * max(1, 16 - len(key) - 1)}{value}"


def _obfuscate(line: str) -> str:
    """AFRINIC-style masking: replace the street part with ``*``s."""
    return "*" * max(4, len(line.split(",")[0]))


def _render_rpsl(facts: WhoisFacts, rir: RIR) -> str:
    source = rir.value.upper()
    lines: List[str] = [_kv("aut-num", f"AS{facts.asn}")]
    lines.append(_kv("as-name", facts.as_name))
    if facts.description:
        for chunk in facts.description.splitlines():
            lines.append(_kv("descr", chunk))
    org_handle = f"ORG-{facts.as_name[:4].upper().replace(' ', '')}{facts.asn % 100}-{source}"
    if facts.org_name:
        lines.append(_kv("org", org_handle))
    for url in facts.remark_urls:
        lines.append(_kv("remarks", f"see {url} for details"))
    if facts.emails and rir.provides_emails:
        lines.append(_kv("abuse-mailbox", facts.emails[0]))
    if facts.country and not facts.org_name:
        # Org-less records still carry a country (99.7% of RIR records
        # have one, Section 3.1).
        lines.append(_kv("country", facts.country))
    lines.append(_kv("source", source))

    if facts.org_name:
        lines.append("")
        lines.append(_kv("organisation", org_handle))
        lines.append(_kv("org-name", facts.org_name))
        # RIPE has no address field (Appendix A); APNIC and AFRINIC do.
        if rir in (RIR.APNIC, RIR.AFRINIC) and facts.address_lines:
            for address_line in facts.address_lines:
                if facts.obfuscate_address and rir is RIR.AFRINIC:
                    lines.append(_kv("address", _obfuscate(address_line)))
                else:
                    lines.append(_kv("address", address_line))
            if facts.obfuscate_address and rir is RIR.AFRINIC:
                # City/state/country remain readable after obfuscation.
                if facts.city:
                    lines.append(_kv("address", facts.city))
        if facts.country:
            lines.append(_kv("country", facts.country))
        if facts.phone and rir.provides_phone:
            lines.append(_kv("phone", facts.phone))
        if rir.provides_emails:
            for email in facts.emails[1:]:
                lines.append(_kv("e-mail", email))
        lines.append(_kv("source", source))
    return "\n".join(lines) + "\n"


def _render_arin(facts: WhoisFacts) -> str:
    lines: List[str] = [
        f"ASNumber:       {facts.asn}",
        f"ASName:         {facts.as_name}",
        f"ASHandle:       AS{facts.asn}",
    ]
    if facts.org_name:
        lines.append(f"OrgName:        {facts.org_name}")
        org_id = facts.org_name[:6].upper().replace(" ", "").replace(",", "")
        lines.append(f"OrgId:          {org_id or 'ORG'}-{facts.asn % 1000}")
    # ARIN entries contain the entire street address 100% of the time
    # (Appendix A) - the generator always supplies address lines for ARIN.
    for address_line in facts.address_lines:
        lines.append(f"Address:        {address_line}")
    if facts.city:
        lines.append(f"City:           {facts.city}")
    if facts.country:
        lines.append(f"Country:        {facts.country}")
    if facts.phone:
        lines.append(f"OrgPhone:       {facts.phone}")
    if facts.emails:
        lines.append(f"OrgAbuseEmail:  {facts.emails[0]}")
        for email in facts.emails[1:]:
            lines.append(f"OrgTechEmail:   {email}")
    if facts.description:
        lines.append(f"Comment:        {facts.description}")
    for url in facts.remark_urls:
        lines.append(f"Comment:        {url}")
    return "\n".join(lines) + "\n"


def _render_lacnic(facts: WhoisFacts) -> str:
    # LACNIC provides no street address, no domains, no contact emails;
    # only owner, city and country (Appendix A).
    lines: List[str] = [
        f"aut-num:     AS{facts.asn}",
        f"owner:       {facts.org_name or facts.as_name}",
    ]
    if facts.description:
        lines.append(f"responsible: {facts.description}")
    if facts.city:
        lines.append(f"city:        {facts.city}")
    if facts.country:
        lines.append(f"country:     {facts.country}")
    lines.append("source:      LACNIC")
    return "\n".join(lines) + "\n"
