"""AS-to-organization inference (Cai et al. [31] / CAIDA AS2org).

The paper leans on AS-to-organization mapping twice: CAIDA's AS2org
dataset supplies country information for 32% of ASes (Appendix A), and
ASdb's own organization cache needs to recognize that two ASes belong to
the same owner before any classification happens.

:class:`As2OrgInferrer` reimplements the core of the Cai et al.
methodology over parsed WHOIS: cluster AS records whose organization
evidence matches - exact org-name token sets, shared contact-email
domains (minus public mail providers), or near-identical names.  The
output is an inferred org id per ASN plus per-org country information,
evaluated against ground truth by the accompanying tests/bench.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..world.calibration import MATCHING
from ..world.names import token_set
from .extraction import ExtractedContact, extract
from .registry import WhoisRegistry

__all__ = ["InferredOrg", "As2OrgMap", "As2OrgInferrer"]


@dataclass(frozen=True)
class InferredOrg:
    """One inferred organization cluster.

    Attributes:
        org_ref: Stable identifier of the cluster.
        asns: Member ASNs.
        name: Representative organization name.
        country: Majority country across member records, or None.
        domains: Contact domains observed across members.
    """

    org_ref: str
    asns: Tuple[int, ...]
    name: str
    country: Optional[str]
    domains: Tuple[str, ...]


class As2OrgMap:
    """The inference result: ASN -> inferred organization."""

    def __init__(self, orgs: List[InferredOrg]) -> None:
        self._orgs = {org.org_ref: org for org in orgs}
        self._by_asn: Dict[int, str] = {}
        for org in orgs:
            for asn in org.asns:
                self._by_asn[asn] = org.org_ref

    def org_of(self, asn: int) -> Optional[InferredOrg]:
        """The inferred organization of an ASN, if mapped."""
        ref = self._by_asn.get(asn)
        return self._orgs[ref] if ref else None

    def country_of(self, asn: int) -> Optional[str]:
        """Appendix-A use case: AS2org-derived country information."""
        org = self.org_of(asn)
        return org.country if org else None

    def orgs(self) -> List[InferredOrg]:
        """All inferred organizations, by org_ref."""
        return [self._orgs[ref] for ref in sorted(self._orgs)]

    def __len__(self) -> int:
        return len(self._orgs)

    def siblings(self, asn: int) -> Tuple[int, ...]:
        """Other ASNs inferred to share this ASN's organization."""
        org = self.org_of(asn)
        if org is None:
            return ()
        return tuple(a for a in org.asns if a != asn)


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}

    def add(self, item: int) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[max(root_a, root_b)] = min(root_a, root_b)

    def groups(self) -> Dict[int, List[int]]:
        grouped: Dict[int, List[int]] = defaultdict(list)
        for item in self._parent:
            grouped[self.find(item)].append(item)
        return grouped


class As2OrgInferrer:
    """Clusters AS WHOIS records into inferred organizations.

    Evidence joining two ASes into one organization:

    * identical organization-name token sets (legal suffixes stripped);
    * a shared contact-email domain that is not a public mail provider
      and not an upstream-provider domain appearing across too many
      distinct names (the ``provider_domain_threshold``).

    Args:
        provider_domain_threshold: A shared domain only counts as
            organization evidence when it spans fewer than this many
            distinct org-name keys (filters big ISPs' NOC domains).
    """

    def __init__(self, provider_domain_threshold: int = 4) -> None:
        self._provider_threshold = provider_domain_threshold

    def infer(self, registry: WhoisRegistry) -> As2OrgMap:
        """Run the inference over a bulk registry."""
        contacts: Dict[int, ExtractedContact] = {
            parsed.asn: extract(parsed)
            for parsed in registry.iter_parsed()
        }
        uf = _UnionFind()
        for asn in contacts:
            uf.add(asn)

        # Evidence 1: identical name token sets.
        by_name_key: Dict[str, List[int]] = defaultdict(list)
        for asn, contact in contacts.items():
            key = " ".join(sorted(token_set(contact.name)))
            if key:
                by_name_key[key].append(asn)
        for members in by_name_key.values():
            for other in members[1:]:
                uf.union(members[0], other)

        # Evidence 2: shared non-provider contact domains.
        providers = set(MATCHING.email_domain_top10)
        by_domain: Dict[str, List[int]] = defaultdict(list)
        domain_names: Dict[str, Set[str]] = defaultdict(set)
        for asn, contact in contacts.items():
            for domain in contact.candidate_domains:
                if domain in providers:
                    continue
                by_domain[domain].append(asn)
                domain_names[domain].add(
                    " ".join(sorted(token_set(contact.name)))
                )
        for domain, members in by_domain.items():
            if len(domain_names[domain]) >= self._provider_threshold:
                continue  # looks like an upstream provider's domain
            for other in members[1:]:
                uf.union(members[0], other)

        orgs: List[InferredOrg] = []
        for index, (root, members) in enumerate(
            sorted(uf.groups().items())
        ):
            members.sort()
            names = Counter(
                contacts[asn].name for asn in members
            )
            countries = Counter(
                contacts[asn].country
                for asn in members
                if contacts[asn].country
            )
            domains: List[str] = []
            for asn in members:
                for domain in contacts[asn].candidate_domains:
                    if domain not in domains and domain not in providers:
                        domains.append(domain)
            orgs.append(
                InferredOrg(
                    org_ref=f"inferred-{index:06d}",
                    asns=tuple(members),
                    name=names.most_common(1)[0][0],
                    country=(
                        countries.most_common(1)[0][0]
                        if countries
                        else None
                    ),
                    domains=tuple(domains),
                )
            )
        return As2OrgMap(orgs)
