"""Parsers that recover structured fields from raw per-RIR WHOIS text.

WHOIS data is only semi-structured (Section 2): each registry uses its own
layout, key names, and omissions.  These parsers are intentionally defensive
- they tolerate unknown keys, repeated keys, and missing blocks - because the
pipeline must handle arbitrary bulk-dump content without crashing.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .records import RIR, ParsedWhois, RawWhoisObject

__all__ = ["parse", "parse_rpsl", "parse_arin", "parse_lacnic"]

_EMAIL_RE = re.compile(r"[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}")


def parse(obj: RawWhoisObject) -> ParsedWhois:
    """Parse a raw WHOIS object using the appropriate RIR dialect."""
    if obj.rir.rpsl_style:
        return parse_rpsl(obj)
    if obj.rir is RIR.ARIN:
        return parse_arin(obj)
    return parse_lacnic(obj)


def _rpsl_pairs(text: str) -> List[Tuple[str, str]]:
    """Split RPSL text into ordered (key, value) pairs, skipping blanks."""
    pairs: List[Tuple[str, str]] = []
    for line in text.splitlines():
        if not line.strip() or line.startswith("%"):
            continue
        if ":" not in line:
            # Continuation line: append to the previous value.
            if pairs:
                key, value = pairs[-1]
                pairs[-1] = (key, f"{value} {line.strip()}")
            continue
        key, _, value = line.partition(":")
        pairs.append((key.strip().lower(), value.strip()))
    return pairs


def parse_rpsl(obj: RawWhoisObject) -> ParsedWhois:
    """Parse a RIPE / APNIC / AFRINIC RPSL-style object."""
    pairs = _rpsl_pairs(obj.text)
    as_name = ""
    org_name: Optional[str] = None
    descriptions: List[str] = []
    addresses: List[str] = []
    country: Optional[str] = None
    phone: Optional[str] = None
    emails: List[str] = []
    remarks: List[str] = []
    asn = obj.asn
    for key, value in pairs:
        if key == "aut-num":
            match = re.match(r"AS(\d+)", value, re.IGNORECASE)
            if match:
                asn = int(match.group(1))
        elif key == "as-name":
            as_name = value
        elif key == "descr":
            descriptions.append(value)
        elif key == "org-name":
            org_name = value
        elif key == "address":
            addresses.append(value)
        elif key == "country":
            country = country or value
        elif key == "phone":
            phone = phone or value
        elif key in ("abuse-mailbox", "e-mail", "email"):
            emails.extend(_EMAIL_RE.findall(value))
        elif key == "remarks":
            remarks.append(value)
    return ParsedWhois(
        asn=asn,
        rir=obj.rir,
        as_name=as_name,
        org_name=org_name,
        description="\n".join(descriptions) or None,
        address_lines=tuple(addresses),
        city=None,
        country=country,
        phone=phone,
        emails=tuple(dict.fromkeys(emails)),
        remarks=tuple(remarks),
    )


def parse_arin(obj: RawWhoisObject) -> ParsedWhois:
    """Parse an ARIN report-layout object."""
    as_name = ""
    org_name: Optional[str] = None
    addresses: List[str] = []
    city: Optional[str] = None
    country: Optional[str] = None
    phone: Optional[str] = None
    emails: List[str] = []
    remarks: List[str] = []
    asn = obj.asn
    for line in obj.text.splitlines():
        if ":" not in line:
            continue
        key, _, value = line.partition(":")
        key = key.strip().lower()
        value = value.strip()
        if not value:
            continue
        if key == "asnumber":
            try:
                asn = int(value)
            except ValueError:
                pass
        elif key == "asname":
            as_name = value
        elif key == "orgname":
            org_name = value
        elif key == "address":
            addresses.append(value)
        elif key == "city":
            city = value
        elif key == "country":
            country = value
        elif key in ("orgphone", "orgtechphone", "orgabusephone"):
            phone = phone or value
        elif key in ("orgabuseemail", "orgtechemail", "orgnocemail"):
            emails.extend(_EMAIL_RE.findall(value))
        elif key == "comment":
            remarks.append(value)
    return ParsedWhois(
        asn=asn,
        rir=RIR.ARIN,
        as_name=as_name,
        org_name=org_name,
        description=None,
        address_lines=tuple(addresses),
        city=city,
        country=country,
        phone=phone,
        emails=tuple(dict.fromkeys(emails)),
        remarks=tuple(remarks),
    )


def parse_lacnic(obj: RawWhoisObject) -> ParsedWhois:
    """Parse a LACNIC minimal-layout object."""
    as_name = ""
    org_name: Optional[str] = None
    description: Optional[str] = None
    city: Optional[str] = None
    country: Optional[str] = None
    asn = obj.asn
    for line in obj.text.splitlines():
        if ":" not in line:
            continue
        key, _, value = line.partition(":")
        key = key.strip().lower()
        value = value.strip()
        if not value:
            continue
        if key == "aut-num":
            match = re.match(r"AS(\d+)", value, re.IGNORECASE)
            if match:
                asn = int(match.group(1))
        elif key == "owner":
            org_name = value
            as_name = as_name or value
        elif key == "responsible":
            description = value
        elif key == "city":
            city = value
        elif key == "country":
            country = value
    return ParsedWhois(
        asn=asn,
        rir=RIR.LACNIC,
        as_name=as_name,
        org_name=org_name,
        description=description,
        address_lines=(),
        city=city,
        country=country,
        phone=None,
        emails=(),
        remarks=(),
    )
