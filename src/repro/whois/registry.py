"""A bulk WHOIS registry: the pipeline's view of "all registered ASes".

:class:`WhoisRegistry` stores raw per-RIR WHOIS objects keyed by ASN and
provides parsed/extracted access.  It also supports the registration and
metadata-churn events that Section 5.3's maintenance analysis needs: new
records can be added and existing ones replaced, with a monotonically
increasing ``version`` so consumers can detect change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from . import extraction, parsers
from .records import RIR, ParsedWhois, RawWhoisObject

__all__ = ["WhoisRegistry", "RegistryEntry"]


@dataclass(frozen=True)
class RegistryEntry:
    """One AS's registry state: raw object plus bookkeeping.

    Attributes:
        raw: The current raw WHOIS object.
        version: Starts at 1, bumped on every metadata update.
        registered_day: Simulation day the AS was first registered.
        updated_day: Simulation day of the last metadata change.
    """

    raw: RawWhoisObject
    version: int = 1
    registered_day: int = 0
    updated_day: int = 0


class WhoisRegistry:
    """An in-memory bulk WHOIS dump with update tracking."""

    def __init__(self) -> None:
        self._entries: Dict[int, RegistryEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, asn: int) -> bool:
        return asn in self._entries

    def asns(self) -> List[int]:
        """All registered ASNs, ascending."""
        return sorted(self._entries)

    def register(
        self, raw: RawWhoisObject, day: int = 0
    ) -> RegistryEntry:
        """Register a new AS.  Raises if the ASN already exists."""
        if raw.asn in self._entries:
            raise ValueError(f"AS{raw.asn} already registered")
        entry = RegistryEntry(
            raw=raw, version=1, registered_day=day, updated_day=day
        )
        self._entries[raw.asn] = entry
        return entry

    def update(self, raw: RawWhoisObject, day: int = 0) -> RegistryEntry:
        """Replace an existing AS's raw object (ownership-metadata churn)."""
        old = self._entries.get(raw.asn)
        if old is None:
            raise KeyError(f"AS{raw.asn} not registered")
        entry = RegistryEntry(
            raw=raw,
            version=old.version + 1,
            registered_day=old.registered_day,
            updated_day=day,
        )
        self._entries[raw.asn] = entry
        return entry

    def entry(self, asn: int) -> RegistryEntry:
        """The registry entry for an ASN (KeyError if absent)."""
        return self._entries[asn]

    def raw(self, asn: int) -> RawWhoisObject:
        """The raw WHOIS object for an ASN."""
        return self._entries[asn].raw

    def parsed(self, asn: int) -> ParsedWhois:
        """Parse the raw object for an ASN."""
        return parsers.parse(self._entries[asn].raw)

    def contact(self, asn: int) -> extraction.ExtractedContact:
        """Parse + Appendix-A extraction for an ASN."""
        return extraction.extract(self.parsed(asn))

    def iter_parsed(self) -> Iterator[ParsedWhois]:
        """Iterate parsed records in ASN order."""
        for asn in self.asns():
            yield self.parsed(asn)

    def changed_since(
        self, day: int, through: Optional[int] = None
    ) -> List[int]:
        """ASNs registered or updated strictly after simulation ``day``.

        ``through`` bounds the window from above (inclusive): a change
        dated later than ``through`` is invisible, so a maintenance
        sweep covering ``(day, through]`` never picks up registrations
        dated after its own cutoff — those belong to the next sweep.
        With ``through=None`` the window is unbounded (legacy shape).
        """

        def in_window(changed_day: int) -> bool:
            return changed_day > day and (
                through is None or changed_day <= through
            )

        return sorted(
            asn
            for asn, entry in self._entries.items()
            if in_window(entry.registered_day)
            or in_window(entry.updated_day)
        )

    def field_availability(self) -> Dict[str, float]:
        """Fraction of records carrying each extracted field.

        Mirrors the availability statistics the paper reports in Section
        3.1 (name 100%, country 99.7%, address 61.7%, phone 45%, domain
        87.1%); used by tests and the world-calibration bench.
        """
        total = len(self._entries)
        if not total:
            return {}
        counts = {
            "name": 0,
            "country": 0,
            "address": 0,
            "phone": 0,
            "domain": 0,
        }
        for asn in self._entries:
            contact = self.contact(asn)
            if contact.name:
                counts["name"] += 1
            if contact.country:
                counts["country"] += 1
            if contact.address or contact.city:
                counts["address"] += 1
            if contact.phone:
                counts["phone"] += 1
            if contact.candidate_domains:
                counts["domain"] += 1
        return {key: value / total for key, value in counts.items()}
