"""Bulk WHOIS dump files: serialize and load a registry.

Real RIRs publish bulk data as large text files of blank-line-separated
objects.  This module writes a :class:`~repro.whois.registry.WhoisRegistry`
in that shape (with a per-object source comment, as RIR dumps carry) and
loads such files back - including files assembled from *real* RIR data,
which makes the parsing half of the pipeline usable beyond the synthetic
world.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional, TextIO, Tuple

from .records import RIR, RawWhoisObject
from .registry import WhoisRegistry

__all__ = ["write_dump", "read_dump", "iter_dump_objects"]

_HEADER_RE = re.compile(r"^#\s*source=(\w+)\s+asn=(\d+)\s*$")
_ASN_RE = re.compile(r"^(?:aut-num|ASNumber):\s*(?:AS)?(\d+)", re.IGNORECASE | re.MULTILINE)


def write_dump(registry: WhoisRegistry, stream: TextIO) -> int:
    """Write every raw object to ``stream``; returns the object count.

    Each object is preceded by a ``# source=<rir> asn=<n>`` comment and
    followed by a blank line, mirroring RIR bulk-file conventions.
    """
    count = 0
    for asn in registry.asns():
        raw = registry.raw(asn)
        stream.write(f"# source={raw.rir.value} asn={raw.asn}\n")
        stream.write(raw.text.rstrip("\n"))
        stream.write("\n\n")
        count += 1
    return count


def _detect_rir(text: str) -> RIR:
    """Best-effort dialect detection for headerless objects."""
    lowered = text.lower()
    if "asnumber:" in lowered or "orgname:" in lowered:
        return RIR.ARIN
    for rir in (RIR.RIPE, RIR.APNIC, RIR.AFRINIC, RIR.LACNIC):
        if f"source:{'':8}{rir.value.upper()}".lower() in lowered.replace(
            " ", ""
        ):
            return rir
    if "owner:" in lowered and "responsible:" in lowered:
        return RIR.LACNIC
    return RIR.RIPE


def iter_dump_objects(stream: TextIO) -> Iterator[RawWhoisObject]:
    """Stream raw objects out of a dump file.

    Objects are blank-line separated.  The ``# source=... asn=...``
    header is honored when present; otherwise the RIR dialect and ASN
    are inferred from the object text.  Objects with no recoverable ASN
    are skipped.
    """
    rir: Optional[RIR] = None
    asn: Optional[int] = None
    lines: List[str] = []

    def flush() -> Optional[RawWhoisObject]:
        nonlocal rir, asn, lines
        text = "\n".join(lines).strip("\n")
        result = None
        if text:
            object_rir = rir if rir is not None else _detect_rir(text)
            object_asn = asn
            if object_asn is None:
                match = _ASN_RE.search(text)
                if match:
                    object_asn = int(match.group(1))
            if object_asn is not None:
                result = RawWhoisObject(
                    rir=object_rir, asn=object_asn, text=text + "\n"
                )
        rir, asn, lines = None, None, []
        return result

    for line in stream:
        line = line.rstrip("\n")
        header = _HEADER_RE.match(line)
        if header:
            flushed = flush()
            if flushed is not None:
                yield flushed
            rir = RIR(header.group(1))
            asn = int(header.group(2))
            continue
        if not line.strip():
            if rir is not None:
                # Inside a headered object: blank lines separate its
                # internal blocks (aut-num + organisation), not objects.
                lines.append(line)
                continue
            flushed = flush()
            if flushed is not None:
                yield flushed
            continue
        lines.append(line)
    flushed = flush()
    if flushed is not None:
        yield flushed


def read_dump(stream: TextIO) -> WhoisRegistry:
    """Load a dump file into a fresh registry (duplicate ASNs keep the
    first occurrence, as bulk processing pipelines conventionally do)."""
    registry = WhoisRegistry()
    for raw in iter_dump_objects(stream):
        if raw.asn in registry:
            continue
        registry.register(raw)
    return registry
