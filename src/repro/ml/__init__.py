"""From-scratch text-classification stack (Section 4.1, Figure 3).

Tokenizer, CountVectorizer, TF-IDF transformer, SGD classifier, metrics,
and the end-to-end web classification pipeline that flags ISPs and hosting
providers from scraped, translated website text.
"""

from .metrics import (
    ConfusionMatrix,
    accuracy,
    confusion_matrix,
    f1_score,
    precision,
    recall,
    roc_auc,
)
from .featcache import FeatureCache, FeatureCacheStats, content_digest
from .pipeline import (
    ClassifierVerdict,
    TextScorer,
    TrainingExample,
    WebClassificationPipeline,
)
from .sgd import SGDClassifier
from .tfidf import TfidfTransformer
from .tokenize import tokenize
from .training import build_training_examples
from .vectorize import CountVectorizer

__all__ = [
    "tokenize",
    "CountVectorizer",
    "TfidfTransformer",
    "SGDClassifier",
    "ConfusionMatrix",
    "confusion_matrix",
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "roc_auc",
    "TrainingExample",
    "ClassifierVerdict",
    "TextScorer",
    "WebClassificationPipeline",
    "FeatureCache",
    "FeatureCacheStats",
    "content_digest",
    "build_training_examples",
]
