"""Binary stochastic-gradient-descent classifier (from scratch).

The paper classifies TF-IDF features with "Stochastic Gradient Descent
classifiers - often used in text classification due to their scalability"
(Section 4.1).  This implementation supports hinge (linear SVM) and log
(logistic) losses with L2 regularization, an inverse-scaling learning rate,
optional class weighting for imbalanced data, and iterate averaging for
stability - all on numpy/scipy only.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from typing import Optional

__all__ = ["SGDClassifier"]


class SGDClassifier:
    """Binary linear classifier trained by SGD.

    Args:
        loss: ``"hinge"`` (SVM) or ``"log"`` (logistic regression).
        alpha: L2 regularization strength.
        epochs: Passes over the training data.
        learning_rate: Initial learning rate eta0 for the inverse-scaling
            schedule ``eta = eta0 / (1 + alpha * t)``.
        seed: Shuffling seed.
        class_weight: ``None`` or ``"balanced"``; balanced reweights each
            class inversely to its frequency (the paper balances hosting
            explicitly by oversampling, Table 2, but the knob is useful
            for ablations).
        average: Average the SGD iterates (Polyak averaging).
    """

    def __init__(
        self,
        loss: str = "hinge",
        alpha: float = 1e-4,
        epochs: int = 20,
        learning_rate: float = 1.0,
        seed: int = 0,
        class_weight: Optional[str] = None,
        average: bool = True,
    ) -> None:
        if loss not in ("hinge", "log"):
            raise ValueError(f"unknown loss {loss!r}")
        if class_weight not in (None, "balanced"):
            raise ValueError(f"unknown class_weight {class_weight!r}")
        self.loss = loss
        self.alpha = alpha
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed
        self.class_weight = class_weight
        self.average = average
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    @property
    def fitted(self) -> bool:
        """Whether the classifier has been trained."""
        return self.coef_ is not None

    def fit(self, features: sparse.spmatrix, labels) -> "SGDClassifier":
        """Train on a feature matrix and 0/1 (or boolean) labels."""
        X = sparse.csr_matrix(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("features and labels disagree on sample count")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        signs = np.where(y > 0, 1.0, -1.0)

        sample_weight = np.ones_like(signs)
        if self.class_weight == "balanced":
            n_pos = float((signs > 0).sum())
            n_neg = float((signs < 0).sum())
            total = n_pos + n_neg
            if n_pos > 0:
                sample_weight[signs > 0] = total / (2.0 * n_pos)
            if n_neg > 0:
                sample_weight[signs < 0] = total / (2.0 * n_neg)

        n_samples, n_features = X.shape
        rng = np.random.default_rng(self.seed)
        weights = np.zeros(n_features)
        bias = 0.0
        averaged_weights = np.zeros(n_features)
        averaged_bias = 0.0
        step = 0

        for _ in range(self.epochs):
            order = rng.permutation(n_samples)
            for row_index in order:
                step += 1
                eta = self.learning_rate / (1.0 + self.alpha * step)
                row = X.getrow(row_index)
                margin = row.dot(weights)[0] + bias
                sign = signs[row_index]
                weight = sample_weight[row_index]

                # L2 shrinkage applies to every step.
                weights *= 1.0 - eta * self.alpha
                if self.loss == "hinge":
                    if sign * margin < 1.0:
                        update = eta * weight * sign
                        weights[row.indices] += update * row.data
                        bias += update
                else:  # log loss
                    z = np.clip(sign * margin, -35.0, 35.0)
                    gradient_scale = sign / (1.0 + np.exp(z))
                    update = eta * weight * gradient_scale
                    weights[row.indices] += update * row.data
                    bias += update

                if self.average:
                    averaged_weights += (weights - averaged_weights) / step
                    averaged_bias += (bias - averaged_bias) / step

        if self.average:
            self.coef_ = averaged_weights
            self.intercept_ = float(averaged_bias)
        else:
            self.coef_ = weights
            self.intercept_ = float(bias)
        return self

    def decision_function(self, features: sparse.spmatrix) -> np.ndarray:
        """Signed distances to the separating hyperplane."""
        if self.coef_ is None:
            raise RuntimeError("SGDClassifier is not fitted")
        X = sparse.csr_matrix(features, dtype=np.float64)
        return X.dot(self.coef_) + self.intercept_

    def predict(self, features: sparse.spmatrix) -> np.ndarray:
        """Boolean predictions."""
        return self.decision_function(features) > 0.0

    def predict_proba(self, features: sparse.spmatrix) -> np.ndarray:
        """Positive-class probabilities via a sigmoid on the margin."""
        margins = np.clip(self.decision_function(features), -35.0, 35.0)
        return 1.0 / (1.0 + np.exp(-margins))
