"""The Figure-3 ML classification pipeline.

``URL -> scrape (root + keyword-linked inner pages) -> translate to English
-> CountVectorizer -> TF-IDF -> SGD classifier ensemble -> {ISP?, Hosting?}``

Two binary classifiers are trained - one for hosting providers, one for
ISPs - because these are the two largest AS categories and the ones the
business databases misclassify the most (Section 4.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..web.scraper import RawScrape, Scraper
from .featcache import FeatureCache, content_digest
from .sgd import SGDClassifier
from .tfidf import TfidfTransformer
from .vectorize import CountVectorizer

__all__ = [
    "TrainingExample",
    "ClassifierVerdict",
    "TextScorer",
    "WebClassificationPipeline",
]


@dataclass(frozen=True)
class TrainingExample:
    """One labeled website for pipeline training.

    Attributes:
        domain: The site's domain.
        is_isp: Ground-truth ISP flag.
        is_hosting: Ground-truth hosting flag.
    """

    domain: str
    is_isp: bool
    is_hosting: bool


@dataclass(frozen=True)
class ClassifierVerdict:
    """Pipeline output for one domain.

    Attributes:
        domain: The classified domain.
        scraped: Whether any text was obtained; when False the flags are
            vacuously False and scores are 0.5 (no information).
        is_isp / is_hosting: Binary decisions.
        isp_score / hosting_score: Ensemble-mean positive probabilities.
    """

    domain: str
    scraped: bool
    is_isp: bool = False
    is_hosting: bool = False
    isp_score: float = 0.5
    hosting_score: float = 0.5


class _BinaryEnsemble:
    """A small bag of SGD classifiers differing only in shuffling seed."""

    def __init__(self, size: int, loss: str, seed: int) -> None:
        self._members = [
            SGDClassifier(loss=loss, seed=seed + index, epochs=15)
            for index in range(size)
        ]

    def fit(self, features, labels) -> None:
        for member in self._members:
            member.fit(features, labels)

    def scores(self, features) -> np.ndarray:
        stacked = np.vstack(
            [member.predict_proba(features) for member in self._members]
        )
        return stacked.mean(axis=0)


class TextScorer:
    """The pipeline's frozen scoring head: translated text -> scores.

    Holds only fitted model state (vocabulary dict, IDF vector, SGD
    weights) — all plain dicts/ndarrays — so it pickles cheaply to the
    process-pool workers.  Local and remote scoring run this same
    ``score`` method, so scores are bit-identical regardless of where
    they were computed.
    """

    __slots__ = ("_vectorizer", "_tfidf", "_isp", "_hosting")

    def __init__(self, vectorizer, tfidf, isp, hosting) -> None:
        self._vectorizer = vectorizer
        self._tfidf = tfidf
        self._isp = isp
        self._hosting = hosting

    def score(self, texts: Sequence[str]) -> List[Tuple[float, float]]:
        """Per-text ``(isp_score, hosting_score)`` ensemble means."""
        counts = self._vectorizer.transform(texts)
        features = (
            counts if self._tfidf is None else self._tfidf.transform(counts)
        )
        isp_scores = self._isp.scores(features)
        hosting_scores = self._hosting.scores(features)
        return [
            (float(isp), float(hosting))
            for isp, hosting in zip(isp_scores, hosting_scores)
        ]


def _score_chunk(
    scorer: TextScorer, texts: Sequence[str]
) -> List[Tuple[float, float]]:
    """Module-level chunk job for :func:`repro.core.procpool.map_chunked`
    (must be picklable by reference)."""
    return scorer.score(texts)


class WebClassificationPipeline:
    """End-to-end website classifier for ISPs and hosting providers.

    Args:
        scraper: The scraper to fetch site text with (carries its own
            translation and link-following configuration, which the
            ablation benches vary).
        max_features: Vocabulary cap for the CountVectorizer.
        ensemble_size: Number of SGD members per binary classifier.
        use_tfidf: Disable to feed raw counts to the classifiers (ablation).
        seed: Training seed.
        decision_threshold: Probability above which a flag is set.
        metrics: Optional metrics registry; emits per-domain
            classification latency and verdict-outcome counters.
    """

    def __init__(
        self,
        scraper: Scraper,
        max_features: int = 4000,
        ensemble_size: int = 3,
        use_tfidf: bool = True,
        seed: int = 0,
        decision_threshold: float = 0.5,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._scraper = scraper
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_classify_seconds = registry.histogram(
            "asdb_ml_classify_seconds",
            "Scrape+classify latency per domain.",
        )
        self._m_verdicts = registry.counter(
            "asdb_ml_verdicts_total",
            "ML pipeline verdicts by outcome.",
            ("outcome",),
        )
        for outcome in (
            "unscraped", "isp", "hosting", "isp+hosting", "negative"
        ):
            self._m_verdicts.inc(0, outcome=outcome)
        self._m_batch_seconds = registry.histogram(
            "asdb_ml_batch_seconds",
            "Batch scrape+classify latency per classify_domains call.",
        )
        self._m_batch_size = registry.histogram(
            "asdb_ml_batch_size",
            "Domains per classify_domains call.",
            buckets=(1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000),
        )
        self._m_featcache = registry.counter(
            "asdb_featcache_lookups_total",
            "Content-addressed score-cache lookups by outcome.",
            ("outcome",),
        )
        for outcome in ("hit", "miss"):
            self._m_featcache.inc(0, outcome=outcome)
        self._m_featcache_size = registry.gauge(
            "asdb_featcache_size",
            "Entries in the content-addressed score cache.",
        )
        self._featcache = FeatureCache()
        self._scorer: Optional[TextScorer] = None
        self._vectorizer = CountVectorizer(
            min_df=2, max_features=max_features
        )
        self._tfidf = TfidfTransformer() if use_tfidf else None
        self._isp = _BinaryEnsemble(ensemble_size, loss="log", seed=seed)
        self._hosting = _BinaryEnsemble(
            ensemble_size, loss="log", seed=seed + 1000
        )
        self._threshold = decision_threshold
        self._fitted = False

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._fitted

    @property
    def feature_cache(self) -> FeatureCache:
        """The content-addressed score cache (hit/miss stats, clear)."""
        return self._featcache

    def export_scorer(self) -> TextScorer:
        """The fitted scoring head (picklable; used by the process
        executor and by anything wanting scores without scraping)."""
        if not self._fitted:
            raise RuntimeError("pipeline is not fitted")
        return self._scorer

    def _featurize(self, texts: Sequence[str], fit: bool):
        if fit:
            counts = self._vectorizer.fit_transform(texts)
        else:
            counts = self._vectorizer.transform(texts)
        if self._tfidf is None:
            return counts
        if fit:
            return self._tfidf.fit_transform(counts)
        return self._tfidf.transform(counts)

    def fit(self, examples: Sequence[TrainingExample]) -> "WebClassificationPipeline":
        """Scrape and train on labeled domains.

        Unscrapable training sites are dropped (they carry no text signal),
        mirroring the paper's practice of training on scraped text.
        """
        texts: List[str] = []
        isp_labels: List[bool] = []
        hosting_labels: List[bool] = []
        for example in examples:
            result = self._scraper.scrape(example.domain)
            if result.empty:
                continue
            texts.append(result.text)
            isp_labels.append(example.is_isp)
            hosting_labels.append(example.is_hosting)
        if not texts:
            raise ValueError("no scrapable training examples")
        features = self._featurize(texts, fit=True)
        self._isp.fit(features, isp_labels)
        self._hosting.fit(features, hosting_labels)
        self._fitted = True
        self._scorer = TextScorer(
            self._vectorizer, self._tfidf, self._isp, self._hosting
        )
        # New weights invalidate every memoized score.
        self._featcache.clear()
        return self

    def classify_text(self, domain: str, text: str) -> ClassifierVerdict:
        """Classify already-scraped (translated) text."""
        if not self._fitted:
            raise RuntimeError("pipeline is not fitted")
        if not text.strip():
            return ClassifierVerdict(domain=domain, scraped=False)
        isp_score, hosting_score = self._scorer.score([text])[0]
        return self._verdict(domain, isp_score, hosting_score)

    def _verdict(
        self, domain: str, isp_score: float, hosting_score: float
    ) -> ClassifierVerdict:
        return ClassifierVerdict(
            domain=domain,
            scraped=True,
            is_isp=isp_score > self._threshold,
            is_hosting=hosting_score > self._threshold,
            isp_score=isp_score,
            hosting_score=hosting_score,
        )

    def _scores_for_raw(
        self,
        raws: Sequence[RawScrape],
        process_workers: int = 0,
        span_context=None,
        span_sink=None,
    ) -> List[Tuple[float, float]]:
        """Scores for non-empty raw scrapes, via the content cache.

        Digest hits skip translation, featurization, and scoring
        entirely; misses are translated and scored as one batch —
        in-process, or chunked over ``process_workers`` processes when
        asked.  Both paths run :meth:`TextScorer.score`, and every
        transform is row/element independent, so the values are
        bit-identical to scoring each text alone.
        """
        digests = [content_digest(raw.raw_text) for raw in raws]
        scores: List[Optional[Tuple[float, float]]] = []
        miss_positions: List[int] = []
        hits = misses = 0
        for digest in digests:
            cached = self._featcache.get(digest)
            if cached is None:
                miss_positions.append(len(scores))
                misses += 1
            else:
                hits += 1
            scores.append(cached)
        if miss_positions:
            translated = self._scraper.translate_texts(
                [raws[index].raw_text for index in miss_positions]
            )
            if process_workers > 1 and len(translated) > 1:
                # Imported lazily: repro.core imports repro.ml at
                # package-init time, not the other way around.
                from ..core.procpool import map_chunked

                computed = map_chunked(
                    _score_chunk, self._scorer, translated, process_workers,
                    span_context=span_context, span_sink=span_sink,
                )
            else:
                computed = self._scorer.score(translated)
            for index, pair in zip(miss_positions, computed):
                scores[index] = pair
                self._featcache.put(digests[index], pair)
        if hits:
            self._m_featcache.inc(hits, outcome="hit")
        if misses:
            self._m_featcache.inc(misses, outcome="miss")
        self._m_featcache_size.set(len(self._featcache))
        return scores

    def classify_domain(self, domain: str) -> ClassifierVerdict:
        """Scrape then classify one domain (content-cache aware)."""
        start = time.perf_counter()
        raw = self._scraper.gather(domain)
        if raw.empty:
            verdict = ClassifierVerdict(domain=domain, scraped=False)
        else:
            if not self._fitted:
                raise RuntimeError("pipeline is not fitted")
            isp_score, hosting_score = self._scores_for_raw([raw])[0]
            verdict = self._verdict(domain, isp_score, hosting_score)
        self._m_classify_seconds.observe(time.perf_counter() - start)
        self._m_verdicts.inc(1, outcome=self._verdict_outcome(verdict))
        return verdict

    def classify_domains(
        self,
        domains: Sequence[str],
        process_workers: int = 0,
        span_context=None,
        span_sink=None,
    ) -> List[ClassifierVerdict]:
        """Batch :meth:`classify_domain`: one raw-scrape pass, one
        content-cache probe, then one translate + vectorizer + TF-IDF +
        ensemble pass over the digest misses only.

        Elementwise identical to the scalar path: every transform in the
        stack (count vectorization, TF-IDF weighting with per-row L2
        normalization, SGD decision scores) is row-independent, so the
        scores for a text do not depend on what else is in the batch —
        or, with ``process_workers > 1``, on which process scored it.
        Verdict-outcome counters tick per domain as in the scalar path;
        latency lands in ``asdb_ml_batch_seconds``.
        """
        if not self._fitted:
            raise RuntimeError("pipeline is not fitted")
        domains = list(domains)
        start = time.perf_counter()
        raws = self._scraper.gather_many(domains)
        verdicts: List[Optional[ClassifierVerdict]] = [None] * len(domains)
        positions: List[int] = []
        pending: List[RawScrape] = []
        for index, raw in enumerate(raws):
            if raw.empty:
                verdicts[index] = ClassifierVerdict(
                    domain=domains[index], scraped=False
                )
            else:
                positions.append(index)
                pending.append(raw)
        if pending:
            scores = self._scores_for_raw(
                pending,
                process_workers=process_workers,
                span_context=span_context,
                span_sink=span_sink,
            )
            for index, (isp_score, hosting_score) in zip(positions, scores):
                verdicts[index] = self._verdict(
                    domains[index], isp_score, hosting_score
                )
        self._m_batch_seconds.observe(time.perf_counter() - start)
        self._m_batch_size.observe(len(domains))
        for verdict in verdicts:
            self._m_verdicts.inc(1, outcome=self._verdict_outcome(verdict))
        return verdicts

    @staticmethod
    def _verdict_outcome(verdict: ClassifierVerdict) -> str:
        if not verdict.scraped:
            return "unscraped"
        if verdict.is_isp and verdict.is_hosting:
            return "isp+hosting"
        if verdict.is_isp:
            return "isp"
        if verdict.is_hosting:
            return "hosting"
        return "negative"
