"""The Figure-3 ML classification pipeline.

``URL -> scrape (root + keyword-linked inner pages) -> translate to English
-> CountVectorizer -> TF-IDF -> SGD classifier ensemble -> {ISP?, Hosting?}``

Two binary classifiers are trained - one for hosting providers, one for
ISPs - because these are the two largest AS categories and the ones the
business databases misclassify the most (Section 4.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from ..web.scraper import Scraper
from .sgd import SGDClassifier
from .tfidf import TfidfTransformer
from .vectorize import CountVectorizer

__all__ = ["TrainingExample", "ClassifierVerdict", "WebClassificationPipeline"]


@dataclass(frozen=True)
class TrainingExample:
    """One labeled website for pipeline training.

    Attributes:
        domain: The site's domain.
        is_isp: Ground-truth ISP flag.
        is_hosting: Ground-truth hosting flag.
    """

    domain: str
    is_isp: bool
    is_hosting: bool


@dataclass(frozen=True)
class ClassifierVerdict:
    """Pipeline output for one domain.

    Attributes:
        domain: The classified domain.
        scraped: Whether any text was obtained; when False the flags are
            vacuously False and scores are 0.5 (no information).
        is_isp / is_hosting: Binary decisions.
        isp_score / hosting_score: Ensemble-mean positive probabilities.
    """

    domain: str
    scraped: bool
    is_isp: bool = False
    is_hosting: bool = False
    isp_score: float = 0.5
    hosting_score: float = 0.5


class _BinaryEnsemble:
    """A small bag of SGD classifiers differing only in shuffling seed."""

    def __init__(self, size: int, loss: str, seed: int) -> None:
        self._members = [
            SGDClassifier(loss=loss, seed=seed + index, epochs=15)
            for index in range(size)
        ]

    def fit(self, features, labels) -> None:
        for member in self._members:
            member.fit(features, labels)

    def scores(self, features) -> np.ndarray:
        stacked = np.vstack(
            [member.predict_proba(features) for member in self._members]
        )
        return stacked.mean(axis=0)


class WebClassificationPipeline:
    """End-to-end website classifier for ISPs and hosting providers.

    Args:
        scraper: The scraper to fetch site text with (carries its own
            translation and link-following configuration, which the
            ablation benches vary).
        max_features: Vocabulary cap for the CountVectorizer.
        ensemble_size: Number of SGD members per binary classifier.
        use_tfidf: Disable to feed raw counts to the classifiers (ablation).
        seed: Training seed.
        decision_threshold: Probability above which a flag is set.
        metrics: Optional metrics registry; emits per-domain
            classification latency and verdict-outcome counters.
    """

    def __init__(
        self,
        scraper: Scraper,
        max_features: int = 4000,
        ensemble_size: int = 3,
        use_tfidf: bool = True,
        seed: int = 0,
        decision_threshold: float = 0.5,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._scraper = scraper
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_classify_seconds = registry.histogram(
            "asdb_ml_classify_seconds",
            "Scrape+classify latency per domain.",
        )
        self._m_verdicts = registry.counter(
            "asdb_ml_verdicts_total",
            "ML pipeline verdicts by outcome.",
            ("outcome",),
        )
        for outcome in (
            "unscraped", "isp", "hosting", "isp+hosting", "negative"
        ):
            self._m_verdicts.inc(0, outcome=outcome)
        self._m_batch_seconds = registry.histogram(
            "asdb_ml_batch_seconds",
            "Batch scrape+classify latency per classify_domains call.",
        )
        self._m_batch_size = registry.histogram(
            "asdb_ml_batch_size",
            "Domains per classify_domains call.",
            buckets=(1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000),
        )
        self._vectorizer = CountVectorizer(
            min_df=2, max_features=max_features
        )
        self._tfidf = TfidfTransformer() if use_tfidf else None
        self._isp = _BinaryEnsemble(ensemble_size, loss="log", seed=seed)
        self._hosting = _BinaryEnsemble(
            ensemble_size, loss="log", seed=seed + 1000
        )
        self._threshold = decision_threshold
        self._fitted = False

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._fitted

    def _featurize(self, texts: Sequence[str], fit: bool):
        if fit:
            counts = self._vectorizer.fit_transform(texts)
        else:
            counts = self._vectorizer.transform(texts)
        if self._tfidf is None:
            return counts
        if fit:
            return self._tfidf.fit_transform(counts)
        return self._tfidf.transform(counts)

    def fit(self, examples: Sequence[TrainingExample]) -> "WebClassificationPipeline":
        """Scrape and train on labeled domains.

        Unscrapable training sites are dropped (they carry no text signal),
        mirroring the paper's practice of training on scraped text.
        """
        texts: List[str] = []
        isp_labels: List[bool] = []
        hosting_labels: List[bool] = []
        for example in examples:
            result = self._scraper.scrape(example.domain)
            if result.empty:
                continue
            texts.append(result.text)
            isp_labels.append(example.is_isp)
            hosting_labels.append(example.is_hosting)
        if not texts:
            raise ValueError("no scrapable training examples")
        features = self._featurize(texts, fit=True)
        self._isp.fit(features, isp_labels)
        self._hosting.fit(features, hosting_labels)
        self._fitted = True
        return self

    def classify_text(self, domain: str, text: str) -> ClassifierVerdict:
        """Classify already-scraped text."""
        if not self._fitted:
            raise RuntimeError("pipeline is not fitted")
        if not text.strip():
            return ClassifierVerdict(domain=domain, scraped=False)
        features = self._featurize([text], fit=False)
        isp_score = float(self._isp.scores(features)[0])
        hosting_score = float(self._hosting.scores(features)[0])
        return ClassifierVerdict(
            domain=domain,
            scraped=True,
            is_isp=isp_score > self._threshold,
            is_hosting=hosting_score > self._threshold,
            isp_score=isp_score,
            hosting_score=hosting_score,
        )

    def classify_domain(self, domain: str) -> ClassifierVerdict:
        """Scrape then classify one domain."""
        start = time.perf_counter()
        result = self._scraper.scrape(domain)
        if result.empty:
            verdict = ClassifierVerdict(domain=domain, scraped=False)
        else:
            verdict = self.classify_text(domain, result.text)
        self._m_classify_seconds.observe(time.perf_counter() - start)
        self._m_verdicts.inc(1, outcome=self._verdict_outcome(verdict))
        return verdict

    def classify_domains(
        self, domains: Sequence[str]
    ) -> List[ClassifierVerdict]:
        """Batch :meth:`classify_domain`: one scrape pass, one vectorizer
        transform, one TF-IDF transform, one ensemble scoring call.

        Elementwise identical to the scalar path: every transform in the
        stack (count vectorization, TF-IDF weighting with per-row L2
        normalization, SGD decision scores) is row-independent, so the
        scores for a text do not depend on what else is in the batch.
        Verdict-outcome counters tick per domain as in the scalar path;
        latency lands in ``asdb_ml_batch_seconds``.
        """
        if not self._fitted:
            raise RuntimeError("pipeline is not fitted")
        domains = list(domains)
        start = time.perf_counter()
        results = self._scraper.scrape_many(domains)
        verdicts: List[Optional[ClassifierVerdict]] = [None] * len(domains)
        positions: List[int] = []
        texts: List[str] = []
        for index, result in enumerate(results):
            if result.empty:
                verdicts[index] = ClassifierVerdict(
                    domain=domains[index], scraped=False
                )
            else:
                positions.append(index)
                texts.append(result.text)
        if texts:
            features = self._featurize(texts, fit=False)
            isp_scores = self._isp.scores(features)
            hosting_scores = self._hosting.scores(features)
            for row, index in enumerate(positions):
                isp_score = float(isp_scores[row])
                hosting_score = float(hosting_scores[row])
                verdicts[index] = ClassifierVerdict(
                    domain=domains[index],
                    scraped=True,
                    is_isp=isp_score > self._threshold,
                    is_hosting=hosting_score > self._threshold,
                    isp_score=isp_score,
                    hosting_score=hosting_score,
                )
        self._m_batch_seconds.observe(time.perf_counter() - start)
        self._m_batch_size.observe(len(domains))
        for verdict in verdicts:
            self._m_verdicts.inc(1, outcome=self._verdict_outcome(verdict))
        return verdicts

    @staticmethod
    def _verdict_outcome(verdict: ClassifierVerdict) -> str:
        if not verdict.scraped:
            return "unscraped"
        if verdict.is_isp and verdict.is_hosting:
            return "isp+hosting"
        if verdict.is_isp:
            return "isp"
        if verdict.is_hosting:
            return "hosting"
        return "negative"
