"""Classification metrics: accuracy, confusion matrix, PR/F1, AUC.

Implemented from scratch on numpy; used by the ML evaluation (Table 6) and
the system comparison (Table 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "ConfusionMatrix",
    "confusion_matrix",
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "roc_auc",
]


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion matrix.

    Attributes follow the usual convention: tp/fp/fn/tn.
    """

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def total(self) -> int:
        """Number of samples."""
        return self.tp + self.fp + self.fn + self.tn

    @property
    def accuracy(self) -> float:
        """(tp + tn) / total."""
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def precision(self) -> float:
        """tp / (tp + fp)."""
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        """tp / (tp + fn)."""
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def false_positive_rate(self) -> float:
        """fp / total - the paper reports FP as a fraction of all samples
        (Table 6: "1% false positive rate" of 123 test ASes)."""
        return self.fp / self.total if self.total else 0.0

    @property
    def false_negative_rate(self) -> float:
        """fn / total (same convention as :attr:`false_positive_rate`)."""
        return self.fn / self.total if self.total else 0.0


def confusion_matrix(truth: Sequence[bool], predicted: Sequence[bool]) -> ConfusionMatrix:
    """Build a binary confusion matrix from parallel label sequences."""
    t = np.asarray(truth, dtype=bool)
    p = np.asarray(predicted, dtype=bool)
    if t.shape != p.shape:
        raise ValueError("truth and predictions disagree on sample count")
    return ConfusionMatrix(
        tp=int(np.sum(t & p)),
        fp=int(np.sum(~t & p)),
        fn=int(np.sum(t & ~p)),
        tn=int(np.sum(~t & ~p)),
    )


def accuracy(truth: Sequence[bool], predicted: Sequence[bool]) -> float:
    """Fraction of samples classified correctly."""
    return confusion_matrix(truth, predicted).accuracy


def precision(truth: Sequence[bool], predicted: Sequence[bool]) -> float:
    """Positive predictive value."""
    return confusion_matrix(truth, predicted).precision


def recall(truth: Sequence[bool], predicted: Sequence[bool]) -> float:
    """True positive rate."""
    return confusion_matrix(truth, predicted).recall


def f1_score(truth: Sequence[bool], predicted: Sequence[bool]) -> float:
    """Harmonic mean of precision and recall."""
    return confusion_matrix(truth, predicted).f1


def roc_auc(truth: Sequence[bool], scores: Sequence[float]) -> float:
    """Area under the ROC curve via the rank statistic.

    Equals the probability a random positive scores above a random
    negative (ties count half).  Returns 0.5 when one class is absent.
    """
    t = np.asarray(truth, dtype=bool)
    s = np.asarray(scores, dtype=np.float64)
    if t.shape != s.shape:
        raise ValueError("truth and scores disagree on sample count")
    n_pos = int(t.sum())
    n_neg = int((~t).sum())
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(s, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    sorted_scores = s[order]
    index = 0
    position = 1.0
    while index < len(sorted_scores):
        tie_end = index
        while (
            tie_end + 1 < len(sorted_scores)
            and sorted_scores[tie_end + 1] == sorted_scores[index]
        ):
            tie_end += 1
        mean_rank = (position + position + (tie_end - index)) / 2.0
        for k in range(index, tie_end + 1):
            ranks[order[k]] = mean_rank
            position += 1.0
        index = tie_end + 1
    rank_sum_pos = float(ranks[t].sum())
    u_statistic = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return u_statistic / (n_pos * n_neg)
