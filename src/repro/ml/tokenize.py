"""Word tokenization for the text-classification pipeline."""

from __future__ import annotations

import re
from typing import List

__all__ = ["tokenize"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str, min_length: int = 2) -> List[str]:
    """Lowercase word tokens of ``text``.

    Args:
        text: Input text (already translated to English upstream).
        min_length: Minimum token length; single characters are noise.
    """
    return [
        token
        for token in _TOKEN_RE.findall(text.lower())
        if len(token) >= min_length
    ]
