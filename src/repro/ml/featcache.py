"""Content-addressed score cache for the ML classification pipeline.

Maintenance sweeps and `refresh` re-classify domains whose *metadata*
churned even when the site content did not, and full passes re-score
the same shared hosting page for every tenant.  The pipeline therefore
memoizes by content: the blake2b digest of the raw (untranslated)
scraped corpus keys the final ensemble scores, so a re-encounter of
unchanged content skips translation, vectorization, TF-IDF weighting,
and ensemble scoring entirely.

Keying on the *raw* corpus is what makes the warm path cheap — the
expensive translate stage sits between gathering and featurization, and
translation is deterministic per text, so identical raw text implies
identical translated text implies identical scores.  The cache stores
only the two ensemble-mean floats (not feature rows): scores are the
sole consumer of the features, and floats make the cache trivially
small and picklable.

The cache is cleared by ``fit`` (new model weights invalidate every
memoized score) and is thread-safe because the batch engine calls
``classify_domains`` from worker threads.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["content_digest", "FeatureCacheStats", "FeatureCache"]


def content_digest(text: str) -> str:
    """Stable content address of a scraped corpus (blake2b-128)."""
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


@dataclass(frozen=True)
class FeatureCacheStats:
    """A consistent point-in-time snapshot of the cache counters."""

    hits: int
    misses: int
    size: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FeatureCache:
    """Maps content digests to ``(isp_score, hosting_score)`` pairs."""

    def __init__(self) -> None:
        self._store: Dict[str, Tuple[float, float]] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, digest: str) -> Optional[Tuple[float, float]]:
        """Cached scores for a digest (None on miss; counters tick)."""
        with self._lock:
            scores = self._store.get(digest)
            if scores is None:
                self._misses += 1
            else:
                self._hits += 1
            return scores

    def put(self, digest: str, scores: Tuple[float, float]) -> None:
        """Store the scores computed for a digest."""
        with self._lock:
            self._store[digest] = scores

    def clear(self) -> None:
        """Drop every entry (model weights changed; counters survive)."""
        with self._lock:
            self._store.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def stats(self) -> FeatureCacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return FeatureCacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._store),
            )
