"""Training-set construction for the ML pipeline (Table 2).

The paper's training set holds 225 ASes: 150 random plus 75 sampled from
D&B-labeled hosting providers, added "to provide sufficient hosting-class
balance to train the model".  We reproduce exactly that sampling over a
synthetic world: the 75 extras are chosen by *D&B's label*, not ground
truth, so D&B's hosting mislabels leak into the class balance just as they
would have for the authors.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set

from ..datasources.dnb import DunBradstreet
from ..world.organization import World
from .pipeline import TrainingExample

__all__ = ["build_training_examples"]


def _example_for_asn(world: World, asn: int) -> Optional[TrainingExample]:
    org = world.org_of_asn(asn)
    if org.domain is None:
        return None
    slugs = org.truth.layer2_slugs()
    return TrainingExample(
        domain=org.domain,
        is_isp="isp" in slugs,
        is_hosting="hosting" in slugs,
    )


def build_training_examples(
    world: World,
    dnb: DunBradstreet,
    rng: random.Random,
    n_random: int = 150,
    n_dnb_hosting: int = 75,
    exclude_asns: Sequence[int] = (),
) -> List[TrainingExample]:
    """Sample the paper's 150 + 75 training mix from a world.

    Args:
        world: The synthetic world.
        dnb: A D&B source whose hosting labels drive the 75-AS oversample.
        rng: Seeded random source.
        n_random: Randomly sampled ASes.
        n_dnb_hosting: ASes sampled among those D&B labels as hosting.
        exclude_asns: ASNs reserved for evaluation (e.g. the Gold
            Standard) that must not leak into training.  Exclusion is by
            *organization*: sibling ASes of an excluded AS share a domain
            and would leak the test site into training.
    """
    excluded_orgs: Set[str] = {
        world.ases[asn].org_id for asn in exclude_asns if asn in world.ases
    }
    candidates = [
        asn
        for asn in world.asns()
        if world.ases[asn].org_id not in excluded_orgs
    ]
    rng.shuffle(candidates)

    examples: List[TrainingExample] = []
    used: Set[int] = set()
    for asn in candidates:
        if len(examples) >= n_random:
            break
        example = _example_for_asn(world, asn)
        if example is not None:
            examples.append(example)
            used.add(asn)

    # D&B-labeled hosting providers for class balance.
    dnb_hosting = []
    for asn in candidates:
        if asn in used:
            continue
        org = world.org_of_asn(asn)
        match = dnb.lookup_by_org(org.org_id)
        if match is None:
            continue
        if "hosting" in match.labels.layer2_slugs():
            dnb_hosting.append(asn)
    rng.shuffle(dnb_hosting)
    for asn in dnb_hosting[:n_dnb_hosting]:
        example = _example_for_asn(world, asn)
        if example is not None:
            examples.append(example)
    return examples
