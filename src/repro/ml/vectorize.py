"""CountVectorizer: text -> sparse word-count matrix (from scratch).

The first featurization stage of the paper's ML pipeline (Figure 3):
"converts the text into a vector of word counts".  Implemented on
``scipy.sparse`` with a fitted vocabulary, document-frequency pruning, and
an optional feature cap.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from .tokenize import tokenize

__all__ = ["CountVectorizer"]


class CountVectorizer:
    """Fit a vocabulary over a corpus; transform documents to counts.

    Args:
        min_df: Drop tokens appearing in fewer than this many documents.
        max_features: Keep at most this many tokens (highest total count
            wins; ties break lexicographically for determinism).
    """

    def __init__(
        self, min_df: int = 1, max_features: Optional[int] = None
    ) -> None:
        self.min_df = min_df
        self.max_features = max_features
        self.vocabulary_: Dict[str, int] = {}

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return bool(self.vocabulary_)

    def fit(self, documents: Sequence[str]) -> "CountVectorizer":
        """Learn the vocabulary from ``documents``."""
        doc_freq: Dict[str, int] = {}
        total_count: Dict[str, int] = {}
        for document in documents:
            tokens = tokenize(document)
            for token in set(tokens):
                doc_freq[token] = doc_freq.get(token, 0) + 1
            for token in tokens:
                total_count[token] = total_count.get(token, 0) + 1
        kept = [
            token
            for token, frequency in doc_freq.items()
            if frequency >= self.min_df
        ]
        if self.max_features is not None and len(kept) > self.max_features:
            kept.sort(key=lambda token: (-total_count[token], token))
            kept = kept[: self.max_features]
        kept.sort()
        self.vocabulary_ = {token: index for index, token in enumerate(kept)}
        return self

    def transform(self, documents: Sequence[str]) -> sparse.csr_matrix:
        """Transform documents into a (n_docs, n_features) count matrix."""
        if not self.fitted:
            raise RuntimeError("CountVectorizer is not fitted")
        indptr: List[int] = [0]
        indices: List[int] = []
        data: List[int] = []
        for document in documents:
            row_counts: Dict[int, int] = {}
            for token in tokenize(document):
                column = self.vocabulary_.get(token)
                if column is not None:
                    row_counts[column] = row_counts.get(column, 0) + 1
            for column in sorted(row_counts):
                indices.append(column)
                data.append(row_counts[column])
            indptr.append(len(indices))
        return sparse.csr_matrix(
            (
                np.asarray(data, dtype=np.float64),
                np.asarray(indices, dtype=np.int32),
                np.asarray(indptr, dtype=np.int32),
            ),
            shape=(len(documents), len(self.vocabulary_)),
        )

    def fit_transform(self, documents: Sequence[str]) -> sparse.csr_matrix:
        """Fit then transform in one pass."""
        return self.fit(documents).transform(documents)

    def feature_names(self) -> List[str]:
        """Vocabulary tokens in column order."""
        return sorted(self.vocabulary_, key=self.vocabulary_.__getitem__)
