"""TF-IDF transformer (from scratch).

The second featurization stage of Figure 3: "uses a TF IDF (Term Frequency
Inverse Document Frequency) transformer to convert the text into features
by computing the relative importance of each word".  Smoothed IDF with L2
row normalization, matching the conventions of standard text stacks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse

__all__ = ["TfidfTransformer"]


class TfidfTransformer:
    """Scale a count matrix by smoothed inverse document frequency.

    ``idf(t) = ln((1 + n) / (1 + df(t))) + 1``; rows are then L2-normalized
    so documents of different lengths are comparable.
    """

    def __init__(self, normalize: bool = True) -> None:
        self.normalize = normalize
        self.idf_: Optional[np.ndarray] = None

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.idf_ is not None

    def fit(self, counts: sparse.csr_matrix) -> "TfidfTransformer":
        """Compute per-feature IDF weights from a count matrix."""
        n_docs = counts.shape[0]
        document_frequency = np.asarray(
            (counts > 0).sum(axis=0)
        ).ravel()
        self.idf_ = np.log((1.0 + n_docs) / (1.0 + document_frequency)) + 1.0
        return self

    def transform(self, counts: sparse.csr_matrix) -> sparse.csr_matrix:
        """Apply IDF scaling (and L2 normalization) to a count matrix."""
        if self.idf_ is None:
            raise RuntimeError("TfidfTransformer is not fitted")
        if counts.shape[1] != self.idf_.shape[0]:
            raise ValueError(
                f"feature mismatch: {counts.shape[1]} columns vs "
                f"{self.idf_.shape[0]} fitted features"
            )
        weighted = counts.multiply(self.idf_).tocsr()
        if self.normalize:
            norms = sparse.linalg.norm(weighted, axis=1)
            norms[norms == 0.0] = 1.0
            scale = sparse.diags(1.0 / norms)
            weighted = (scale @ weighted).tocsr()
        return weighted

    def fit_transform(self, counts: sparse.csr_matrix) -> sparse.csr_matrix:
        """Fit then transform in one pass."""
        return self.fit(counts).transform(counts)
