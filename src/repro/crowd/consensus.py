"""Crowdworker consensus rules (Appendix B).

The appendix varies the consensus requirement (2/3, 3/5, 4/5 workers) and
measures its effect on coverage and accuracy.  Consensus is per layer 2
category: a category is consensus-backed when at least ``required`` of the
assigned workers chose it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..taxonomy import LabelSet
from .worker import WorkerResponse

__all__ = ["ConsensusOutcome", "consensus_labels"]


@dataclass(frozen=True)
class ConsensusOutcome:
    """Result of applying a consensus rule to worker responses.

    Attributes:
        labels: The consensus-backed categories (empty = no consensus).
        votes: Raw per-category vote counts.
        reached: Whether any category met the requirement.
    """

    labels: LabelSet
    votes: Tuple[Tuple[str, int], ...]
    reached: bool


def consensus_labels(
    responses: Sequence[WorkerResponse], required: int
) -> ConsensusOutcome:
    """Categories chosen by at least ``required`` workers."""
    votes: Counter = Counter()
    for response in responses:
        for slug in response.labels.layer2_slugs():
            votes[slug] += 1
    backed = sorted(
        slug for slug, count in votes.items() if count >= required
    )
    return ConsensusOutcome(
        labels=LabelSet.from_layer2_slugs(backed),
        votes=tuple(sorted(votes.items())),
        reached=bool(backed),
    )
