"""Crowdwork simulation (Appendix B).

Simulated master MTurk workers, consensus rules, platform economics
(rewards, wages, costs), and the integration experiment that adds
crowdwork to ASdb (Table 9).
"""

from .consensus import ConsensusOutcome, consensus_labels
from .integration import CROWDWORK_STAGES, CrowdworkOutcome, apply_crowdwork
from .platform import (
    BatchResult,
    MTurkPlatform,
    TaskResult,
    estimate_cost_dollars,
)
from .worker import MTurkWorker, WorkerResponse

__all__ = [
    "MTurkWorker",
    "WorkerResponse",
    "ConsensusOutcome",
    "consensus_labels",
    "MTurkPlatform",
    "BatchResult",
    "TaskResult",
    "estimate_cost_dollars",
    "apply_crowdwork",
    "CrowdworkOutcome",
    "CROWDWORK_STAGES",
]
