"""Simulated Amazon Mechanical Turk workers (Appendix B).

Master-qualified MTurk workers classify ASes given a website and a list of
candidate NAICSlite categories.  The model captures the appendix's
empirical findings:

* workers are consistently better at finance than technology categories,
  with or without in-task category definitions;
* higher rewards mainly buy *consistency* (consensus coverage rises with
  reward, Figure 5a) rather than per-answer accuracy (Figure 5b);
* time-per-task varies widely and is not proportional to reward, so the
  implied hourly wage is wildly dispersed (Figure 6: $6.60-55/hour).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..taxonomy import LabelSet, naicslite
# confusion structure lives in repro.world.calibration; workers scatter instead
from ..world.organization import Organization

__all__ = ["WorkerResponse", "MTurkWorker"]


@dataclass(frozen=True)
class WorkerResponse:
    """One worker's answer to one classification task.

    Attributes:
        worker_id: The answering worker.
        labels: Chosen NAICSlite labels (empty = "none of the above").
        minutes: Time the worker spent on the task.
    """

    worker_id: str
    labels: LabelSet
    minutes: float


def _category_base_accuracy(org: Organization) -> float:
    """Per-answer accuracy by category family (finance > other > tech)."""
    layer1 = sorted(org.truth.layer1_slugs())[0]
    if layer1 == "finance":
        return 0.95
    if layer1 == "computer_and_it":
        return 0.84
    return 0.85


class MTurkWorker:
    """One master-qualified crowdworker.

    Args:
        worker_id: Stable identity (drives per-task determinism).
        seed: Experiment seed.
        diligence: Worker-specific multiplier on care taken (sampled by
            the platform; masters cluster near 1.0).
    """

    def __init__(
        self, worker_id: str, seed: int = 0, diligence: float = 1.0
    ) -> None:
        self.worker_id = worker_id
        self._seed = seed
        self.diligence = diligence

    def _rng(self, org: Organization, reward_cents: int) -> random.Random:
        return random.Random(
            (self.worker_id, self._seed, org.org_id, reward_cents).__repr__()
        )

    def classify(
        self,
        org: Organization,
        reward_cents: int,
        options: Optional[Sequence[str]] = None,
    ) -> WorkerResponse:
        """Answer one classification task.

        Args:
            org: The organization under review (the worker browses its
                website; ground truth drives the simulation).
            reward_cents: Task reward; buys carefulness, not skill.
            options: Candidate layer 2 slugs to choose from (the
                data-source-disagreement task), or None for a free pick
                over all technology/finance categories.
        """
        rng = self._rng(org, reward_cents)
        minutes = self._task_minutes(rng, reward_cents)

        # Carelessness falls with reward; careless answers scatter.
        carelessness = max(
            0.04, (0.30 - 0.004 * reward_cents) / self.diligence
        )
        careful = rng.random() >= carelessness

        truth_slugs = sorted(org.truth.layer2_slugs())
        accuracy = _category_base_accuracy(org)
        chosen: List[str] = []
        if truth_slugs and careful and rng.random() < accuracy:
            chosen = [rng.choice(truth_slugs)]
        elif truth_slugs:
            # Wrong answers *scatter*: each worker's misreading lands on a
            # different plausible sibling, so wrong consensus is rare and
            # carelessness mostly costs coverage, not accuracy (Figure 5).
            primary = truth_slugs[0]
            layer1 = naicslite.layer2_by_name(primary).layer1
            if rng.random() < 0.75:
                siblings = [
                    sub.slug
                    for sub in layer1.layer2
                    if sub.slug not in truth_slugs
                ]
                chosen = [rng.choice(siblings)] if siblings else []
            else:
                other = rng.choice(naicslite.ALL_LAYER2)
                chosen = [other.slug]

        if options is not None:
            allowed = set(options)
            chosen = [slug for slug in chosen if slug in allowed]
            if not chosen and careful:
                # Pick the option closest to the worker's perception: any
                # option sharing the truth's layer 1, else none-of-the-above.
                truth_l1 = org.truth.layer1_slugs()
                fitting = sorted(
                    slug
                    for slug in allowed
                    if naicslite.layer2_by_name(slug).layer1.slug
                    in truth_l1
                )
                if fitting:
                    chosen = [rng.choice(fitting)]
            elif not chosen:
                chosen = [rng.choice(sorted(allowed))] if allowed else []

        return WorkerResponse(
            worker_id=self.worker_id,
            labels=LabelSet.from_layer2_slugs(chosen),
            minutes=minutes,
        )

    def _task_minutes(self, rng: random.Random, reward_cents: int) -> float:
        """Task time: heavy-tailed and *rising with reward* (better-paid
        tasks are taken more seriously), so the implied hourly wage is not
        directly correlated with the reward (Figure 6)."""
        effort = 0.5 + (reward_cents / 25.0) ** 0.9
        return max(
            0.2,
            rng.lognormvariate(0.0, 0.8) * effort * self.diligence,
        )
