"""Applying crowdwork to ASdb (Appendix B's final experiment, Table 9).

Crowdworkers replace the "auto-choose source" heuristic for the pipeline's
weak stages: ASes where no source matched, only one matched, or multiple
matched without agreement.  Workers choose among the union of the matched
sources' categories (10 cents x 3 workers, 2/3 consensus); their
consensus-backed labels overwrite the pipeline's answer when reached.

The paper's conclusion - reproduced by the Table 9 bench - is that this
buys at most ~3 points of accuracy for real money, so the deployed system
omits crowdwork.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.database import ASdbDataset, ASdbRecord
from ..core.stages import Stage
from ..taxonomy import naicslite
from ..world.organization import World
from .platform import BatchResult, MTurkPlatform

__all__ = ["CROWDWORK_STAGES", "apply_crowdwork"]

#: Pipeline stages escalated to crowdworkers.
CROWDWORK_STAGES: Tuple[Stage, ...] = (
    Stage.ZERO_SOURCES,
    Stage.ONE_SOURCE,
    Stage.MULTI_DISAGREE,
)


@dataclass(frozen=True)
class CrowdworkOutcome:
    """The crowdwork pass over an ASdb dataset.

    Attributes:
        dataset: A new dataset with crowd answers merged in.
        batch: The underlying MTurk batch (for cost/wage accounting).
        escalated_asns: ASNs sent to workers.
        overridden_asns: ASNs whose classification the crowd changed or
            filled in.
    """

    dataset: ASdbDataset
    batch: BatchResult
    escalated_asns: Tuple[int, ...]
    overridden_asns: Tuple[int, ...]


def _options_for(
    world: World, record: ASdbRecord
) -> Optional[List[str]]:
    """Candidate categories shown to workers.

    Disagreement / single-source cases offer the union of matched source
    categories (plus "none of the above", modeled as an empty answer);
    zero-source cases are open-ended.
    """
    if record.stage is Stage.ZERO_SOURCES:
        return None
    slugs: Set[str] = set(record.labels.layer2_slugs())
    if not slugs:
        return None
    # Broaden with the confusable siblings a disagreeing source would
    # plausibly have proposed.
    layer1_slugs = record.labels.layer1_slugs()
    for layer1 in layer1_slugs:
        for sub in naicslite.layer1_by_slug(layer1).layer2:
            slugs.add(sub.slug)
    return sorted(slugs)


def apply_crowdwork(
    world: World,
    dataset: ASdbDataset,
    platform: MTurkPlatform,
    reward_cents: int = 10,
    workers_per_task: int = 3,
    required: int = 2,
    asns: Optional[Sequence[int]] = None,
) -> CrowdworkOutcome:
    """Escalate weak-stage ASes to crowdworkers and merge the answers.

    Args:
        world: The synthetic world (worker simulation needs the org).
        dataset: The pipeline's output dataset.
        platform: The MTurk platform.
        reward_cents / workers_per_task / required: Batch economics.
        asns: Restrict escalation to these ASNs (e.g. a labeled
            evaluation set); defaults to the whole dataset.
    """
    candidates: List[ASdbRecord] = []
    scope = set(asns) if asns is not None else None
    for record in dataset:
        if scope is not None and record.asn not in scope:
            continue
        if record.stage in CROWDWORK_STAGES:
            candidates.append(record)

    organizations = [world.org_of_asn(record.asn) for record in candidates]
    options_map: Dict[str, Sequence[str]] = {}
    for record, org in zip(candidates, organizations):
        options = _options_for(world, record)
        if options is not None:
            options_map[org.org_id] = options
    batch = platform.run_batch(
        organizations,
        reward_cents=reward_cents,
        workers_per_task=workers_per_task,
        required=required,
        options_for=options_map,
    )

    merged = ASdbDataset()
    for record in dataset:
        merged.add(record)
    overridden: List[int] = []
    by_org: Dict[str, ASdbRecord] = {}
    for record, org in zip(candidates, organizations):
        by_org.setdefault(org.org_id, record)
    for task in batch.tasks:
        if not task.outcome.reached:
            continue
        record = by_org.get(task.org_id)
        if record is None:
            continue
        if task.outcome.labels == record.labels:
            continue
        merged.add(
            ASdbRecord(
                asn=record.asn,
                labels=task.outcome.labels,
                stage=record.stage,
                domain=record.domain,
                sources=record.sources + ("crowdwork",),
                org_key=record.org_key,
                cache_keys=record.cache_keys,
            )
        )
        overridden.append(record.asn)

    return CrowdworkOutcome(
        dataset=merged,
        batch=batch,
        escalated_asns=tuple(record.asn for record in candidates),
        overridden_asns=tuple(sorted(overridden)),
    )
