"""The Amazon Mechanical Turk platform simulator (Appendix B).

Manages a pool of master-qualified workers, assigns batches of
classification tasks with a fixed reward and consensus requirement, and
accounts for cost and implied hourly wages - the quantities behind
Figures 5, 6, and 7 and the appendix's cost estimates ($31,000 for ML
false-negative review; ~$6,000 for disagreement resolution).
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..world.organization import Organization
from .consensus import ConsensusOutcome, consensus_labels
from .worker import MTurkWorker, WorkerResponse

__all__ = ["TaskResult", "BatchResult", "MTurkPlatform"]

#: Premium charged for master-qualified workers (5% of the reward).
MASTER_FEE_RATE = 0.05


@dataclass(frozen=True)
class TaskResult:
    """One AS's crowdwork outcome.

    Attributes:
        org_id: The organization classified.
        responses: Individual worker responses.
        outcome: The consensus result.
    """

    org_id: str
    responses: Tuple[WorkerResponse, ...]
    outcome: ConsensusOutcome


@dataclass(frozen=True)
class BatchResult:
    """A batch of crowdwork tasks plus its economics.

    Attributes:
        reward_cents: Per-task reward paid to each worker.
        workers_per_task: Number of workers assigned per AS.
        required: Consensus requirement.
        tasks: Per-AS results.
        total_cost_dollars: Total spend including the master premium.
    """

    reward_cents: int
    workers_per_task: int
    required: int
    tasks: Tuple[TaskResult, ...]
    total_cost_dollars: float

    @property
    def coverage(self) -> float:
        """Fraction of ASes where consensus was reached (Figure 5a)."""
        if not self.tasks:
            return 0.0
        return sum(task.outcome.reached for task in self.tasks) / len(
            self.tasks
        )

    def hourly_wages(self) -> List[float]:
        """Implied $/hour per worker-task."""
        wages = []
        for task in self.tasks:
            for response in task.responses:
                hours = response.minutes / 60.0
                wages.append(self.reward_cents / 100.0 / hours)
        return wages

    @property
    def median_hourly_wage(self) -> float:
        """Median implied wage (Figure 6)."""
        wages = self.hourly_wages()
        return statistics.median(wages) if wages else 0.0

    @property
    def mean_hourly_wage(self) -> float:
        """Mean implied wage (the appendix reports $19.41/hour overall)."""
        wages = self.hourly_wages()
        return statistics.fmean(wages) if wages else 0.0


class MTurkPlatform:
    """A pool of master MTurk workers and the batch-task machinery."""

    def __init__(self, seed: int = 0, pool_size: int = 200) -> None:
        self._seed = seed
        rng = random.Random(("mturk-pool", seed).__repr__())
        self._pool = [
            MTurkWorker(
                worker_id=f"mturk-{index:04d}",
                seed=seed,
                diligence=min(1.6, max(0.6, rng.gauss(1.0, 0.2))),
            )
            for index in range(pool_size)
        ]
        self._next_worker = 0

    def _assign_workers(self, count: int) -> List[MTurkWorker]:
        """Assign the next ``count`` workers (no overlap across calls,
        mirroring the appendix's "no MTurks overlap between assignments"
        until the pool wraps)."""
        workers = []
        for _ in range(count):
            workers.append(self._pool[self._next_worker % len(self._pool)])
            self._next_worker += 1
        return workers

    def run_batch(
        self,
        organizations: Sequence[Organization],
        reward_cents: int,
        workers_per_task: int = 3,
        required: int = 2,
        options_for: Optional[Dict[str, Sequence[str]]] = None,
    ) -> BatchResult:
        """Run one labeled batch.

        Args:
            organizations: The ASes' organizations to classify.
            reward_cents: Reward per worker per task.
            workers_per_task: Workers assigned to each AS.
            required: Votes needed for a category to be consensus-backed.
            options_for: Optional per-org candidate layer 2 slugs (the
                disagreement-resolution task restricts choices to the
                union of the matched sources' categories).
        """
        tasks: List[TaskResult] = []
        for org in organizations:
            workers = self._assign_workers(workers_per_task)
            options = (
                options_for.get(org.org_id) if options_for else None
            )
            responses = tuple(
                worker.classify(org, reward_cents, options=options)
                for worker in workers
            )
            tasks.append(
                TaskResult(
                    org_id=org.org_id,
                    responses=responses,
                    outcome=consensus_labels(responses, required),
                )
            )
        per_task_cost = (
            reward_cents / 100.0 * (1.0 + MASTER_FEE_RATE)
        ) * workers_per_task
        return BatchResult(
            reward_cents=reward_cents,
            workers_per_task=workers_per_task,
            required=required,
            tasks=tuple(tasks),
            total_cost_dollars=per_task_cost * len(tasks),
        )


def estimate_cost_dollars(
    n_tasks: int, reward_cents: int, workers_per_task: int
) -> float:
    """Projected spend for a crowdwork campaign (appendix estimates)."""
    return (
        n_tasks
        * workers_per_task
        * (reward_cents / 100.0)
        * (1.0 + MASTER_FEE_RATE)
    )
