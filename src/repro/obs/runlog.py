"""The run ledger: one durable NDJSON event log per dataset run.

PR 1's metrics and traces answer "what is the pipeline doing *right
now*" — and evaporate when the process exits.  Operating the paper's
Section-5.3 lifecycle (quarterly refreshes, bounded sweeps, correction
queues) needs the after-the-fact question answered too: what did run N
do, how long did each stage take, which sources degraded, did we stay
inside the freshness/accuracy budget?  A :class:`RunLog` persists that
history as newline-delimited JSON, one event per line, so ``repro
report`` and ``repro health`` can reconstruct a run from the ledger
alone, with no live process.

Event envelope (every line)::

    {"event": "<type>", "run": "<run id>", "seq": N, "t": <seconds>}

``seq`` is a per-ledger monotone sequence number and ``t`` is wall
seconds since the run started.  Core event types:

``run.start``
    Run id, kind (classify/sweep/refresh/snapshot), config + world
    digests, schema version, pid.
``span``
    One completed operation: ``span_id``, ``parent_id``, ``name``,
    ``duration``, ``status``, ``attributes``, and a ``worker`` stanza
    (kind ``main``/``thread``/``process``, thread name or pid) so
    events emitted from pool workers stitch into one causal tree under
    the run id.
``as.trace``
    One AS's :class:`~repro.obs.trace.ClassificationTrace` (spans,
    error, tags) — the per-stage substrate ``repro report`` aggregates.
``resource.sample``
    RSS / high-water mark (``/proc/self/status``, fallback-safe), CPU
    and wall time, plus caller-provided stats snapshots (org cache,
    kernels, feature cache).
``run.end``
    Status, duration, the full metrics-registry JSON snapshot, degraded
    source tallies, and circuit-breaker states.

The serving layer (:mod:`repro.serving`) adds its own family:
``serve.start`` (bound host/port, initial generation), ``serve.swap``
(one per atomic index swap: generation, record count, snapshot
version), ``serve.queue`` (each background drain of the on-demand
classification queue), ``serve.rebuild`` spans around index
materialization, and ``serve.stop``.

Span identity crosses executors as a plain picklable mapping
(:meth:`RunLog.span_context`); process-pool workers time their chunk
against it and the parent emits the returned record verbatim
(:func:`repro.core.procpool.map_chunked`).  Thread-pool workers write
through the (lock-protected) ledger directly.

Like every ``repro.obs`` facility the ledger is opt-in and inert by
default: :data:`NULL_RUNLOG` accepts the full API and records nothing,
so a run without ``--runlog`` is byte-identical to one before this
module existed.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from typing import Callable, Dict, IO, List, Mapping, Optional

__all__ = [
    "LEDGER_SCHEMA",
    "RunLog",
    "NullRunLog",
    "NULL_RUNLOG",
    "config_digest",
    "read_ledger",
    "read_rss_kb",
    "ResourceSampler",
]

LEDGER_SCHEMA = "asdb-repro/runlog/1"


def config_digest(document: Mapping[str, object]) -> str:
    """Stable digest of a JSON-able mapping (sorted-key blake2b-64).

    Used for both the config digest and the world digest in
    ``run.start``: two runs with the same digest were launched with the
    same knobs over the same world.
    """
    material = json.dumps(document, sort_keys=True, default=str)
    return hashlib.blake2b(
        material.encode("utf-8"), digest_size=8
    ).hexdigest()


def read_rss_kb() -> Dict[str, Optional[int]]:
    """Current and peak resident set size in kilobytes, fallback-safe.

    Prefers ``/proc/self/status`` (Linux); falls back to
    ``resource.getrusage`` (POSIX; peak only); reports ``None`` fields
    on platforms providing neither.  Never raises.
    """
    rss: Optional[int] = None
    hwm: Optional[int] = None
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    rss = int(line.split()[1])
                elif line.startswith("VmHWM:"):
                    hwm = int(line.split()[1])
    except OSError:
        pass
    if rss is None and hwm is None:
        try:
            import resource

            usage = resource.getrusage(resource.RUSAGE_SELF)
            # ru_maxrss is KiB on Linux, bytes on macOS; either way it
            # is a peak, not a current figure.
            hwm = int(usage.ru_maxrss)
        except Exception:
            pass
    return {"rss_kb": rss, "hwm_kb": hwm}


class _RunSpan:
    """In-flight ledger span; emits a ``span`` event on exit."""

    __slots__ = (
        "_log", "span_id", "parent_id", "name", "status",
        "attributes", "_start",
    )

    def __init__(
        self, log: "RunLog", span_id: str, parent_id: Optional[str],
        name: str,
    ) -> None:
        self._log = log
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.status = ""
        self.attributes: Dict[str, object] = {}

    def set_status(self, status: str) -> "_RunSpan":
        self.status = status
        return self

    def note(self, **attributes: object) -> "_RunSpan":
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "_RunSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and not self.status:
            self.status = f"error: {type(exc).__name__}"
        self._log.emit(
            "span",
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            duration=time.perf_counter() - self._start,
            status=self.status,
            attributes=self.attributes,
            worker=self._log.worker_stanza(),
        )


class RunLog:
    """A structured, append-only event ledger for one run.

    Args:
        path: Ledger file to (over)write, NDJSON, one event per line.
        kind: Run kind recorded in ``run.start`` (``classify``,
            ``sweep``, ``refresh``, ``snapshot``, ...).
        config: JSON-able run configuration; digested into
            ``config_digest`` and embedded verbatim.
        world: JSON-able world provenance (n_orgs, seed, ...); digested
            into ``world_digest``.

    Thread-safe: the batch engine's pool workers emit through the same
    instance, serialized by one lock, each line flushed as written so a
    crashed run still leaves a readable prefix.
    """

    def __init__(
        self,
        path: str,
        kind: str = "run",
        config: Optional[Mapping[str, object]] = None,
        world: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.path = path
        self.kind = kind
        config = dict(config or {})
        world = dict(world or {})
        self.run_id = hashlib.blake2b(
            f"{kind}|{config_digest(config)}|{config_digest(world)}"
            f"|{os.getpid()}|{time.time_ns()}".encode(),
            digest_size=6,
        ).hexdigest()
        self._origin = time.perf_counter()
        self._cpu_origin = time.process_time()
        self._lock = threading.Lock()
        self._seq = 0
        self._span_counter = 0
        self._closed = False
        self._sampler_thread: Optional[threading.Thread] = None
        self._sampler_stop = threading.Event()
        self._handle: IO[str] = open(path, "w")
        self.emit(
            "run.start",
            schema=LEDGER_SCHEMA,
            kind=kind,
            config=config,
            config_digest=config_digest(config),
            world=world,
            world_digest=config_digest(world),
            pid=os.getpid(),
        )

    # -- emission -----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Real ledgers record; the null ledger reports False."""
        return True

    def elapsed(self) -> float:
        """Wall seconds since the run started."""
        return time.perf_counter() - self._origin

    def worker_stanza(self) -> Dict[str, object]:
        """Identity of the emitting execution context."""
        thread = threading.current_thread()
        kind = "main" if thread is threading.main_thread() else "thread"
        return {"kind": kind, "name": thread.name, "pid": os.getpid()}

    def emit(self, event: str, **fields: object) -> None:
        """Append one event line (no-op after :meth:`close`)."""
        with self._lock:
            if self._closed:
                return
            record: Dict[str, object] = {
                "event": event,
                "run": self.run_id,
                "seq": self._seq,
                "t": round(self.elapsed(), 6),
            }
            record.update(fields)
            self._seq += 1
            self._handle.write(
                json.dumps(record, sort_keys=True, default=str) + "\n"
            )
            self._handle.flush()

    def emit_span_record(self, record: Mapping[str, object]) -> None:
        """Emit a worker-produced span record (e.g. from a process-pool
        chunk) verbatim under the ``span`` event type."""
        self.emit("span", **dict(record))

    def span(
        self, name: str, parent: Optional[str] = None
    ) -> _RunSpan:
        """``with runlog.span("classify") as span: ...`` — emits a
        ``span`` event on exit; ``span.span_id`` parents children."""
        with self._lock:
            self._span_counter += 1
            span_id = f"s{self._span_counter:04d}"
        return _RunSpan(self, span_id, parent, name)

    def span_context(self, parent: Optional[str]) -> Dict[str, object]:
        """A picklable span context for cross-process propagation.

        Process-pool workers cannot reach this ledger; they time their
        work against this mapping and return span records the parent
        emits with :meth:`emit_span_record`.
        """
        return {"run": self.run_id, "parent_id": parent}

    # -- resource sampling --------------------------------------------------

    def sample_resources(
        self,
        providers: Optional[
            Mapping[str, Callable[[], Mapping[str, object]]]
        ] = None,
        phase: str = "",
    ) -> None:
        """Emit one ``resource.sample`` event.

        ``providers`` maps a stanza name (``cache``, ``kernels``,
        ``featcache``, ...) to a zero-argument callable returning a
        JSON-able mapping; a provider that raises is recorded as an
        error string rather than killing the run.
        """
        sample: Dict[str, object] = dict(read_rss_kb())
        sample["cpu_seconds"] = round(
            time.process_time() - self._cpu_origin, 6
        )
        sample["wall_seconds"] = round(self.elapsed(), 6)
        if phase:
            sample["phase"] = phase
        for name, provider in (providers or {}).items():
            try:
                sample[name] = dict(provider())
            except Exception as exc:  # ledger must not kill the run
                sample[name] = {"error": f"{type(exc).__name__}: {exc}"}
        self.emit("resource.sample", **sample)

    def start_sampling(
        self,
        interval_seconds: float,
        providers: Optional[
            Mapping[str, Callable[[], Mapping[str, object]]]
        ] = None,
    ) -> None:
        """Start a daemon thread emitting ``resource.sample`` events
        every ``interval_seconds`` until :meth:`stop_sampling`/close."""
        if self._sampler_thread is not None:
            return
        self._sampler_stop.clear()

        def _loop() -> None:
            while not self._sampler_stop.wait(interval_seconds):
                self.sample_resources(providers, phase="periodic")

        self._sampler_thread = threading.Thread(
            target=_loop, name="runlog-sampler", daemon=True
        )
        self._sampler_thread.start()

    def stop_sampling(self) -> None:
        """Stop the periodic sampler thread, if running."""
        if self._sampler_thread is None:
            return
        self._sampler_stop.set()
        self._sampler_thread.join(timeout=5.0)
        self._sampler_thread = None

    # -- lifecycle ----------------------------------------------------------

    def finish(
        self,
        status: str = "ok",
        metrics=None,
        **summary: object,
    ) -> None:
        """Emit the end-of-run summary and close the ledger.

        ``metrics`` is a :class:`~repro.obs.metrics.MetricsRegistry`
        (duck-typed on ``snapshot``): its full JSON snapshot is embedded
        so the ledger alone reconstructs every counter the run emitted.
        Extra keyword stanzas (``degraded``, ``breakers``, ...) are
        recorded verbatim.
        """
        self.stop_sampling()
        fields: Dict[str, object] = {
            "status": status,
            "duration": round(self.elapsed(), 6),
        }
        if metrics is not None:
            fields["metrics"] = metrics.snapshot()
        fields.update(summary)
        self.emit("run.end", **fields)
        self.close()

    def close(self) -> None:
        """Flush and close the file; later emissions are dropped."""
        self.stop_sampling()
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._handle.close()

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._closed:
            self.finish(
                status="ok" if exc is None else
                f"error: {type(exc).__name__}"
            )


class _NullRunSpan:
    __slots__ = ()

    span_id = None
    parent_id = None
    name = ""
    status = ""

    def set_status(self, status: str) -> "_NullRunSpan":
        return self

    def note(self, **attributes: object) -> "_NullRunSpan":
        return self

    def __enter__(self) -> "_NullRunSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_RUN_SPAN = _NullRunSpan()


class NullRunLog:
    """Accepts the full :class:`RunLog` API and records nothing.

    Instrumented code never checks whether a ledger is configured; the
    shared :data:`NULL_RUNLOG` keeps the default path allocation-free
    and byte-identical to an un-instrumented run.
    """

    __slots__ = ()

    run_id = ""
    path = None
    kind = ""

    @property
    def enabled(self) -> bool:
        return False

    def elapsed(self) -> float:
        return 0.0

    def worker_stanza(self) -> Dict[str, object]:
        return {}

    def emit(self, event: str, **fields: object) -> None:
        return None

    def emit_span_record(self, record: Mapping[str, object]) -> None:
        return None

    def span(self, name: str, parent=None) -> _NullRunSpan:
        return _NULL_RUN_SPAN

    def span_context(self, parent=None) -> None:
        return None

    def sample_resources(self, providers=None, phase: str = "") -> None:
        return None

    def start_sampling(self, interval_seconds, providers=None) -> None:
        return None

    def stop_sampling(self) -> None:
        return None

    def finish(self, status: str = "ok", metrics=None, **summary) -> None:
        return None

    def close(self) -> None:
        return None

    def __enter__(self) -> "NullRunLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NULL_RUNLOG = NullRunLog()


class ResourceSampler:
    """Standalone resource sampling over any emit-shaped sink.

    :class:`RunLog` embeds the same logic; this class exists for code
    that wants samples without a ledger (tests, the future serving
    layer's status endpoint).
    """

    def __init__(self) -> None:
        self._origin = time.perf_counter()
        self._cpu_origin = time.process_time()

    def sample(self) -> Dict[str, object]:
        """One point-in-time resource sample (never raises)."""
        out: Dict[str, object] = dict(read_rss_kb())
        out["cpu_seconds"] = time.process_time() - self._cpu_origin
        out["wall_seconds"] = time.perf_counter() - self._origin
        return out


def read_ledger(path: str) -> List[Dict[str, object]]:
    """Parse an NDJSON ledger into its event dicts, in file order.

    Blank lines are skipped; a torn final line (crashed run) is
    dropped rather than raising, so a partial ledger still reports.
    """
    events: List[Dict[str, object]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn tail of a crashed run
    return events
