"""SLO health checks and post-hoc reports over run ledgers.

Everything in this module works from a persisted NDJSON ledger alone
(:mod:`repro.obs.runlog`) — no live process, no registry in memory —
which is what makes the dataset lifecycle *operable*: ``repro report``
answers "what did run N do and where did the time go" after the fact,
``repro report --compare`` diffs two runs BENCH-style, and ``repro
health`` evaluates declarative budgets and exits non-zero on breach so
CI and cron jobs can gate on operational regressions.

SLO file format (JSON)::

    {"slos": [
      {"id": "ml-tail",   "kind": "max_stage_p99_seconds",
       "stage": "ml", "max": 0.5},
      {"id": "degraded",  "kind": "max_degraded_fraction", "max": 0.1},
      {"id": "cache",     "kind": "min_cache_hit_rate",    "min": 0.2},
      {"id": "sweep",     "kind": "max_reclassified",      "max": 500},
      {"id": "wall",      "kind": "max_run_seconds",       "max": 600}
    ]}

A rule whose input is absent from the ledger (e.g. ``max_reclassified``
against a classify run that swept nothing) is *skipped*, not failed:
budgets describe what must hold when the activity happens.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .narrate import aggregate_spans, format_seconds
from .runlog import read_ledger
from .trace import ClassificationTrace, Span

__all__ = [
    "LedgerError",
    "SloError",
    "SloRule",
    "SloResult",
    "load_events",
    "traces_from_events",
    "stage_durations",
    "percentile",
    "load_slos",
    "evaluate_slos",
    "render_health",
    "render_report",
    "render_compare",
    "compare_document",
]

SLO_KINDS = (
    "max_stage_p99_seconds",
    "max_degraded_fraction",
    "min_cache_hit_rate",
    "max_reclassified",
    "max_run_seconds",
)


class LedgerError(ValueError):
    """A ledger file could not be read or is not a run ledger."""


class SloError(ValueError):
    """An SLO file is malformed."""


# -- ledger access ----------------------------------------------------------


def load_events(path: str) -> List[Dict[str, object]]:
    """Read and sanity-check a ledger: must open with ``run.start``."""
    try:
        events = read_ledger(path)
    except OSError as exc:
        raise LedgerError(
            f"cannot read ledger {path}: {exc.strerror or exc}"
        ) from exc
    if not events or events[0].get("event") != "run.start":
        raise LedgerError(
            f"{path} is not a run ledger (no run.start event)"
        )
    return events


def _events_of(
    events: Sequence[Mapping[str, object]], kind: str
) -> List[Mapping[str, object]]:
    return [event for event in events if event.get("event") == kind]


def _end_event(
    events: Sequence[Mapping[str, object]]
) -> Optional[Mapping[str, object]]:
    ends = _events_of(events, "run.end")
    return ends[-1] if ends else None


def traces_from_events(
    events: Sequence[Mapping[str, object]]
) -> List[ClassificationTrace]:
    """Reconstruct per-AS traces from ``as.trace`` events.

    The rebuilt traces are structurally identical to what the pipeline
    recorded, so :func:`~repro.obs.narrate.aggregate_spans` and
    :func:`~repro.obs.narrate.narrate_profile` work on them unchanged.
    """
    traces: List[ClassificationTrace] = []
    for event in _events_of(events, "as.trace"):
        spans = tuple(
            Span(
                name=str(span.get("name", "")),
                start_offset=float(span.get("start_offset", 0.0)),
                duration=float(span.get("duration", 0.0)),
                status=str(span.get("status", "")),
                attributes=dict(span.get("attributes", {})),
            )
            for span in event.get("spans", ())
        )
        traces.append(
            ClassificationTrace(
                asn=int(event.get("asn", -1)),
                spans=spans,
                total_seconds=float(event.get("total_seconds", 0.0)),
                error=event.get("error"),
                tags=dict(event.get("tags", {})),
            )
        )
    return traces


def stage_durations(
    events: Sequence[Mapping[str, object]]
) -> Dict[str, List[float]]:
    """Stage name -> raw per-span durations, from the ``as.trace``
    events (exact values, not histogram buckets)."""
    durations: Dict[str, List[float]] = {}
    for trace in traces_from_events(events):
        for span in trace.spans:
            durations.setdefault(span.name, []).append(span.duration)
    return durations


def percentile(values: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile (q in [0, 1]) over raw values."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _metrics(
    events: Sequence[Mapping[str, object]]
) -> Mapping[str, Mapping]:
    end = _end_event(events)
    if end is None:
        return {}
    return end.get("metrics", {}) or {}


def _counter_series(
    metrics: Mapping[str, Mapping], name: str
) -> Dict[Tuple[str, ...], float]:
    entry = metrics.get("counters", {}).get(name)
    if not entry:
        return {}
    return {
        tuple(series["labels"]): float(series["value"])
        for series in entry.get("series", ())
    }


def _gauge_value(
    metrics: Mapping[str, Mapping], name: str
) -> Optional[float]:
    entry = metrics.get("gauges", {}).get(name)
    if not entry or not entry.get("series"):
        return None
    return float(entry["series"][0]["value"])


# -- SLO engine -------------------------------------------------------------


@dataclass(frozen=True)
class SloRule:
    """One declarative budget from an SLO file.

    Attributes:
        id: Human-readable rule identity (unique per file).
        kind: One of :data:`SLO_KINDS`.
        params: Kind-specific parameters (``stage``, ``max``, ``min``).
    """

    id: str
    kind: str
    params: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class SloResult:
    """One evaluated budget.

    ``ok`` is True for both passes and skips; ``skipped`` separates
    "budget held" from "budget not applicable to this ledger".
    """

    rule: SloRule
    ok: bool
    observed: Optional[float] = None
    limit: Optional[float] = None
    skipped: bool = False
    detail: str = ""


def load_slos(path: str) -> List[SloRule]:
    """Parse an SLO file; raises :class:`SloError` on malformed input."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except OSError as exc:
        raise SloError(
            f"cannot read SLO file {path}: {exc.strerror or exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise SloError(f"{path} is not valid JSON: {exc}") from exc
    entries = document.get("slos")
    if not isinstance(entries, list) or not entries:
        raise SloError(f"{path} must contain a non-empty 'slos' list")
    rules: List[SloRule] = []
    seen = set()
    for index, entry in enumerate(entries):
        kind = entry.get("kind")
        if kind not in SLO_KINDS:
            raise SloError(
                f"slo #{index}: unknown kind {kind!r} "
                f"(one of {', '.join(SLO_KINDS)})"
            )
        rule_id = str(entry.get("id", f"{kind}-{index}"))
        if rule_id in seen:
            raise SloError(f"duplicate slo id {rule_id!r}")
        seen.add(rule_id)
        params = {
            key: value for key, value in entry.items()
            if key not in ("id", "kind")
        }
        rules.append(SloRule(id=rule_id, kind=kind, params=params))
    return rules


def _check_max(
    rule: SloRule, observed: Optional[float], limit_key: str = "max"
) -> SloResult:
    limit = rule.params.get(limit_key)
    if limit is None:
        return SloResult(
            rule, ok=False, detail=f"rule is missing {limit_key!r}"
        )
    if observed is None:
        return SloResult(
            rule, ok=True, skipped=True, limit=float(limit),
            detail="no data in ledger",
        )
    return SloResult(
        rule,
        ok=observed <= float(limit),
        observed=observed,
        limit=float(limit),
    )


def _check_min(rule: SloRule, observed: Optional[float]) -> SloResult:
    limit = rule.params.get("min")
    if limit is None:
        return SloResult(rule, ok=False, detail="rule is missing 'min'")
    if observed is None:
        return SloResult(
            rule, ok=True, skipped=True, limit=float(limit),
            detail="no data in ledger",
        )
    return SloResult(
        rule,
        ok=observed >= float(limit),
        observed=observed,
        limit=float(limit),
    )


def evaluate_slos(
    events: Sequence[Mapping[str, object]], rules: Sequence[SloRule]
) -> List[SloResult]:
    """Evaluate every rule against one ledger's events."""
    metrics = _metrics(events)
    end = _end_event(events)
    durations = stage_durations(events)
    results: List[SloResult] = []
    for rule in rules:
        if rule.kind == "max_stage_p99_seconds":
            stage = rule.params.get("stage")
            if not stage:
                results.append(SloResult(
                    rule, ok=False, detail="rule is missing 'stage'"
                ))
                continue
            values = durations.get(str(stage))
            observed = percentile(values, 0.99) if values else None
            results.append(_check_max(rule, observed))
        elif rule.kind == "max_degraded_fraction":
            degraded = (end or {}).get("degraded") or {}
            total = degraded.get("total")
            observed = (
                float(degraded.get("records", 0)) / float(total)
                if total else None
            )
            results.append(_check_max(rule, observed))
        elif rule.kind == "min_cache_hit_rate":
            observed = _gauge_value(metrics, "asdb_cache_hit_rate")
            results.append(_check_min(rule, observed))
        elif rule.kind == "max_reclassified":
            sweeps = _events_of(events, "sweep.report")
            observed = (
                float(sum(
                    int(sweep.get("reclassified", 0)) for sweep in sweeps
                ))
                if sweeps else None
            )
            results.append(_check_max(rule, observed))
        elif rule.kind == "max_run_seconds":
            observed = (
                float(end["duration"])
                if end is not None and "duration" in end else None
            )
            results.append(_check_max(rule, observed))
    return results


def render_health(results: Sequence[SloResult]) -> str:
    """Render evaluated budgets, one PASS/FAIL/SKIP line per rule."""
    if not results:
        return "no SLO rules evaluated"
    lines: List[str] = []
    id_width = max(len(result.rule.id) for result in results)
    breaches = 0
    for result in results:
        if result.skipped:
            verdict = "SKIP"
        elif result.ok:
            verdict = "PASS"
        else:
            verdict = "FAIL"
            breaches += 1
        detail = result.detail
        if result.observed is not None and result.limit is not None:
            comparator = (
                ">=" if result.rule.kind.startswith("min_") else "<="
            )
            detail = (
                f"observed {result.observed:.6g} "
                f"{comparator} {result.limit:.6g}"
            )
        lines.append(
            f"  {verdict:4s}  {result.rule.id.ljust(id_width)}  "
            f"{result.rule.kind}  {detail}".rstrip()
        )
    evaluated = sum(1 for result in results if not result.skipped)
    header = (
        f"SLO health: {breaches} breach(es) over {evaluated} "
        f"evaluated budget(s) ({len(results) - evaluated} skipped)"
    )
    return "\n".join([header] + lines)


# -- reports ----------------------------------------------------------------


def _columns(rows: List[List[str]], indent: str = "  ") -> List[str]:
    """Left-aligned column layout without importing repro.reporting
    (which itself imports repro.obs)."""
    if not rows:
        return []
    widths = [
        max(len(row[index]) for row in rows)
        for index in range(len(rows[0]))
    ]
    return [
        indent + "  ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(row)
        ).rstrip()
        for row in rows
    ]


def _worker_rollup(
    events: Sequence[Mapping[str, object]]
) -> Dict[str, Tuple[int, float, int]]:
    """Executor kind -> (spans, seconds, distinct workers)."""
    rollup: Dict[str, Tuple[int, float, set]] = {}
    for event in _events_of(events, "span"):
        worker = event.get("worker") or {}
        kind = str(worker.get("kind", "main"))
        identity = worker.get("name") or worker.get("pid")
        count, seconds, members = rollup.get(kind, (0, 0.0, set()))
        members = set(members)
        members.add(identity)
        rollup[kind] = (
            count + 1,
            seconds + float(event.get("duration", 0.0)),
            members,
        )
    return {
        kind: (count, seconds, len(members))
        for kind, (count, seconds, members) in rollup.items()
    }


def _source_rollup_rows(
    metrics: Mapping[str, Mapping],
    breakers: Mapping[str, str],
) -> List[List[str]]:
    lookups = _counter_series(metrics, "asdb_source_lookups_total")
    errors = _counter_series(metrics, "asdb_source_errors_total")
    degraded = _counter_series(metrics, "asdb_source_degraded_total")
    sources = sorted(
        {key[0] for key in lookups}
        | {key[0] for key in errors}
        | {key[0] for key in degraded}
        | set(breakers)
    )
    if not sources:
        return []
    rows = [["source", "match", "miss", "errors", "degraded", "breaker"]]
    for source in sources:
        rows.append([
            source,
            f"{lookups.get((source, 'match'), 0):.0f}",
            f"{lookups.get((source, 'miss'), 0):.0f}",
            f"{sum(v for k, v in errors.items() if k[0] == source):.0f}",
            f"{degraded.get((source,), 0):.0f}",
            str(breakers.get(source, "-")),
        ])
    return rows


def render_report(
    events: Sequence[Mapping[str, object]], path: str = ""
) -> str:
    """The ``repro report`` document: run header, per-stage rollup,
    worker-span rollup, per-source rollup, resources, sweeps."""
    start = events[0]
    end = _end_event(events)
    metrics = _metrics(events)
    traces = traces_from_events(events)
    durations = stage_durations(events)

    lines: List[str] = []
    status = str((end or {}).get("status", "incomplete"))
    duration = (end or {}).get("duration")
    header = (
        f"run {start.get('run', '?')} ({start.get('kind', '?')}) — "
        f"{status}"
    )
    if duration is not None:
        header += f" in {format_seconds(float(duration))}"
    lines.append(header)
    lines.append(
        f"  config {start.get('config_digest', '?')}  "
        f"world {start.get('world_digest', '?')}  "
        f"events {len(events)}"
        + (f"  ledger {path}" if path else "")
    )

    if traces:
        lines.append("")
        lines.append(f"per-stage rollup ({len(traces)} AS traces):")
        rows = [["stage", "calls", "total", "mean", "p99"]]
        for name, calls, seconds in aggregate_spans(traces):
            rows.append([
                name,
                str(calls),
                format_seconds(seconds),
                format_seconds(seconds / calls),
                format_seconds(percentile(durations[name], 0.99)),
            ])
        lines.extend(_columns(rows))
        errors = sum(1 for trace in traces if trace.error)
        if errors:
            lines.append(f"  aborted classifications: {errors}")

    workers = _worker_rollup(events)
    if workers:
        lines.append("")
        lines.append("executor spans:")
        rows = [["executor", "spans", "seconds", "workers"]]
        for kind in sorted(workers):
            count, seconds, members = workers[kind]
            rows.append([
                kind, str(count), format_seconds(seconds), str(members)
            ])
        lines.extend(_columns(rows))

    breakers = dict((end or {}).get("breakers") or {})
    source_rows = _source_rollup_rows(metrics, breakers)
    if source_rows:
        lines.append("")
        lines.append("per-source rollup:")
        lines.extend(_columns(source_rows))
    degraded = (end or {}).get("degraded") or {}
    if degraded.get("total"):
        lines.append(
            f"  degraded records: {degraded.get('records', 0)}"
            f"/{degraded['total']}"
        )

    samples = _events_of(events, "resource.sample")
    if samples:
        lines.append("")
        rss = [
            int(sample["rss_kb"]) for sample in samples
            if sample.get("rss_kb") is not None
        ]
        cpu = [
            float(sample["cpu_seconds"]) for sample in samples
            if sample.get("cpu_seconds") is not None
        ]
        peak = f"{max(rss) / 1024:.1f} MB" if rss else "unknown"
        lines.append(
            f"resources: {len(samples)} samples, peak rss {peak}, "
            f"cpu {format_seconds(max(cpu) if cpu else 0.0)}"
        )

    for sweep in _events_of(events, "sweep.report"):
        lines.append(
            f"sweep days {sweep.get('since_day')}..{sweep.get('through_day')}: "
            f"{sweep.get('reclassified', 0)} reclassified "
            f"({sweep.get('new', 0)} new, {sweep.get('updated', 0)} updated)"
            + (
                f" -> snapshot v{sweep['snapshot_version']}"
                if sweep.get("snapshot_version") is not None else ""
            )
        )
    for snap in _events_of(events, "snapshot.saved"):
        lines.append(
            f"snapshot saved: v{snap.get('version')} ({snap.get('kind')}, "
            f"{snap.get('records')} records)"
        )
    return "\n".join(lines)


def compare_document(
    a_events: Sequence[Mapping[str, object]],
    b_events: Sequence[Mapping[str, object]],
) -> Dict[str, Dict[str, Optional[float]]]:
    """BENCH-style comparison rows: metric -> {a, b, delta}.

    ``delta`` is relative (b/a - 1) for durations and absolute for
    rates/counts; None when either side lacks the metric.
    """
    def _row(
        a: Optional[float], b: Optional[float], relative: bool
    ) -> Dict[str, Optional[float]]:
        delta: Optional[float] = None
        if a is not None and b is not None:
            delta = (b / a - 1.0) if (relative and a) else (b - a)
        return {"a": a, "b": b, "delta": delta}

    rows: Dict[str, Dict[str, Optional[float]]] = {}
    a_end, b_end = _end_event(a_events), _end_event(b_events)
    rows["run_seconds"] = _row(
        float(a_end["duration"]) if a_end and "duration" in a_end else None,
        float(b_end["duration"]) if b_end and "duration" in b_end else None,
        relative=True,
    )
    a_stages = stage_durations(a_events)
    b_stages = stage_durations(b_events)
    for stage in sorted(set(a_stages) | set(b_stages)):
        a_values, b_values = a_stages.get(stage), b_stages.get(stage)
        rows[f"stage_total_seconds/{stage}"] = _row(
            sum(a_values) if a_values else None,
            sum(b_values) if b_values else None,
            relative=True,
        )
        rows[f"stage_p99_seconds/{stage}"] = _row(
            percentile(a_values, 0.99) if a_values else None,
            percentile(b_values, 0.99) if b_values else None,
            relative=True,
        )
    a_metrics, b_metrics = _metrics(a_events), _metrics(b_events)
    rows["cache_hit_rate"] = _row(
        _gauge_value(a_metrics, "asdb_cache_hit_rate"),
        _gauge_value(b_metrics, "asdb_cache_hit_rate"),
        relative=False,
    )
    a_degraded = (a_end or {}).get("degraded") or {}
    b_degraded = (b_end or {}).get("degraded") or {}
    rows["degraded_records"] = _row(
        float(a_degraded.get("records", 0)) if a_end else None,
        float(b_degraded.get("records", 0)) if b_end else None,
        relative=False,
    )
    return rows


def render_compare(
    a_events: Sequence[Mapping[str, object]],
    b_events: Sequence[Mapping[str, object]],
    a_path: str = "A",
    b_path: str = "B",
) -> str:
    """Human-readable regression diff between two ledgers."""
    document = compare_document(a_events, b_events)
    lines = [
        f"run comparison: A={a_path} ({a_events[0].get('run', '?')})  "
        f"B={b_path} ({b_events[0].get('run', '?')})"
    ]
    rows = [["metric", "A", "B", "delta"]]

    def _fmt(name: str, value: Optional[float]) -> str:
        if value is None:
            return "-"
        if "seconds" in name:
            return format_seconds(value)
        return f"{value:.4g}"

    for name, row in document.items():
        delta = row["delta"]
        if delta is None:
            shown = "-"
        elif "seconds" in name:
            shown = f"{delta:+.1%}"
        else:
            shown = f"{delta:+.4g}"
        rows.append([
            name, _fmt(name, row["a"]), _fmt(name, row["b"]), shown
        ])
    lines.extend(_columns(rows))
    return "\n".join(lines)
