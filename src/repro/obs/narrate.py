"""Human-readable narration of a :class:`ClassificationTrace`.

Turns the spans the pipeline actually recorded into the per-stage story
``repro lookup --trace`` prints::

    AS64512 classified in 1.84 ms
      cache          0.01 ms  miss            key=name:acme networks
      asn_match      0.52 ms  no_high_conf    peeringdb=miss ipinfo=match
      domain_choice  0.30 ms  chosen          domain=acme.net hints=1
      ...

The narration is derived purely from the trace, so it never disagrees
with what the pipeline did.
"""

from __future__ import annotations

from typing import List

from .trace import ClassificationTrace, Span

__all__ = ["narrate_trace", "format_seconds"]


def format_seconds(seconds: float) -> str:
    """Adaptive duration formatting (us / ms / s)."""
    if seconds < 0.001:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.2f} s"


def _format_attribute(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, (list, tuple)):
        return ",".join(str(item) for item in value) or "-"
    if value is None:
        return "-"
    return str(value)


def _span_lines(span: Span, name_width: int) -> List[str]:
    duration = format_seconds(span.duration).rjust(9)
    head = (
        f"  {span.name.ljust(name_width)}  {duration}  "
        f"{span.status or '-'}"
    )
    lines = [head.rstrip()]
    for key in sorted(span.attributes):
        lines.append(
            f"  {' ' * name_width}  {' ' * 9}    "
            f"{key}={_format_attribute(span.attributes[key])}"
        )
    return lines


def narrate_trace(trace: ClassificationTrace) -> str:
    """Render one AS's trace as an indented per-stage narration."""
    lines = [
        f"AS{trace.asn} classified in "
        f"{format_seconds(trace.total_seconds)} "
        f"({len(trace.spans)} stages)"
    ]
    name_width = max((len(span.name) for span in trace.spans), default=0)
    for span in trace.spans:
        lines.extend(_span_lines(span, name_width))
    if trace.error is not None:
        lines.append(f"  aborted: {trace.error}")
    return "\n".join(lines)
