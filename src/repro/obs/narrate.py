"""Human-readable narration of a :class:`ClassificationTrace`.

Turns the spans the pipeline actually recorded into the per-stage story
``repro lookup --trace`` prints::

    AS64512 classified in 1.84 ms
      cache          0.01 ms  miss            key=name:acme networks
      asn_match      0.52 ms  no_high_conf    peeringdb=miss ipinfo=match
      domain_choice  0.30 ms  chosen          domain=acme.net hints=1
      ...

The narration is derived purely from the trace, so it never disagrees
with what the pipeline did.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from .trace import ClassificationTrace, Span

__all__ = [
    "narrate_trace",
    "narrate_sweep",
    "narrate_profile",
    "aggregate_spans",
    "format_seconds",
]


def format_seconds(seconds: float) -> str:
    """Adaptive duration formatting (us / ms / s)."""
    if seconds < 0.001:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.2f} s"


def _format_attribute(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, (list, tuple)):
        return ",".join(str(item) for item in value) or "-"
    if value is None:
        return "-"
    return str(value)


def _span_lines(span: Span, name_width: int) -> List[str]:
    duration = format_seconds(span.duration).rjust(9)
    head = (
        f"  {span.name.ljust(name_width)}  {duration}  "
        f"{span.status or '-'}"
    )
    lines = [head.rstrip()]
    for key in sorted(span.attributes):
        lines.append(
            f"  {' ' * name_width}  {' ' * 9}    "
            f"{key}={_format_attribute(span.attributes[key])}"
        )
    return lines


def narrate_sweep(report) -> str:
    """Render a maintenance :class:`~repro.core.SweepReport` as text.

    Duck-typed on the report (this module imports nothing from
    ``repro.core``): the window line, the change/reclassify summary,
    and — when the sweep ran with tracing — the per-phase spans.
    """
    if report.is_baseline:
        window = f"baseline through day {report.through_day}"
    else:
        window = (
            f"window days {report.since_day + 1}..{report.through_day}"
        )
    lines = [
        f"sweep {window} ({report.window_days} days): "
        f"{len(report.new_asns)} new, "
        f"{len(report.updated_asns)} updated, "
        f"reclassified {report.reclassified}"
    ]
    if report.window_days > 0 and not report.is_baseline:
        lines.append(
            f"  change rate: {report.updates_per_week:.1f} ASes/week"
        )
    if report.snapshot_version is not None:
        lines.append(f"  stored snapshot v{report.snapshot_version}")
    if report.trace is not None:
        name_width = max(
            (len(span.name) for span in report.trace.spans), default=0
        )
        for span in report.trace.spans:
            lines.extend(_span_lines(span, name_width))
    return "\n".join(lines)


def aggregate_spans(
    traces: Iterable[ClassificationTrace],
) -> List[Tuple[str, int, float]]:
    """Aggregate recorded spans across traces into per-stage totals.

    Returns ``(stage_name, calls, total_seconds)`` rows sorted by
    descending total wall time.  Pure aggregation over the spans the
    pipeline already recorded — no new instrumentation.
    """
    totals: dict = {}
    for trace in traces:
        for span in trace.spans:
            calls, seconds = totals.get(span.name, (0, 0.0))
            totals[span.name] = (calls + 1, seconds + span.duration)
    return sorted(
        (
            (name, calls, seconds)
            for name, (calls, seconds) in totals.items()
        ),
        key=lambda row: -row[2],
    )


def narrate_profile(
    traces: Iterable[ClassificationTrace], top: int = 5
) -> str:
    """The ``classify --profile`` report: top-N slowest pipeline stages.

    Derived entirely from existing trace spans via
    :func:`aggregate_spans`; percentages are of the total traced span
    time, so they answer "where did the pass spend its time".
    """
    rows = aggregate_spans(traces)
    if not rows:
        return "no trace spans recorded"
    grand_total = sum(seconds for _, _, seconds in rows)
    shown = rows[: max(1, top)]
    name_width = max(len(name) for name, _, _ in shown)
    lines = [
        f"slowest pipeline stages (top {len(shown)} of {len(rows)}, "
        f"{format_seconds(grand_total)} traced):"
    ]
    for name, calls, seconds in shown:
        share = seconds / grand_total if grand_total else 0.0
        lines.append(
            f"  {name.ljust(name_width)}  "
            f"{format_seconds(seconds).rjust(9)}  "
            f"{share:6.1%}  {calls:6d} calls  "
            f"{format_seconds(seconds / calls)}/call"
        )
    return "\n".join(lines)


def narrate_trace(trace: ClassificationTrace) -> str:
    """Render one AS's trace as an indented per-stage narration."""
    lines = [
        f"AS{trace.asn} classified in "
        f"{format_seconds(trace.total_seconds)} "
        f"({len(trace.spans)} stages)"
    ]
    name_width = max((len(span.name) for span in trace.spans), default=0)
    for span in trace.spans:
        lines.extend(_span_lines(span, name_width))
    if trace.error is not None:
        lines.append(f"  aborted: {trace.error}")
    return "\n".join(lines)
