"""Dependency-free metrics primitives for the ASdb pipeline.

A :class:`MetricsRegistry` owns named :class:`Counter`, :class:`Gauge`,
and :class:`Histogram` instruments, each optionally labeled (e.g.
``source_lookups_total{source="dnb", outcome="match"}``).  Snapshots
export either as a JSON-able dict or in the Prometheus text exposition
format, so a deployment can scrape the classifier like any other
service.

Instrumented code never checks whether observability is enabled: the
module-level :data:`NULL_REGISTRY` hands out no-op instruments, keeping
the zero-config hot path identical to an uninstrumented one.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]

#: Log-scale latency buckets (seconds): 10us to 10s in 1-2.5-5 decades.
#: Wide enough for a dictionary probe and a full scrape+train pass alike.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

LabelValues = Tuple[str, ...]


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_labels(labelnames: Sequence[str], values: LabelValues) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, values)
    )
    return "{" + pairs + "}"


def _format_float(value: float) -> str:
    """Prometheus-style number formatting (integers without the dot)."""
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared naming/label bookkeeping for all instrument kinds.

    Every instrument carries its own lock: the batch classification
    engine updates shared counters and histograms from worker threads,
    and unsynchronized read-modify-write on the series dicts would drop
    increments or publish torn snapshots.
    """

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, object]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)


class Counter(_Metric):
    """Monotonically increasing count, optionally labeled."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (>= 0) to the series selected by ``labels``.

        ``inc(0, ...)`` registers a series so exporters show it even
        before the first real event (e.g. a stage that never fired).
        """
        if amount < 0:
            raise ValueError("counters can only increase")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of one labeled series (0.0 if never touched)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum across every labeled series."""
        with self._lock:
            return sum(self._values.values())

    def series(self) -> Dict[LabelValues, float]:
        """Label-values tuple -> value, for exporters and tests."""
        with self._lock:
            return dict(self._values)


class Gauge(_Metric):
    """A value that can go up and down (e.g. a hit rate)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def series(self) -> Dict[LabelValues, float]:
        with self._lock:
            return dict(self._values)


class _HistogramSeries:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class _TimerContext:
    """Context manager observing elapsed wall time into a histogram."""

    __slots__ = ("_histogram", "_labels", "_start")

    def __init__(self, histogram: "Histogram", labels: Dict[str, object]):
        self._histogram = histogram
        self._labels = labels

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(
            time.perf_counter() - self._start, **self._labels
        )


class Histogram(_Metric):
    """Distribution over fixed buckets (Prometheus-style cumulative)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a sorted non-empty sequence")
        self.buckets = tuple(float(b) for b in buckets)
        self._series: Dict[LabelValues, _HistogramSeries] = {}

    def _series_for(self, labels: Dict[str, object]) -> _HistogramSeries:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        return series

    def observe(self, value: float, **labels: object) -> None:
        with self._lock:
            series = self._series_for(labels)
            series.sum += value
            series.count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[index] += 1

    def time(self, **labels: object) -> _TimerContext:
        """``with histogram.time(...):`` observes the block's wall time."""
        return _TimerContext(self, labels)

    def count(self, **labels: object) -> int:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return series.count if series else 0

    def sum(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return series.sum if series else 0.0

    def mean(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None or series.count == 0:
                return 0.0
            return series.sum / series.count

    def quantile(self, q: float, **labels: object) -> float:
        """Bucket-resolution quantile estimate (upper bound of the
        bucket containing the q-th observation; the top bucket bound
        when the mass lies beyond the last finite bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None or series.count == 0:
                return 0.0
            rank = q * series.count
            for index, bound in enumerate(self.buckets):
                if series.bucket_counts[index] >= rank:
                    return bound
            return self.buckets[-1]

    def series(self) -> Dict[LabelValues, _HistogramSeries]:
        # Deep-copy each series so exporters never see a half-applied
        # observation (sum bumped, bucket not yet).
        with self._lock:
            out: Dict[LabelValues, _HistogramSeries] = {}
            for key, series in self._series.items():
                copy = _HistogramSeries(len(self.buckets))
                copy.bucket_counts = list(series.bucket_counts)
                copy.sum = series.sum
                copy.count = series.count
                out[key] = copy
            return out


class MetricsRegistry:
    """Named instrument store with idempotent get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._registry_lock = threading.Lock()

    def _get_or_create(
        self, cls, name: str, help: str, labelnames: Sequence[str], **kwargs
    ):
        with self._registry_lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        """The registered instrument for ``name``, or None."""
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[_Metric]:
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    # -- exporters ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-able snapshot: {kind: {name: {...}}}."""
        counters: Dict[str, Dict] = {}
        gauges: Dict[str, Dict] = {}
        histograms: Dict[str, Dict] = {}
        for metric in self:
            if isinstance(metric, Counter):
                counters[metric.name] = {
                    "help": metric.help,
                    "labelnames": list(metric.labelnames),
                    "series": [
                        {"labels": list(key), "value": value}
                        for key, value in sorted(metric.series().items())
                    ],
                }
            elif isinstance(metric, Gauge):
                gauges[metric.name] = {
                    "help": metric.help,
                    "labelnames": list(metric.labelnames),
                    "series": [
                        {"labels": list(key), "value": value}
                        for key, value in sorted(metric.series().items())
                    ],
                }
            elif isinstance(metric, Histogram):
                histograms[metric.name] = {
                    "help": metric.help,
                    "labelnames": list(metric.labelnames),
                    "buckets": list(metric.buckets),
                    "series": [
                        {
                            "labels": list(key),
                            "count": series.count,
                            "sum": series.sum,
                            "bucket_counts": list(series.bucket_counts),
                        }
                        for key, series in sorted(metric.series().items())
                    ],
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for metric in self:
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, (Counter, Gauge)):
                for key, value in sorted(metric.series().items()):
                    labels = _format_labels(metric.labelnames, key)
                    lines.append(
                        f"{metric.name}{labels} {_format_float(value)}"
                    )
            elif isinstance(metric, Histogram):
                for key, series in sorted(metric.series().items()):
                    # bucket_counts are stored cumulatively (Prometheus
                    # ``le`` semantics), so they export verbatim.
                    for bound, in_bucket in zip(
                        metric.buckets, series.bucket_counts
                    ):
                        le_labels = _format_labels(
                            metric.labelnames + ("le",),
                            key + (_format_float(bound),),
                        )
                        lines.append(
                            f"{metric.name}_bucket{le_labels} {in_bucket}"
                        )
                    inf_labels = _format_labels(
                        metric.labelnames + ("le",), key + ("+Inf",)
                    )
                    lines.append(
                        f"{metric.name}_bucket{inf_labels} {series.count}"
                    )
                    plain = _format_labels(metric.labelnames, key)
                    lines.append(
                        f"{metric.name}_sum{plain} "
                        f"{_format_float(series.sum)}"
                    )
                    lines.append(
                        f"{metric.name}_count{plain} {series.count}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        return None

    def value(self, **labels: object) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def series(self) -> Dict[LabelValues, float]:
        return {}


class _NullGauge(_NullCounter):
    def set(self, value: float, **labels: object) -> None:
        return None

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        return None


class _NullHistogram:
    __slots__ = ()

    buckets: Tuple[float, ...] = ()

    def observe(self, value: float, **labels: object) -> None:
        return None

    def time(self, **labels: object) -> _NullTimer:
        return _NULL_TIMER

    def count(self, **labels: object) -> int:
        return 0

    def sum(self, **labels: object) -> float:
        return 0.0

    def mean(self, **labels: object) -> float:
        return 0.0

    def quantile(self, q: float, **labels: object) -> float:
        return 0.0

    def series(self) -> Dict[LabelValues, _HistogramSeries]:
        return {}


_NULL_TIMER = _NullTimer()
_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """No-op registry: instruments accept every call and record nothing.

    The default for every instrumented component, so uninstrumented
    deployments pay only an attribute lookup and a no-op call.
    """

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name, help="", labelnames=()):  # type: ignore[override]
        return _NULL_COUNTER

    def gauge(self, name, help="", labelnames=()):  # type: ignore[override]
        return _NULL_GAUGE

    def histogram(  # type: ignore[override]
        self, name, help="", labelnames=(), buckets=DEFAULT_LATENCY_BUCKETS
    ):
        return _NULL_HISTOGRAM


#: Shared no-op registry.  Substitute it with an explicit ``is not None``
#: check — ``metrics if metrics is not None else NULL_REGISTRY`` — never
#: with ``or``: an empty MetricsRegistry has ``len() == 0`` and is falsy.
NULL_REGISTRY = NullRegistry()
