"""Observability layer: metrics, per-AS tracing, source instrumentation.

Everything here is dependency-free and opt-in.  Components accept an
optional :class:`MetricsRegistry`; with none configured the shared
:data:`NULL_REGISTRY` makes every emission a no-op, so the zero-config
pipeline behaves exactly as before.

Quickstart::

    from repro import SystemConfig, WorldConfig, build_asdb, generate_world
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    world = generate_world(WorldConfig(n_orgs=200))
    built = build_asdb(world, SystemConfig(metrics=registry, trace=True))
    built.asdb.classify_all()
    print(registry.to_prometheus())            # scrapeable snapshot
    record = built.asdb.dataset.get(world.asns()[0])
    from repro.obs import narrate_trace
    print(narrate_trace(record.trace))         # per-stage span story
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from .trace import (
    ClassificationTrace,
    NullTraceBuilder,
    Span,
    TraceBuilder,
    trace_builder,
)
from .instrument import InstrumentedSource, instrument_source, timed
from .narrate import (
    aggregate_spans,
    format_seconds,
    narrate_profile,
    narrate_sweep,
    narrate_trace,
)
from .runlog import (
    LEDGER_SCHEMA,
    NULL_RUNLOG,
    NullRunLog,
    ResourceSampler,
    RunLog,
    config_digest,
    read_ledger,
    read_rss_kb,
)
from .health import (
    LedgerError,
    SloError,
    SloResult,
    SloRule,
    evaluate_slos,
    load_events,
    load_slos,
    percentile,
    render_compare,
    render_health,
    render_report,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "ClassificationTrace",
    "Span",
    "TraceBuilder",
    "NullTraceBuilder",
    "trace_builder",
    "InstrumentedSource",
    "instrument_source",
    "timed",
    "format_seconds",
    "narrate_trace",
    "narrate_sweep",
    "narrate_profile",
    "aggregate_spans",
    "LEDGER_SCHEMA",
    "RunLog",
    "NullRunLog",
    "NULL_RUNLOG",
    "ResourceSampler",
    "config_digest",
    "read_ledger",
    "read_rss_kb",
    "LedgerError",
    "SloError",
    "SloRule",
    "SloResult",
    "load_events",
    "load_slos",
    "percentile",
    "evaluate_slos",
    "render_health",
    "render_report",
    "render_compare",
]
