"""Instrumentation adapters between pipeline components and metrics.

:class:`InstrumentedSource` decorates any ``DataSource`` so every
``lookup`` emits ``asdb_source_lookups_total{source, outcome}`` and an
``asdb_source_lookup_seconds{source}`` latency observation — without the
source (or its callers) knowing a registry exists.

:func:`timed` is the generic timing helper the rest of the pipeline
uses; with a null-registry histogram it degrades to a bare call.

The wrapper duck-types the ``DataSource`` contract (``name``,
``lookup``, ``lookup_by_org``, ``coverage_count``) rather than
importing it: ``repro.obs`` stays a leaf package every layer can
depend on without cycles.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

from .metrics import MetricsRegistry, NULL_REGISTRY, NullRegistry

__all__ = ["InstrumentedSource", "instrument_source", "timed"]

#: Metric family names the wrapper emits (shared with tests and docs).
SOURCE_LOOKUPS_TOTAL = "asdb_source_lookups_total"
SOURCE_LOOKUP_SECONDS = "asdb_source_lookup_seconds"
SOURCE_BATCH_SECONDS = "asdb_source_batch_seconds"


@contextmanager
def timed(histogram, **labels: object) -> Iterator[None]:
    """Observe the wall time of the wrapped block into ``histogram``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        histogram.observe(time.perf_counter() - start, **labels)


class InstrumentedSource:
    """A ``DataSource`` decorator that meters every lookup.

    Delegates the full contract (``name``, ``lookup``, ``lookup_by_org``,
    ``coverage_count``) to the wrapped source, so it is a drop-in
    anywhere a source is accepted, including consensus ranking by name.
    """

    #: Marks the source as already carrying lookup metering, so
    #: :func:`instrument_source` leaves it alone.  Duck-typed (rather
    #: than isinstance) so outer wrappers from higher layers — e.g.
    #: ``repro.core.resilience.ResilientSource`` — can claim it too
    #: without this leaf package importing them.
    already_metered = True

    def __init__(self, inner, registry: MetricsRegistry) -> None:
        self._inner = inner
        self.name = inner.name
        self.registry = registry
        self._lookups = registry.counter(
            SOURCE_LOOKUPS_TOTAL,
            "Data-source lookups by source and outcome.",
            ("source", "outcome"),
        )
        self._seconds = registry.histogram(
            SOURCE_LOOKUP_SECONDS,
            "Data-source lookup latency in seconds.",
            ("source",),
        )
        self._batch_seconds = registry.histogram(
            SOURCE_BATCH_SECONDS,
            "Bulk data-source lookup latency per batch, in seconds.",
            ("source",),
        )
        # Register both outcome series up front so exporters show a
        # source that has, say, never missed.
        for outcome in ("match", "miss"):
            self._lookups.inc(0, source=self.name, outcome=outcome)

    @property
    def inner(self):
        """The wrapped source."""
        return self._inner

    def lookup(self, query):
        start = time.perf_counter()
        match = self._inner.lookup(query)
        self._seconds.observe(
            time.perf_counter() - start, source=self.name
        )
        self._lookups.inc(
            1,
            source=self.name,
            outcome="match" if match is not None else "miss",
        )
        return match

    def lookup_many(self, queries):
        """Meter a bulk lookup: one latency observation per batch, the
        same per-query outcome counters as the scalar path."""
        queries = list(queries)
        start = time.perf_counter()
        matches = self._inner.lookup_many(queries)
        self._batch_seconds.observe(
            time.perf_counter() - start, source=self.name
        )
        for match in matches:
            self._lookups.inc(
                1,
                source=self.name,
                outcome="match" if match is not None else "miss",
            )
        return matches

    def lookup_by_org(self, org_id: str):
        return self._inner.lookup_by_org(org_id)

    def coverage_count(self) -> int:
        return self._inner.coverage_count()


def instrument_source(source, registry: Optional[MetricsRegistry]):
    """Wrap ``source`` for metering, idempotently.

    Returns the source unchanged when there is nothing to meter into
    (no registry, or a :class:`NullRegistry`) or when it is already
    wrapped — so factories can instrument unconditionally.
    """
    if registry is None or isinstance(registry, NullRegistry):
        return source
    if getattr(source, "already_metered", False):
        return source
    return InstrumentedSource(source, registry)
