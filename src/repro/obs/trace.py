"""Per-AS pipeline tracing: one span per Figure-4 stage.

A :class:`TraceBuilder` records spans while :class:`~repro.core.pipeline.ASdb`
walks an AS through the pipeline; :meth:`TraceBuilder.finish` freezes the
result into a :class:`ClassificationTrace` that travels on the
``ASdbRecord``.  Each span carries wall time, a short ``status`` verdict
(``hit``/``miss``/``matched``/...), and free-form attributes (the chosen
domain, per-source match/reject reasons, the consensus decision).

The module deliberately imports nothing from the rest of ``repro`` —
spans store plain strings and scalars — so any layer can depend on it.
A :class:`NullTraceBuilder` keeps the untraced hot path allocation-free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "ClassificationTrace",
    "TraceBuilder",
    "NullTraceBuilder",
    "trace_builder",
]


@dataclass(frozen=True)
class Span:
    """One completed pipeline stage inside a trace.

    Attributes:
        name: Stage name (``cache``, ``asn_match``, ``domain_choice``,
            ``ml``, ``source_match``, ``consensus``).
        start_offset: Seconds from the start of the trace.
        duration: Wall time the stage took, in seconds.
        status: Short outcome verdict (stage-specific vocabulary).
        attributes: Stage detail, stringly keyed and JSON-able.
    """

    name: str
    start_offset: float
    duration: float
    status: str = ""
    attributes: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class ClassificationTrace:
    """Everything observed while classifying one AS.

    Attributes:
        asn: The AS traced.
        spans: Completed stage spans, in execution order.
        total_seconds: End-to-end wall time.
        error: Why classification aborted, when it did (None on the
            normal path).  Set via :meth:`TraceBuilder.fail` by the
            drivers' error handling, so an aborted AS still leaves a
            finished, inspectable trace.
        tags: Provenance stamped on every trace of a pass — e.g. the
            maintenance sweep window and run id that caused the
            reclassification.  Excluded from equality, like wall times:
            the same classification swept on a different day is still
            the same classification.
    """

    asn: int
    spans: Tuple[Span, ...]
    total_seconds: float
    error: Optional[str] = None
    tags: Dict[str, object] = field(
        default_factory=dict, compare=False, repr=False
    )

    def span(self, name: str) -> Optional[Span]:
        """The first span with a given stage name, or None."""
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def stage_seconds(self) -> Dict[str, float]:
        """Stage name -> wall seconds (summed over repeated spans)."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def to_dict(self) -> Dict[str, object]:
        """JSON-able representation for export alongside the dataset."""
        document: Dict[str, object] = {
            "asn": self.asn,
            "total_seconds": self.total_seconds,
            "spans": [
                {
                    "name": span.name,
                    "start_offset": span.start_offset,
                    "duration": span.duration,
                    "status": span.status,
                    "attributes": dict(span.attributes),
                }
                for span in self.spans
            ],
        }
        if self.error is not None:
            document["error"] = self.error
        if self.tags:
            document["tags"] = dict(self.tags)
        return document


class _SpanRecorder:
    """Mutable in-flight span; frozen into a :class:`Span` on exit."""

    __slots__ = ("_builder", "name", "status", "attributes", "_start")

    def __init__(self, builder: "TraceBuilder", name: str) -> None:
        self._builder = builder
        self.name = name
        self.status = ""
        self.attributes: Dict[str, object] = {}

    def set_status(self, status: str) -> "_SpanRecorder":
        self.status = status
        return self

    def note(self, **attributes: object) -> "_SpanRecorder":
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "_SpanRecorder":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = time.perf_counter()
        self._builder._record(
            Span(
                name=self.name,
                start_offset=self._start - self._builder._origin,
                duration=end - self._start,
                status=self.status,
                attributes=self.attributes,
            )
        )


class TraceBuilder:
    """Collects spans for one AS classification."""

    def __init__(
        self, asn: int, tags: Optional[Dict[str, object]] = None
    ) -> None:
        self.asn = asn
        self._origin = time.perf_counter()
        self._spans: List[Span] = []
        self._error: Optional[str] = None
        self._tags: Dict[str, object] = dict(tags) if tags else {}

    def span(self, name: str) -> _SpanRecorder:
        """``with builder.span("ml") as span: ...`` records one stage."""
        return _SpanRecorder(self, name)

    def tag(self, **tags: object) -> "TraceBuilder":
        """Stamp provenance tags onto the finished trace."""
        self._tags.update(tags)
        return self

    def fail(self, message: str) -> None:
        """Mark the classification as aborted; the first error sticks."""
        if self._error is None:
            self._error = message

    def _record(self, span: Span) -> None:
        self._spans.append(span)

    def finish(self) -> ClassificationTrace:
        """Freeze the collected spans into a trace."""
        return ClassificationTrace(
            asn=self.asn,
            spans=tuple(self._spans),
            total_seconds=time.perf_counter() - self._origin,
            error=self._error,
            tags=self._tags,
        )


class _NullSpanRecorder:
    __slots__ = ()

    name = ""
    status = ""

    def set_status(self, status: str) -> "_NullSpanRecorder":
        return self

    def note(self, **attributes: object) -> "_NullSpanRecorder":
        return self

    def __enter__(self) -> "_NullSpanRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpanRecorder()


class NullTraceBuilder:
    """Accepts the full builder API and records nothing."""

    __slots__ = ()

    asn = -1

    def span(self, name: str) -> _NullSpanRecorder:
        return _NULL_SPAN

    def tag(self, **tags: object) -> "NullTraceBuilder":
        return self

    def fail(self, message: str) -> None:
        return None

    def finish(self) -> None:
        return None


_NULL_BUILDER = NullTraceBuilder()


def trace_builder(
    asn: int, enabled: bool, tags: Optional[Dict[str, object]] = None
):
    """A real :class:`TraceBuilder` when enabled, else the shared no-op."""
    return TraceBuilder(asn, tags=tags) if enabled else _NULL_BUILDER
