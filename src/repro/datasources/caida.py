"""The (phased-out) CAIDA UCSD AS Classification dataset, as a baseline.

Until January 2021 CAIDA published a dataset based on Dimitropoulos et
al.'s methodology, categorizing ASes as "transit/access", "enterprise", or
"content" (Section 2).  Its accuracy decayed over 15 years; the paper's
spot-check of the December 2020 snapshot found 72% coverage and 58% / 75% /
0% per-class accuracy.

We reproduce the *decayed* snapshot: a classifier that keys off AS-name /
description keywords (the original methodology) whose output is then aged
with the measured per-class error rates, so the Section-2 comparison bench
can reproduce the paper's numbers.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..taxonomy import LabelSet
from ..world.organization import World
from .base import DataSource, Query, SourceEntry, SourceMatch

__all__ = ["CaidaASClassification", "CAIDA_CLASSES", "caida_class_for_truth"]

CAIDA_CLASSES = ("transit/access", "enterprise", "content")

#: Snapshot decay: per-class probability that a label the methodology got
#: right in 2006 is still right in the December 2020 snapshot (Section 2:
#: 58%, 75%, 0% measured accuracy per class).
_CLASS_ACCURACY = {
    "transit/access": 0.58,
    "enterprise": 0.75,
    "content": 0.00,
}

_COVERAGE = 0.72


def caida_class_for_truth(labels: LabelSet) -> str:
    """The CAIDA class a ground-truth NAICSlite classification maps to."""
    slugs = labels.layer2_slugs()
    if slugs & {"isp", "phone_provider", "ixp", "satellite"}:
        return "transit/access"
    if slugs & {"hosting", "streaming", "online_content", "search_engine"}:
        return "content"
    return "enterprise"


class CaidaASClassification(DataSource):
    """The December-2020 CAIDA snapshot over a synthetic world."""

    name = "caida"

    def __init__(self, world: World, seed: int = 0) -> None:
        self._world = world
        self._entries: Dict[int, str] = {}
        self._build(random.Random(("caida", seed).__repr__()))

    def _build(self, rng: random.Random) -> None:
        for asn in self._world.asns():
            if rng.random() >= _COVERAGE:
                continue
            org = self._world.org_of_asn(asn)
            true_class = caida_class_for_truth(org.truth)
            if rng.random() < _CLASS_ACCURACY[true_class]:
                label = true_class
            else:
                label = rng.choice(
                    [cls for cls in CAIDA_CLASSES if cls != true_class]
                )
            self._entries[asn] = label

    def coverage_count(self) -> int:
        return len(self._entries)

    def classify(self, asn: int) -> Optional[str]:
        """The dataset's class for an ASN, or None if uncovered."""
        return self._entries.get(asn)

    def lookup(self, query: Query) -> Optional[SourceMatch]:
        if query.asn is None:
            return None
        label = self._entries.get(query.asn)
        if label is None:
            return None
        org = self._world.org_of_asn(query.asn)
        entry = SourceEntry(
            entity_id=f"caida-{query.asn}",
            org_id=org.org_id,
            name=org.name,
            domain=None,
            native_categories=(label,),
            labels=LabelSet(),  # CAIDA classes have no NAICSlite translation
        )
        return SourceMatch(source=self.name, entry=entry, via="asn")

    def lookup_by_org(self, org_id: str) -> Optional[SourceMatch]:
        for asn in self._world.asns_of_org(org_id):
            match = self.lookup(Query(asn=asn))
            if match is not None:
                return match
        return None
