"""Clearbit simulator.

Clearbit enriches a *domain* into firmographics and provides only 2-digit
NAICS sector prefixes plus its own custom tags (Table 1).  The coarse
prefixes are the reason for its terrible technology recall (Table 4: 3/49
at layer 1): everything "Information" lands in sector 51, but Clearbit's
own tagging frequently files tech firms under business-services-like
sectors.  Dropped from the final system (Section 3.5); kept here for the
data-source evaluation benchmarks.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from ..taxonomy import translation
from ..world.calibration import CLEARBIT
from ..world.organization import World
from . import emission
from .base import DataSource, Query, SourceEntry, SourceMatch

__all__ = ["Clearbit"]

#: Representative 6-digit code per layer 2 slug -> we keep only its 2-digit
#: sector, as Clearbit does.
def _sector_for_slug(slug: str, rng: random.Random) -> str:
    candidates = translation.naics_candidates_for_layer2(slug)
    if candidates:
        return rng.choice(candidates)[:2]
    return "81"


class Clearbit(DataSource):
    """The Clearbit enrichment API over a synthetic world."""

    name = "clearbit"

    def __init__(self, world: World, seed: int = 0) -> None:
        self._world = world
        self._entries: Dict[str, SourceEntry] = {}
        self._domain_index: Dict[str, str] = {}
        self._build(random.Random(("clearbit", seed).__repr__()))

    def _build(self, rng: random.Random) -> None:
        for org in self._world.iter_organizations():
            if org.domain is None:
                continue  # Clearbit is domain-keyed only (Table 1).
            slugs = emission.emit_layer2_slugs(rng, org.truth, CLEARBIT)
            if slugs is None:
                continue
            sectors = tuple(
                dict.fromkeys(_sector_for_slug(slug, rng) for slug in slugs)
            )
            labels = translation.translate_naics_codes(
                [f"{sector}0000" for sector in sectors]
            ).restrict_to_layer1()
            entry = SourceEntry(
                entity_id=f"clbt-{org.org_id}",
                org_id=org.org_id,
                name=org.name,
                domain=org.domain,
                native_categories=sectors,
                labels=labels,
            )
            self._entries[org.org_id] = entry
            self._domain_index.setdefault(org.domain, org.org_id)

    def coverage_count(self) -> int:
        return len(self._entries)

    def lookup_by_org(self, org_id: str) -> Optional[SourceMatch]:
        entry = self._entries.get(org_id)
        if entry is None:
            return None
        return SourceMatch(source=self.name, entry=entry, via="manual")

    def lookup(self, query: Query) -> Optional[SourceMatch]:
        if not query.domain:
            return None
        hit = self._domain_index.get(query.domain)
        if hit is None:
            return None
        return SourceMatch(
            source=self.name, entry=self._entries[hit], via="domain"
        )
