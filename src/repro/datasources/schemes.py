"""Custom classification schemes and their NAICSlite translations.

Clearbit, Crunchbase, PeeringDB, Zvelo, and IPinfo each use their own
organization classification system (Section 3.2); the paper translates all
of them to NAICSlite via a manual, twice-reviewed mapping.  This module is
that mapping.

Two directions exist per scheme:

* ``*_FOR_LAYER2`` - given a ground-truth NAICSlite layer 2 slug, which
  native category would the source plausibly apply?  (Used by simulators.)
* ``*_TO_NAICSLITE`` - given a native category, which NAICSlite labels does
  it translate to?  (Used by the pipeline's translation stage.)

The mappings are deliberately lossy in the directions the paper measured:
PeeringDB has no hosting category at all (hosting providers register as
"content" or "nsp"), Zvelo's telecom bucket conflates ISPs with phone
providers, and IPinfo's "business" bucket translates to nothing specific.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..taxonomy import Label, LabelSet

__all__ = [
    "PEERINGDB_CATEGORIES",
    "peeringdb_to_naicslite",
    "peeringdb_category_for",
    "IPINFO_CATEGORIES",
    "ipinfo_to_naicslite",
    "ipinfo_category_for",
    "ZVELO_TO_NAICSLITE",
    "zvelo_category_for_layer2",
    "zvelo_to_naicslite",
    "CRUNCHBASE_TO_NAICSLITE",
    "crunchbase_category_for_layer2",
    "crunchbase_to_naicslite",
]

# --------------------------------------------------------------------------
# PeeringDB: six operator-chosen categories (Section 2).
# --------------------------------------------------------------------------

PEERINGDB_CATEGORIES: Tuple[str, ...] = (
    "Cable/DSL/ISP",
    "Network Service Provider",
    "Content",
    "Education/Research",
    "Enterprise",
    "Non-profit",
)

_PDB_TO_NAICSLITE: Dict[str, LabelSet] = {
    "Cable/DSL/ISP": LabelSet.from_layer2_slugs(["isp"]),
    "Network Service Provider": LabelSet.from_layer2_slugs(["isp"]),
    "Content": LabelSet.from_layer2_slugs(
        ["streaming", "online_content"]
    ),
    "Education/Research": LabelSet.from_layer2_slugs(
        ["university", "research"]
    ),
    # "Enterprise" carries no industry information: translated to nothing.
    "Enterprise": LabelSet(),
    "Non-profit": LabelSet.from_layer2_slugs(["nonprofit_other"]),
}


def peeringdb_to_naicslite(category: str) -> LabelSet:
    """Translate a PeeringDB category to NAICSlite."""
    return _PDB_TO_NAICSLITE[category]


def peeringdb_category_for(layer1_slug: str, layer2_slug: Optional[str]) -> str:
    """The PeeringDB category an operator of this type registers as."""
    if layer2_slug in ("isp", "phone_provider"):
        return "Cable/DSL/ISP"
    if layer2_slug in ("ixp", "satellite"):
        return "Network Service Provider"
    if layer2_slug in ("hosting", "search_engine", "streaming",
                       "online_content"):
        # PeeringDB has no hosting category; hosts register as Content or
        # NSP, which is why its hosting recall is 0 (Table 4).
        return "Content"
    if layer1_slug == "education":
        return "Education/Research"
    if layer1_slug == "nonprofit":
        return "Non-profit"
    return "Enterprise"


# --------------------------------------------------------------------------
# IPinfo: four categories (Section 2).
# --------------------------------------------------------------------------

IPINFO_CATEGORIES: Tuple[str, ...] = ("isp", "hosting", "education",
                                      "business")

_IPINFO_TO_NAICSLITE: Dict[str, LabelSet] = {
    "isp": LabelSet.from_layer2_slugs(["isp"]),
    "hosting": LabelSet.from_layer2_slugs(["hosting"]),
    "education": LabelSet(
        [Label(layer1="education")]
    ),
    # "business" = everything else; no NAICSlite information.
    "business": LabelSet(),
}


def ipinfo_to_naicslite(category: str) -> LabelSet:
    """Translate an IPinfo category to NAICSlite."""
    return _IPINFO_TO_NAICSLITE[category]


def ipinfo_category_for(layer1_slug: str, layer2_slug: Optional[str]) -> str:
    """The IPinfo category for a ground-truth NAICSlite classification."""
    if layer2_slug in ("isp", "phone_provider", "ixp", "satellite"):
        return "isp"
    if layer2_slug == "hosting":
        return "hosting"
    if layer1_slug == "education":
        return "education"
    return "business"


# --------------------------------------------------------------------------
# Zvelo: a production website classifier with ~100 content categories; we
# implement the subset relevant to organization classification.
# --------------------------------------------------------------------------

#: NAICSlite layer 2 slug -> the Zvelo category its websites look like.
_ZVELO_FOR_LAYER2: Dict[str, str] = {
    # Technology.  Note: ISPs and phone providers collapse into one bucket;
    # hosting has a bucket of its own but sites must score into it.
    "isp": "internet_telecom",
    "phone_provider": "internet_telecom",
    "satellite": "internet_telecom",
    "ixp": "internet_telecom",
    "hosting": "web_hosting",
    "software": "computers_technology",
    "tech_consulting": "computers_technology",
    "it_other": "computers_technology",
    "search_engine": "search_portals",
    "security": "computer_security",
    "edu_software": "computers_technology",
    # Media.
    "streaming": "streaming_media",
    "online_content": "news_media",
    "print_media": "news_media",
    "music_video_industry": "entertainment",
    "radio_tv": "broadcasting",
    "media_other": "news_media",
    # Finance.
    "banks": "banking",
    "insurance": "insurance",
    "accounting": "business_services",
    "investment": "investing",
    "finance_other": "banking",
    # Education.
    "k12": "education",
    "university": "education",
    "other_schools": "education",
    "research": "science",
    "education_other": "education",
    # Service.
    "consulting": "business_services",
    "repair": "home_services",
    "personal_care": "lifestyle",
    "social_assistance": "society",
    "service_other": "business_services",
    # Agriculture / energy.
    "crop_farming": "agriculture",
    "animal_farming": "agriculture",
    "greenhouses": "agriculture",
    "forestry": "agriculture",
    "mining": "energy_industry",
    "oil_gas": "energy_industry",
    "agriculture_other": "agriculture",
    # Nonprofit.
    "religious": "religion",
    "advocacy": "society",
    "nonprofit_other": "society",
    # Construction / real estate.
    "buildings": "real_estate_construction",
    "civil_engineering": "real_estate_construction",
    "real_estate": "real_estate_construction",
    "construction_other": "real_estate_construction",
    # Entertainment.
    "libraries": "reference",
    "recreation": "sports_recreation",
    "amusement": "sports_recreation",
    "museums": "arts_culture",
    "gambling": "gambling",
    "tours": "travel",
    "entertainment_other": "entertainment",
    # Utilities.
    "electric": "utilities",
    "natural_gas": "utilities",
    "water": "utilities",
    "sewage": "utilities",
    "steam": "utilities",
    "utilities_other": "utilities",
    # Health.
    "hospitals": "health",
    "medical_labs": "health",
    "nursing": "health",
    "healthcare_other": "health",
    # Travel.
    "air_travel": "travel",
    "rail_travel": "travel",
    "water_travel": "travel",
    "hotels": "travel",
    "rv_parks": "travel",
    "boarding": "travel",
    "food_services": "food_dining",
    "travel_other": "travel",
    # Freight.
    "postal": "logistics",
    "air_freight": "logistics",
    "rail_freight": "logistics",
    "water_freight": "logistics",
    "trucking": "logistics",
    "space": "science",
    "passenger_transit": "travel",
    "freight_other": "logistics",
    # Government.
    "military": "government",
    "law_enforcement": "government",
    "agencies": "government",
    "government_other": "government",
    # Retail.
    "grocery": "shopping",
    "clothing": "shopping",
    "retail_other": "shopping",
    # Manufacturing.
    "automotive": "vehicles",
    "food_mfg": "manufacturing",
    "textiles": "manufacturing",
    "machinery": "manufacturing",
    "chemical": "manufacturing",
    "electronics": "manufacturing",
    "manufacturing_other": "manufacturing",
    # Other.
    "individually_owned": "personal_sites",
    "other_other": "society",
}

#: Zvelo category -> NAICSlite labels.  Lossiness is the point: most
#: buckets translate to a *subset* of the L2 slugs that score into them.
ZVELO_TO_NAICSLITE: Dict[str, LabelSet] = {
    "internet_telecom": LabelSet.from_layer2_slugs(
        ["isp", "phone_provider"]
    ),
    "web_hosting": LabelSet.from_layer2_slugs(["hosting"]),
    "computers_technology": LabelSet.from_layer2_slugs(
        ["software", "tech_consulting", "it_other"]
    ),
    "computer_security": LabelSet.from_layer2_slugs(["security"]),
    "search_portals": LabelSet.from_layer2_slugs(["search_engine"]),
    "streaming_media": LabelSet.from_layer2_slugs(["streaming"]),
    "news_media": LabelSet.from_layer2_slugs(
        ["online_content", "print_media"]
    ),
    "broadcasting": LabelSet.from_layer2_slugs(["radio_tv"]),
    "entertainment": LabelSet.from_layer2_slugs(
        ["music_video_industry", "entertainment_other"]
    ),
    "banking": LabelSet.from_layer2_slugs(["banks"]),
    "insurance": LabelSet.from_layer2_slugs(["insurance"]),
    "investing": LabelSet.from_layer2_slugs(["investment"]),
    "education": LabelSet.from_layer2_slugs(["university", "k12"]),
    "science": LabelSet.from_layer2_slugs(["research"]),
    "business_services": LabelSet.from_layer2_slugs(["consulting"]),
    "home_services": LabelSet.from_layer2_slugs(["repair"]),
    "lifestyle": LabelSet.from_layer2_slugs(["personal_care"]),
    "society": LabelSet.from_layer2_slugs(
        ["advocacy", "nonprofit_other", "social_assistance"]
    ),
    "agriculture": LabelSet.from_layer2_slugs(
        ["crop_farming", "animal_farming"]
    ),
    "energy_industry": LabelSet.from_layer2_slugs(["oil_gas", "mining"]),
    "religion": LabelSet.from_layer2_slugs(["religious"]),
    "real_estate_construction": LabelSet.from_layer2_slugs(
        ["real_estate", "buildings"]
    ),
    "reference": LabelSet.from_layer2_slugs(["libraries"]),
    "sports_recreation": LabelSet.from_layer2_slugs(
        ["recreation", "amusement"]
    ),
    "arts_culture": LabelSet.from_layer2_slugs(["museums"]),
    "gambling": LabelSet.from_layer2_slugs(["gambling"]),
    "utilities": LabelSet.from_layer2_slugs(["electric", "water"]),
    "health": LabelSet.from_layer2_slugs(
        ["hospitals", "healthcare_other"]
    ),
    "travel": LabelSet.from_layer2_slugs(["hotels", "travel_other"]),
    "food_dining": LabelSet.from_layer2_slugs(["food_services"]),
    "logistics": LabelSet.from_layer2_slugs(
        ["trucking", "freight_other", "postal"]
    ),
    "government": LabelSet.from_layer2_slugs(
        ["agencies", "military", "law_enforcement"]
    ),
    "shopping": LabelSet.from_layer2_slugs(["retail_other", "grocery"]),
    "vehicles": LabelSet.from_layer2_slugs(["automotive"]),
    "manufacturing": LabelSet.from_layer2_slugs(
        ["machinery", "manufacturing_other"]
    ),
    "personal_sites": LabelSet.from_layer2_slugs(["individually_owned"]),
}


def zvelo_category_for_layer2(layer2_slug: str) -> str:
    """The Zvelo bucket a category's websites look like."""
    return _ZVELO_FOR_LAYER2[layer2_slug]


def zvelo_to_naicslite(category: str) -> LabelSet:
    """Translate a Zvelo category to NAICSlite."""
    return ZVELO_TO_NAICSLITE[category]


# --------------------------------------------------------------------------
# Crunchbase: startup-oriented custom categories.
# --------------------------------------------------------------------------

_CRUNCHBASE_FOR_LAYER2: Dict[str, str] = {
    "isp": "internet services",
    "phone_provider": "mobile",
    "hosting": "cloud infrastructure",
    "security": "cyber security",
    "software": "software",
    "tech_consulting": "information technology",
    "satellite": "aerospace",
    "search_engine": "search engine",
    "ixp": "internet services",
    "it_other": "information technology",
    "streaming": "media and entertainment",
    "online_content": "media and entertainment",
    "banks": "financial services",
    "insurance": "insurance",
    "investment": "venture capital",
    "university": "education",
    "k12": "education",
    "research": "biotechnology",
    "edu_software": "edtech",
    "hospitals": "health care",
    "electric": "energy",
    "oil_gas": "energy",
}

CRUNCHBASE_TO_NAICSLITE: Dict[str, LabelSet] = {
    "internet services": LabelSet.from_layer2_slugs(["isp", "it_other"]),
    "mobile": LabelSet.from_layer2_slugs(["phone_provider"]),
    "cloud infrastructure": LabelSet.from_layer2_slugs(["hosting"]),
    "cyber security": LabelSet.from_layer2_slugs(["security"]),
    "software": LabelSet.from_layer2_slugs(["software"]),
    "information technology": LabelSet.from_layer2_slugs(
        ["it_other", "tech_consulting"]
    ),
    "aerospace": LabelSet.from_layer2_slugs(["satellite", "space"]),
    "search engine": LabelSet.from_layer2_slugs(["search_engine"]),
    "media and entertainment": LabelSet.from_layer2_slugs(
        ["streaming", "online_content", "music_video_industry"]
    ),
    "financial services": LabelSet.from_layer2_slugs(
        ["banks", "finance_other"]
    ),
    "insurance": LabelSet.from_layer2_slugs(["insurance"]),
    "venture capital": LabelSet.from_layer2_slugs(["investment"]),
    "education": LabelSet.from_layer2_slugs(["university", "k12"]),
    "edtech": LabelSet.from_layer2_slugs(["edu_software"]),
    "biotechnology": LabelSet.from_layer2_slugs(["research", "chemical"]),
    "health care": LabelSet.from_layer2_slugs(
        ["hospitals", "healthcare_other"]
    ),
    "energy": LabelSet.from_layer2_slugs(["electric", "oil_gas"]),
    # Generic layer-1-level buckets (translations carry no layer 2).
    "commerce and shopping": LabelSet([Label(layer1="retail")]),
    "transportation": LabelSet([Label(layer1="freight")]),
    "real estate": LabelSet([Label(layer1="construction")]),
    "government and military": LabelSet([Label(layer1="government")]),
    "agriculture and farming": LabelSet([Label(layer1="agriculture")]),
    "manufacturing": LabelSet([Label(layer1="manufacturing")]),
    "travel and tourism": LabelSet([Label(layer1="travel")]),
    "sports and entertainment": LabelSet([Label(layer1="entertainment")]),
    "nonprofit": LabelSet([Label(layer1="nonprofit")]),
    "professional services": LabelSet([Label(layer1="service")]),
    "utilities sector": LabelSet([Label(layer1="utilities")]),
    "consumer goods": LabelSet([Label(layer1="other")]),
}

#: Layer 1 slug -> generic Crunchbase bucket, used when no specific
#: category exists for a layer 2 slug.
_CRUNCHBASE_L1_FALLBACK: Dict[str, str] = {
    "computer_and_it": "information technology",
    "media": "media and entertainment",
    "finance": "financial services",
    "education": "education",
    "service": "professional services",
    "agriculture": "agriculture and farming",
    "nonprofit": "nonprofit",
    "construction": "real estate",
    "entertainment": "sports and entertainment",
    "utilities": "utilities sector",
    "healthcare": "health care",
    "travel": "travel and tourism",
    "freight": "transportation",
    "government": "government and military",
    "retail": "commerce and shopping",
    "manufacturing": "manufacturing",
    "other": "consumer goods",
}


def crunchbase_category_for_layer2(layer2_slug: str) -> Optional[str]:
    """The Crunchbase category for a layer 2 slug.

    Specific vocabulary is startup/tech-skewed; everything else falls back
    to a generic layer-1-level bucket.
    """
    specific = _CRUNCHBASE_FOR_LAYER2.get(layer2_slug)
    if specific is not None:
        return specific
    from ..taxonomy import naicslite

    layer1 = naicslite.layer2_by_name(layer2_slug).layer1.slug
    return _CRUNCHBASE_L1_FALLBACK.get(layer1)


def crunchbase_to_naicslite(category: str) -> LabelSet:
    """Translate a Crunchbase category to NAICSlite."""
    return CRUNCHBASE_TO_NAICSLITE[category]
