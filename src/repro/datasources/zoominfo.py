"""ZoomInfo simulator.

ZoomInfo is a paid business database returning exact NAICS codes.  The
paper evaluates it (68% coverage but the second-worst recall and precision,
Tables 3/4) and then drops it from the final system because it does not
market full data access to academic researchers (Section 3.5).  We keep the
simulator so the data-source evaluation benchmarks cover it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..taxonomy import translation
from ..world.calibration import ZOOMINFO
from ..world.organization import World
from . import emission
from .base import DataSource, Query, SourceEntry, SourceMatch
from .dnb import _avoid_for, _naics_code_for

__all__ = ["ZoomInfo"]


class ZoomInfo(DataSource):
    """The ZoomInfo business database over a synthetic world."""

    name = "zoominfo"

    def __init__(self, world: World, seed: int = 0) -> None:
        self._world = world
        self._entries: Dict[str, SourceEntry] = {}
        self._name_index: Dict[str, str] = {}
        self._domain_index: Dict[str, str] = {}
        self._build(random.Random(("zoominfo", seed).__repr__()))

    def _build(self, rng: random.Random) -> None:
        for org in self._world.iter_organizations():
            slugs = emission.emit_layer2_slugs(rng, org.truth, ZOOMINFO)
            if slugs is None:
                continue
            truth_slugs = org.truth.layer2_slugs()
            codes: List[str] = []
            for slug in slugs:
                codes.append(
                    _naics_code_for(rng, slug, _avoid_for(slug, truth_slugs))
                )
            entry = SourceEntry(
                entity_id=f"zi-{org.org_id}",
                org_id=org.org_id,
                name=org.name,
                domain=org.domain,
                native_categories=tuple(codes),
                labels=translation.translate_naics_codes(codes),
            )
            self._entries[org.org_id] = entry
            self._name_index.setdefault(org.name.lower(), org.org_id)
            if org.domain:
                self._domain_index.setdefault(org.domain, org.org_id)

    def coverage_count(self) -> int:
        return len(self._entries)

    def lookup_by_org(self, org_id: str) -> Optional[SourceMatch]:
        entry = self._entries.get(org_id)
        if entry is None:
            return None
        return SourceMatch(source=self.name, entry=entry, via="manual")

    def lookup(self, query: Query) -> Optional[SourceMatch]:
        hit: Optional[str] = None
        if query.domain:
            hit = self._domain_index.get(query.domain)
        if hit is None and query.name:
            hit = self._name_index.get(query.name.lower())
        if hit is None:
            return None
        return SourceMatch(source=self.name, entry=self._entries[hit])
