"""IPinfo simulator.

IPinfo uses a black-box methodology to provide the organization name,
domain, and a broad 4-category classification (ISP / hosting / education /
business) for many ASes (Section 2).  Coverage is 30% (39% tech / 15%
non-tech, Table 3) with high recall (96%) within its coarse scheme.  Its
domain field is correct for 86% of its entries (Table 5), which ASdb
exploits as a domain hint in stage 2 of the pipeline.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..world import calibration
from ..world.organization import World
from . import schemes
from .base import DataSource, Query, SourceEntry, SourceMatch

__all__ = ["IPinfo"]


class IPinfo(DataSource):
    """The IPinfo AS database over a synthetic world (ASN-keyed)."""

    name = "ipinfo"

    def __init__(self, world: World, seed: int = 0) -> None:
        self._world = world
        self._entries: Dict[int, SourceEntry] = {}
        self._build(random.Random(("ipinfo", seed).__repr__()))

    def _build(self, rng: random.Random) -> None:
        all_domains = [
            org.domain
            for org in self._world.iter_organizations()
            if org.domain
        ]
        for asn in self._world.asns():
            org = self._world.org_of_asn(asn)
            coverage = (
                calibration.IPINFO_COVERAGE_TECH
                if org.is_tech
                else calibration.IPINFO_COVERAGE_NONTECH
            )
            if rng.random() >= coverage:
                continue
            layer1 = sorted(org.truth.layer1_slugs())[0]
            layer2 = org.primary_layer2
            category = schemes.ipinfo_category_for(layer1, layer2)
            if rng.random() < calibration.IPINFO_LABEL_NOISE:
                # Errors are mostly within-technology swaps (isp <-> hosting),
                # keeping layer 1 recall high (Table 4: 100% on tech).
                if category in ("isp", "hosting") and rng.random() < 0.75:
                    category = "hosting" if category == "isp" else "isp"
                else:
                    others = [
                        c for c in schemes.IPINFO_CATEGORIES
                        if c != category
                    ]
                    category = rng.choice(others)
            # The published domain is wrong for ~14% of entries (Table 5).
            domain = org.domain
            if domain is not None and rng.random() >= (
                calibration.MATCHING.ipinfo_match_accuracy
            ):
                wrong = [d for d in all_domains if d != domain]
                if wrong:
                    domain = rng.choice(wrong)
            self._entries[asn] = SourceEntry(
                entity_id=f"ipinfo-{asn}",
                org_id=org.org_id,
                name=org.name,
                domain=domain,
                native_categories=(category,),
                labels=schemes.ipinfo_to_naicslite(category),
            )

    def coverage_count(self) -> int:
        return len(self._entries)

    def lookup(self, query: Query) -> Optional[SourceMatch]:
        """ASN-keyed lookup."""
        if query.asn is None:
            return None
        entry = self._entries.get(query.asn)
        if entry is None:
            return None
        return SourceMatch(source=self.name, entry=entry, via="asn")

    def lookup_many(
        self, queries: Sequence[Query]
    ) -> List[Optional[SourceMatch]]:
        """Single pass over the ASN index (no per-query dispatch)."""
        entries = self._entries
        results: List[Optional[SourceMatch]] = []
        for query in queries:
            entry = (
                entries.get(query.asn) if query.asn is not None else None
            )
            results.append(
                None if entry is None
                else SourceMatch(source=self.name, entry=entry, via="asn")
            )
        return results

    def lookup_by_org(self, org_id: str) -> Optional[SourceMatch]:
        for asn in self._world.asns_of_org(org_id):
            match = self.lookup(Query(asn=asn))
            if match is not None:
                return match
        return None

    def native_category(self, asn: int) -> Optional[str]:
        """The IPinfo category for an ASN, if any."""
        entry = self._entries.get(asn)
        return entry.native_categories[0] if entry else None

    def domain_hint(self, asn: int) -> Optional[str]:
        """IPinfo's published domain for an ASN (may be wrong)."""
        entry = self._entries.get(asn)
        return entry.domain if entry else None
