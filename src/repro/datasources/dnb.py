"""Dun & Bradstreet simulator.

D&B is the highest-coverage business database the paper evaluates (82% of
Gold Standard ASes, Table 3).  Its API is searched by name, address, phone
and domain, and returns a *single* company (DUNS number) plus a 1-10 match
confidence code; with bulk access there is no control over which company is
chosen when several share identifiers (Section 3.5).

Simulated behaviors, all calibrated to the paper:

* directory coverage and NAICS-code correctness per
  :data:`repro.world.calibration.DNB`, including the documented
  ISP-vs-hosting code ambiguity (517911/541512/519190);
* automated matching per :data:`repro.world.calibration.DNB_CONFIDENCE`:
  confidence codes distribute as in Figure 2, accuracy rises with the code,
  and wrong matches return a *different real company* (entity
  disagreement);
* lookups are deterministic per query, so caching and repeated evaluation
  are stable.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from ..taxonomy import translation
from ..world.calibration import CONFUSION_L2, DNB, DNB_CONFIDENCE
from ..world.organization import World
from . import emission
from .base import DataSource, Query, SourceEntry, SourceMatch

__all__ = ["DunBradstreet"]


#: Categories a *correct* code should avoid dragging in alongside the
#: emitted slug (on top of the slug's confusion partners): the big three
#: technology categories must not leak into each other through ambiguous
#: NAICS codes when the analyst got the classification right.
_CODE_AVOID_EXTRA = frozenset({"isp", "hosting", "phone_provider"})


def _avoid_for(slug: str, truth_slugs) -> Tuple[str, ...]:
    """NAICSlite slugs a chosen code should not additionally reach.

    When the emitted slug is *correct*, prefer a code that doesn't also
    reach a confusable sibling outside the truth set (80% of matches carry
    a single category, Section 3.3).  When it is *wrong*, prefer a code
    that doesn't accidentally reach the truth.
    """
    if slug in truth_slugs:
        avoid = set(CONFUSION_L2.get(slug, ()))
        avoid |= _CODE_AVOID_EXTRA - {slug}
        return tuple(sorted(avoid - set(truth_slugs)))
    return tuple(truth_slugs)


def _naics_code_for(
    rng: random.Random, slug: str, avoid: Tuple[str, ...]
) -> str:
    """A NAICS code translating to ``slug``; avoid codes that also reach
    any slug in ``avoid`` when possible (keeps wrong labels wrong)."""
    candidates = translation.naics_candidates_for_layer2(slug)
    if not candidates:
        return "999999"
    if avoid:
        clean = [
            code
            for code in candidates
            if not (
                translation.translate_naics(code).layer2_slugs()
                & set(avoid)
            )
        ]
        if clean:
            candidates = clean
    return rng.choice(candidates)


class DunBradstreet(DataSource):
    """The D&B business database over a synthetic world."""

    name = "dnb"

    def __init__(self, world: World, seed: int = 0) -> None:
        self._world = world
        self._seed = seed
        self._entries: Dict[str, SourceEntry] = {}
        self._classified: set = set()
        self._domain_index: Dict[str, str] = {}
        self._name_index: Dict[str, str] = {}
        self._build(random.Random(("dnb", seed).__repr__()))

    def _build(self, rng: random.Random) -> None:
        # D&B has an *entity* record (DUNS number) for essentially every
        # real company; only a subset carries usable NAICS classification
        # metadata.  Table 3's coverage counts classified entries; Table
        # 5's matching accuracy is about DUNS correctness regardless.
        duns = 100000000
        for org in self._world.iter_organizations():
            slugs = emission.emit_layer2_slugs(rng, org.truth, DNB)
            codes: List[str] = []
            if slugs is not None:
                truth_slugs = org.truth.layer2_slugs()
                for slug in slugs:
                    codes.append(
                        _naics_code_for(
                            rng, slug, _avoid_for(slug, truth_slugs)
                        )
                    )
            labels = translation.translate_naics_codes(codes)
            duns += rng.randint(1, 5000)
            entry = SourceEntry(
                entity_id=f"DUNS-{duns}",
                org_id=org.org_id,
                name=org.name,
                domain=org.domain,
                native_categories=tuple(codes),
                labels=labels,
            )
            self._entries[org.org_id] = entry
            if slugs is not None:
                self._classified.add(org.org_id)
            if org.domain and org.domain not in self._domain_index:
                self._domain_index[org.domain] = org.org_id
            key = org.name.lower()
            if key not in self._name_index:
                self._name_index[key] = org.org_id

    # -- DataSource interface ------------------------------------------------

    def coverage_count(self) -> int:
        return len(self._classified)

    def lookup_by_org(self, org_id: str) -> Optional[SourceMatch]:
        """Manual mode: the classified entry, or None when D&B holds no
        classification metadata for the organization."""
        if org_id not in self._classified:
            return None
        return SourceMatch(
            source=self.name,
            entry=self._entries[org_id],
            confidence=10,
            via="manual",
        )

    def lookup(self, query: Query) -> Optional[SourceMatch]:
        """Automated bulk lookup: one candidate + confidence code.

        The returned candidate may be the wrong company; callers can filter
        on ``confidence`` (Table 5's ``Conf >= 6`` row).
        """
        return self._lookup_impl(query, self._intended_org)

    def lookup_many(
        self, queries: Sequence[Query]
    ) -> List[Optional[SourceMatch]]:
        """Bulk endpoint: index-only intended-org resolution per query.

        Identical results to per-query :meth:`lookup`: the name index
        holds every organization's lowered name with the same first-wins
        collision policy as the scalar path's world scan, so the scan can
        never find anything the index misses — the batch path just skips
        paying O(world) for queries whose name matches nothing.
        """
        return [
            self._lookup_impl(query, self._intended_org_indexed)
            for query in queries
        ]

    def _lookup_impl(self, query: Query, intended_for) -> Optional[SourceMatch]:
        rng = self._query_rng(query)
        if rng.random() >= DNB_CONFIDENCE.response_rate:
            return None

        intended = intended_for(query)
        code = self._sample_confidence(rng, query)
        entry: Optional[SourceEntry] = None
        if intended is not None and intended in self._entries:
            correct_probability = DNB_CONFIDENCE.accuracy_by_code.get(
                code, 0.5
            )
            if rng.random() < correct_probability:
                entry = self._entries[intended]
        else:
            # No identifiable intended company: D&B still returns its
            # closest guess, but the poor match earns a low code.
            code = min(code, rng.randint(4, 5))
        if entry is None:
            entry = self._wrong_entry(rng, exclude=intended)
        if entry is None:
            return None
        return SourceMatch(source=self.name, entry=entry, confidence=code,
                           via="identifiers")

    # -- internals --------------------------------------------------------------

    def _query_rng(self, query: Query) -> random.Random:
        material = f"{self._seed}|{query.name}|{query.domain}|{query.address}"
        return random.Random(zlib.crc32(material.encode()))

    def _intended_org(self, query: Query) -> Optional[str]:
        if query.domain and query.domain in self._domain_index:
            return self._domain_index[query.domain]
        if query.name:
            hit = self._name_index.get(query.name.lower())
            if hit is not None:
                return hit
        # Fall back to ground truth via the world's org registry so that a
        # correct-entity match is *possible* even with noisy identifiers.
        if query.name:
            for org in self._world.iter_organizations():
                if org.name.lower() == query.name.lower():
                    return org.org_id
        return None

    def _intended_org_indexed(self, query: Query) -> Optional[str]:
        """Index-only :meth:`_intended_org` (the bulk endpoint's variant).

        The name index is built from the same organization iteration
        order with the same first-wins policy as the scalar fallback
        scan, so the two resolutions agree on every query.
        """
        if query.domain and query.domain in self._domain_index:
            return self._domain_index[query.domain]
        if query.name:
            return self._name_index.get(query.name.lower())
        return None

    def _sample_confidence(
        self, rng: random.Random, query: Query
    ) -> int:
        # Richer queries earn higher confidence: shift mass upward when a
        # domain and address are both present.
        weights = dict(DNB_CONFIDENCE.code_weights)
        if query.domain and query.address:
            weights = {
                code: weight * (1.6 if code >= 8 else 0.7)
                for code, weight in weights.items()
            }
        total = sum(weights.values())
        roll = rng.random() * total
        acc = 0.0
        for code in sorted(weights):
            acc += weights[code]
            if roll <= acc:
                return code
        return 10

    def _wrong_entry(
        self, rng: random.Random, exclude: Optional[str]
    ) -> Optional[SourceEntry]:
        keys = sorted(self._entries)
        if exclude in self._entries and len(keys) > 1:
            keys.remove(exclude)
        if not keys:
            return None
        return self._entries[rng.choice(keys)]
