"""Common interfaces for external data sources (Table 1).

Every source - business database, networking database, or website
classifier - exposes the same contract: given a :class:`Query` (the
identifiers ASdb extracted from WHOIS), return a :class:`SourceMatch` or
None.  A match carries the source's *native* categories plus their
NAICSlite translation, and the entity the source believes it matched -
which may be the wrong one (entity disagreement, Section 3.4/3.5).

The module also carries the Table-1 catalogue of source attributes, which
the Table-1 benchmark renders.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..taxonomy import LabelSet

__all__ = [
    "Query",
    "SourceEntry",
    "SourceMatch",
    "DataSource",
    "SourceAttributes",
    "SOURCE_CATALOG",
]


@dataclass(frozen=True)
class Query:
    """The identifiers available when looking up an AS's organization.

    All fields are optional because WHOIS data is variably complete
    (Section 3.1).  ``asn`` is only usable by the networking sources.
    """

    name: Optional[str] = None
    domain: Optional[str] = None
    address: Optional[str] = None
    phone: Optional[str] = None
    asn: Optional[int] = None


@dataclass(frozen=True)
class SourceEntry:
    """One record inside a data source's directory.

    Attributes:
        entity_id: The source's identifier for the organization (e.g. a
            DUNS number for D&B).
        org_id: Ground-truth organization this entry actually describes
            (used by the evaluation harness, never by the pipeline).
        name: Organization name as the source knows it.
        domain: Domain the source associates with the organization.
        native_categories: The source's own category codes/names.
        labels: The NAICSlite translation of ``native_categories``.
    """

    entity_id: str
    org_id: str
    name: str
    domain: Optional[str]
    native_categories: Tuple[str, ...]
    labels: LabelSet


@dataclass(frozen=True)
class SourceMatch:
    """The outcome of a successful lookup.

    Attributes:
        source: Source name (e.g. ``"dnb"``).
        entry: The directory entry returned.
        confidence: Source-specific match confidence (D&B's 1-10 code).
        via: How the match was found (``"asn"``, ``"domain"``, ``"name"``,
            ``"identifiers"``) - used in evaluation breakdowns.
    """

    source: str
    entry: SourceEntry
    confidence: Optional[int] = None
    via: str = "identifiers"

    @property
    def labels(self) -> LabelSet:
        """NAICSlite labels of the matched entry."""
        return self.entry.labels


class DataSource(abc.ABC):
    """Abstract external data source."""

    #: Source name used in reports and consensus ranking.
    name: str = "abstract"

    @abc.abstractmethod
    def lookup(self, query: Query) -> Optional[SourceMatch]:
        """Automated lookup: resolve ``query`` to an entry, or None.

        This is the path the deployed pipeline uses; it is allowed to
        return the *wrong* entity, modeling real matching errors.
        """

    def lookup_many(
        self, queries: Sequence[Query]
    ) -> List[Optional[SourceMatch]]:
        """Bulk lookup: one result slot per query, in query order.

        Contract: elementwise identical to calling :meth:`lookup` per
        query — batching is purely a throughput optimization, never a
        semantic one.  The default loops; sources with indexable
        directories override with single-pass scans, and Zvelo overrides
        with a batched fetch/translate/score pass.
        """
        return [self.lookup(query) for query in queries]

    def lookup_by_org(self, org_id: str) -> Optional[SourceMatch]:
        """Manual-verification lookup: the entry for a known organization.

        Models the researchers' hand lookups used to evaluate coverage and
        recall (Section 3.2: "ask researchers to manually look up ASes in
        each candidate data source").  Returns None when the source simply
        has no (classified) entry for the organization.

        Sources that cannot be indexed by organization (e.g. pure website
        classifiers) override this with their own semantics.
        """
        raise NotImplementedError(
            f"data source {self.name!r} is not indexable by organization"
        )

    def coverage_count(self) -> int:
        """Number of classified entries in the directory (0 if unknown)."""
        return 0


@dataclass(frozen=True)
class SourceAttributes:
    """Table-1 attributes of a candidate data source."""

    name: str
    display_name: str
    group: str  # "Business DB" | "Networking" | "Website Class"
    searchable_by: Tuple[str, ...]  # N, W, L, A
    has_name: bool
    industry_scheme: str
    has_domain: bool
    access: str  # "Paid" | "Free"
    used_by_asdb: bool


SOURCE_CATALOG: Tuple[SourceAttributes, ...] = (
    SourceAttributes("dnb", "D&B", "Business DB", ("N", "W", "L"), True,
                     "NAICS", True, "Paid", True),
    SourceAttributes("crunchbase", "Crunchbase", "Business DB", ("N", "W"),
                     True, "Custom", True, "Free", True),
    SourceAttributes("zoominfo", "ZoomInfo", "Business DB", ("N", "W", "L"),
                     True, "NAICS", True, "Paid", False),
    SourceAttributes("clearbit", "Clearbit", "Business DB", ("W",), True,
                     "NAICS*", True, "Paid", False),
    SourceAttributes("peeringdb", "PeeringDB", "Networking", ("A",), True,
                     "Custom", True, "Free", True),
    SourceAttributes("ipinfo", "IPinfo", "Networking", ("A",), True,
                     "Custom", True, "Paid", True),
    SourceAttributes("zvelo", "Zvelo", "Website Class", ("W",), False,
                     "Custom", True, "Paid", True),
)
