"""PeeringDB simulator.

PeeringDB is a crowd-sourced database where operators *voluntarily*
register their AS under one of six categories (Section 2).  Coverage is
low (15% of Gold Standard ASes) and heavily tech-skewed (22% of tech vs 2%
of non-tech entities, Table 3), but registered ISPs self-identify with a
100% true-positive rate (Section 3.3).  Hosting providers have no category
of their own and register as Content or NSP, giving PeeringDB a hosting
recall of zero (Table 4).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..world import calibration
from ..world.organization import World
from . import schemes
from .base import DataSource, Query, SourceEntry, SourceMatch

__all__ = ["PeeringDB"]


class PeeringDB(DataSource):
    """The PeeringDB registry over a synthetic world (ASN-keyed)."""

    name = "peeringdb"

    def __init__(self, world: World, seed: int = 0) -> None:
        self._world = world
        self._entries: Dict[int, SourceEntry] = {}
        self._build(random.Random(("peeringdb", seed).__repr__()))

    def _build(self, rng: random.Random) -> None:
        for asn in self._world.asns():
            org = self._world.org_of_asn(asn)
            coverage = (
                calibration.PEERINGDB_COVERAGE_TECH
                if org.is_tech
                else calibration.PEERINGDB_COVERAGE_NONTECH
            )
            # IXPs exist to peer and essentially always register.
            if "ixp" in org.truth.layer2_slugs():
                coverage = 0.9
            if rng.random() >= coverage:
                continue
            layer1 = sorted(org.truth.layer1_slugs())[0]
            slugs = org.truth.layer2_slugs()
            # Multi-service operators register under their network identity.
            if "isp" in slugs:
                layer2: Optional[str] = "isp"
            else:
                layer2 = org.primary_layer2
            category = schemes.peeringdb_category_for(layer1, layer2)
            self._entries[asn] = SourceEntry(
                entity_id=f"pdb-{asn}",
                org_id=org.org_id,
                name=org.name,
                domain=org.domain,
                native_categories=(category,),
                labels=schemes.peeringdb_to_naicslite(category),
            )

    def coverage_count(self) -> int:
        return len(self._entries)

    def lookup(self, query: Query) -> Optional[SourceMatch]:
        """ASN-keyed lookup: exact, never the wrong entity."""
        if query.asn is None:
            return None
        entry = self._entries.get(query.asn)
        if entry is None:
            return None
        return SourceMatch(source=self.name, entry=entry, via="asn")

    def lookup_many(
        self, queries: Sequence[Query]
    ) -> List[Optional[SourceMatch]]:
        """Single pass over the ASN index (no per-query dispatch)."""
        entries = self._entries
        results: List[Optional[SourceMatch]] = []
        for query in queries:
            entry = (
                entries.get(query.asn) if query.asn is not None else None
            )
            results.append(
                None if entry is None
                else SourceMatch(source=self.name, entry=entry, via="asn")
            )
        return results

    def lookup_by_org(self, org_id: str) -> Optional[SourceMatch]:
        for asn in self._world.asns_of_org(org_id):
            match = self.lookup(Query(asn=asn))
            if match is not None:
                return match
        return None

    def native_category(self, asn: int) -> Optional[str]:
        """The registered PeeringDB category for an ASN, if any."""
        entry = self._entries.get(asn)
        return entry.native_categories[0] if entry else None
