"""External data-source simulators (Section 3).

Each class simulates one of the paper's candidate sources over a synthetic
world, with coverage/correctness calibrated to the paper's own evaluation
(Tables 3/4/5, Figure 2).  All implement the :class:`DataSource` contract.
"""

from .base import (
    SOURCE_CATALOG,
    DataSource,
    Query,
    SourceAttributes,
    SourceEntry,
    SourceMatch,
)
from .caida import CaidaASClassification
from .clearbit import Clearbit
from .crunchbase import Crunchbase
from .dnb import DunBradstreet
from .faults import (
    FaultPlan,
    FaultSpec,
    FaultySource,
    RateLimited,
    SourceFault,
    SourceOutage,
    is_malformed_match,
)
from .ipinfo import IPinfo
from .peeringdb import PeeringDB
from .zoominfo import ZoomInfo
from .zvelo import Zvelo

__all__ = [
    "DataSource",
    "Query",
    "SourceEntry",
    "SourceMatch",
    "SourceAttributes",
    "SOURCE_CATALOG",
    "DunBradstreet",
    "Crunchbase",
    "ZoomInfo",
    "Clearbit",
    "Zvelo",
    "PeeringDB",
    "IPinfo",
    "CaidaASClassification",
    "FaultPlan",
    "FaultSpec",
    "FaultySource",
    "SourceFault",
    "SourceOutage",
    "RateLimited",
    "is_malformed_match",
]
