"""Calibrated label emission for business-database simulators.

A business database (D&B, Crunchbase, ZoomInfo, Clearbit) does not read an
organization's website; its entry reflects how its analysts classified the
firm.  The simulators therefore decide, per organization and per source, a
*structured* outcome driven by :mod:`repro.world.calibration`:

1. **covered?** - per tech/non-tech coverage (Table 3);
2. if covered, **which NAICSlite category does the entry express?**
   - correct layer 2 with the source's layer 2 recall (Table 4, with
     hosting/ISP overrides),
   - else a *confusable sibling* within the right layer 1 (e.g. hosting
     labeled ISP) with probability up to the layer 1 recall,
   - else a confusable wrong layer 1 (e.g. an education org filed under
     media);
3. optionally a **second adjacent category** (20% of matches carry more
   than one label, Section 3.3).

Encoding the chosen category into the source's native vocabulary (a NAICS
code, a Crunchbase tag, ...) is the per-source simulator's job.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..taxonomy import LabelSet, naicslite
from ..world.calibration import (
    CONFUSION_L1,
    CONFUSION_L2,
    BusinessSourceCalibration,
)

__all__ = ["emit_layer2_slugs", "confused_sibling", "confused_layer1_slug"]


def confused_sibling(rng: random.Random, truth_slug: str) -> str:
    """A plausible wrong layer 2 slug within the same layer 1 category."""
    partners = CONFUSION_L2.get(truth_slug)
    if partners:
        return rng.choice(partners)
    layer1 = naicslite.layer2_by_name(truth_slug).layer1
    siblings = [
        sub.slug for sub in layer1.layer2 if sub.slug != truth_slug
    ]
    if not siblings:
        return truth_slug
    return rng.choice(siblings)


def confused_layer1_slug(rng: random.Random, truth_slug: str) -> str:
    """A plausible layer 2 slug in a *wrong* layer 1 category."""
    layer1 = naicslite.layer2_by_name(truth_slug).layer1
    wrong_l1_slug = rng.choice(
        CONFUSION_L1.get(layer1.slug, ("service",))
    )
    wrong_l1 = naicslite.layer1_by_slug(wrong_l1_slug)
    return rng.choice([sub.slug for sub in wrong_l1.layer2])


def emit_layer2_slugs(
    rng: random.Random,
    truth: LabelSet,
    cal: BusinessSourceCalibration,
) -> Optional[List[str]]:
    """Decide a source's emitted layer 2 slugs for one organization.

    Returns None when the source has no classified entry for the
    organization (not covered), otherwise a non-empty list of layer 2
    slugs to be encoded in the source's native vocabulary.
    """
    tech = truth.is_tech
    if rng.random() >= cal.coverage(tech):
        return None

    truth_slugs = sorted(truth.layer2_slugs())
    primary = truth_slugs[0] if truth_slugs else None
    if primary is None:
        # Layer-1-only ground truth: emit something in the right layer 1.
        layer1 = sorted(truth.layer1_slugs())[0]
        category = naicslite.layer1_by_slug(layer1)
        return [rng.choice([sub.slug for sub in category.layer2])]

    l1_recall = cal.l1_recall(tech)
    l2_recall = min(cal.l2_recall(tech, primary), l1_recall)
    roll = rng.random()
    if roll < l2_recall:
        emitted = primary
    elif roll < l1_recall:
        emitted = confused_sibling(rng, primary)
    else:
        emitted = confused_layer1_slug(rng, primary)

    slugs = [emitted]
    if rng.random() < cal.multi_label_rate:
        extra = confused_sibling(rng, emitted)
        # A second label must not accidentally repair a wrong first one -
        # the calibrated recall already accounts for multi-label matches.
        if emitted not in truth_slugs and extra in truth_slugs:
            extra = confused_layer1_slug(rng, primary)
        if extra not in slugs:
            slugs.append(extra)
    return slugs
