"""Deterministic fault injection for data sources.

ASdb's deployed pipeline aggregates five external services whose
availability differs wildly (Section 3.2): a business database can rate
limit a burst of lookups, a networking directory can go down for hours,
and any HTTP API can return garbage.  This module injects those failure
modes into any :class:`~repro.datasources.base.DataSource` so the
resilience layer (:mod:`repro.core.resilience`) and the pipeline's
graceful-degradation path can be exercised reproducibly.

Determinism is the design center.  Every fault decision is a pure
function of ``(plan seed, source name, query identifiers, attempt
number)`` — there is **no mutable fault state** — so:

* the scalar driver and the batch engine see the *same* fault for the
  same query, regardless of call order, batching, or thread schedule;
* a retry (attempt 1, 2, ...) re-rolls the dice deterministically, so
  transient faults genuinely clear on retry while an ``outage_rate`` of
  1.0 models a source that is permanently down;
* two runs with the same seed and plan fail identically, byte for byte.

The wrapper injects four Section-3.2 failure modes:

``outage``
    The lookup raises :class:`SourceOutage` (connection refused).
``rate limit``
    The lookup raises :class:`RateLimited` (HTTP 429).
``latency spike``
    The lookup reports ``latency_seconds`` of injected delay.  By
    default the delay is *simulated* — carried on the
    :class:`FaultDecision` for the retry layer's timeout budget to act
    on — so tests stay fast and deterministic; ``FaultPlan(realtime=
    True)`` actually sleeps.
``malformed entry``
    The lookup succeeds but the returned entry is corrupted (name,
    domain, categories, and labels are gone) the way a truncated or
    schema-shifted API response is.  :func:`is_malformed_match`
    recognizes such entries so the resilience layer can treat them as
    failures instead of feeding garbage to consensus.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..taxonomy import LabelSet
from .base import DataSource, Query, SourceEntry, SourceMatch

__all__ = [
    "SourceFault",
    "SourceOutage",
    "RateLimited",
    "FaultSpec",
    "FaultDecision",
    "FaultPlan",
    "FaultySource",
    "is_malformed_match",
]


class SourceFault(Exception):
    """Base class for injected (or real) transient source failures."""


class SourceOutage(SourceFault):
    """The source could not be reached at all (connection refused)."""


class RateLimited(SourceFault):
    """The source refused the call with a rate-limit error (HTTP 429)."""


@dataclass(frozen=True)
class FaultSpec:
    """Per-source fault rates, each decided independently per attempt.

    Attributes:
        outage_rate: Probability an attempt raises :class:`SourceOutage`.
        rate_limit_rate: Probability an attempt raises :class:`RateLimited`.
        malformed_rate: Probability a successful attempt returns a
            corrupted entry (see :func:`is_malformed_match`).
        latency_rate: Probability an attempt carries a latency spike.
        latency_seconds: Size of an injected latency spike.
    """

    outage_rate: float = 0.0
    rate_limit_rate: float = 0.0
    malformed_rate: float = 0.0
    latency_rate: float = 0.0
    latency_seconds: float = 2.0

    @property
    def quiet(self) -> bool:
        """Whether this spec can never fire."""
        return not (
            self.outage_rate
            or self.rate_limit_rate
            or self.malformed_rate
            or self.latency_rate
        )


@dataclass(frozen=True)
class FaultDecision:
    """The faults one attempt of one query draws.

    ``outage`` and ``rate_limited`` are mutually exclusive (outage wins);
    ``malformed`` and ``latency_seconds`` can accompany a success.
    """

    outage: bool = False
    rate_limited: bool = False
    malformed: bool = False
    latency_seconds: float = 0.0

    @property
    def raises(self) -> bool:
        """Whether the attempt fails before producing a result."""
        return self.outage or self.rate_limited


_CLEAN = FaultDecision()


def _unit(seed: int, source: str, key: str, attempt: int, salt: str) -> float:
    """A deterministic float in [0, 1) for one fault dimension.

    blake2b, not crc32: CRC is linear over GF(2), so two attempt numbers
    differing in one bit would hash to values a *constant* XOR apart and
    threshold comparisons across attempts would correlate perfectly —
    retries would never actually re-roll the dice.
    """
    material = f"fault|{salt}|{seed}|{source}|{key}|{attempt}"
    digest = hashlib.blake2b(material.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


def _query_key(query: Query) -> str:
    """Stable per-query material (the identifiers, not object identity)."""
    return repr(
        (query.name, query.domain, query.address, query.phone, query.asn)
    )


@dataclass(frozen=True)
class FaultPlan:
    """A seed-driven assignment of fault rates to sources.

    Attributes:
        seed: Seed all fault decisions derive from.
        default: Spec for sources without an explicit entry.
        per_source: Source name -> spec overrides.
        realtime: Actually ``time.sleep`` injected latency spikes.  Off
            by default so fault runs stay fast; the retry layer consults
            the simulated latency for its timeout budget either way.
    """

    seed: int = 0
    default: FaultSpec = field(default_factory=FaultSpec)
    per_source: Dict[str, FaultSpec] = field(default_factory=dict)
    realtime: bool = False

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """An everything-flaky plan: ``rate`` outages plus half-``rate``
        rate limits and malformed entries and ``rate`` latency spikes,
        on every source."""
        return cls(
            seed=seed,
            default=FaultSpec(
                outage_rate=rate,
                rate_limit_rate=rate / 2,
                malformed_rate=rate / 2,
                latency_rate=rate,
            ),
        )

    @classmethod
    def down(cls, *source_names: str, seed: int = 0) -> "FaultPlan":
        """A plan where the named sources are permanently unreachable."""
        return cls(
            seed=seed,
            per_source={
                name: FaultSpec(outage_rate=1.0) for name in source_names
            },
        )

    def with_source(self, name: str, spec: FaultSpec) -> "FaultPlan":
        """A copy of the plan with one source's spec replaced."""
        merged = dict(self.per_source)
        merged[name] = spec
        return replace(self, per_source=merged)

    def spec_for(self, source_name: str) -> FaultSpec:
        return self.per_source.get(source_name, self.default)

    def decide(
        self, source_name: str, query: Query, attempt: int = 0
    ) -> FaultDecision:
        """The faults drawn by one attempt of one query — a pure
        function of (seed, source, query identifiers, attempt)."""
        spec = self.spec_for(source_name)
        if spec.quiet:
            return _CLEAN
        key = _query_key(query)
        outage = (
            _unit(self.seed, source_name, key, attempt, "outage")
            < spec.outage_rate
        )
        rate_limited = not outage and (
            _unit(self.seed, source_name, key, attempt, "ratelimit")
            < spec.rate_limit_rate
        )
        malformed = (
            _unit(self.seed, source_name, key, attempt, "malformed")
            < spec.malformed_rate
        )
        latency = (
            spec.latency_seconds
            if _unit(self.seed, source_name, key, attempt, "latency")
            < spec.latency_rate
            else 0.0
        )
        return FaultDecision(
            outage=outage,
            rate_limited=rate_limited,
            malformed=malformed,
            latency_seconds=latency,
        )


def is_malformed_match(match: Optional[SourceMatch]) -> bool:
    """Whether a lookup result is a corrupted (fault-injected or
    truncated-response) entry: present but stripped of every usable
    field.  The resilience layer converts these to failed attempts so
    garbage never reaches domain choice or consensus."""
    return (
        match is not None
        and not match.entry.name
        and not match.entry.native_categories
        and not match.labels
    )


def _malform(match: SourceMatch) -> SourceMatch:
    """Corrupt a real match the way a truncated API response would."""
    entry = match.entry
    return SourceMatch(
        source=match.source,
        entry=SourceEntry(
            entity_id=entry.entity_id,
            org_id="",
            name="",
            domain=None,
            native_categories=(),
            labels=LabelSet(),
        ),
        confidence=match.confidence,
        via=match.via,
    )


class FaultySource(DataSource):
    """A :class:`DataSource` decorator that injects a :class:`FaultPlan`.

    Both ``lookup`` and ``lookup_many`` draw faults per query from the
    plan's pure hash, so scalar and batch drivers observe identical
    fault sequences.  ``lookup_attempt`` exposes the attempt dimension
    to the retry layer; plain ``lookup`` is always attempt 0.

    ``lookup_by_org`` (the researchers' manual-verification path) is
    deliberately fault-free: the paper's hand lookups are not subject
    to API weather.
    """

    def __init__(
        self,
        inner: DataSource,
        plan: FaultPlan,
        source_name: Optional[str] = None,
    ) -> None:
        self._inner = inner
        self._plan = plan
        self.name = source_name or inner.name

    @property
    def inner(self) -> DataSource:
        """The wrapped source."""
        return self._inner

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def decide(self, query: Query, attempt: int = 0) -> FaultDecision:
        """The fault oracle: what this attempt of this query draws."""
        return self._plan.decide(self.name, query, attempt)

    def lookup_attempt(
        self, query: Query, attempt: int = 0
    ) -> Optional[SourceMatch]:
        """One attempt of a lookup, with that attempt's faults applied."""
        decision = self.decide(query, attempt)
        if decision.latency_seconds and self._plan.realtime:
            time.sleep(decision.latency_seconds)
        if decision.outage:
            raise SourceOutage(
                f"{self.name}: injected outage (attempt {attempt})"
            )
        if decision.rate_limited:
            raise RateLimited(
                f"{self.name}: injected rate limit (attempt {attempt})"
            )
        match = self._inner.lookup(query)
        if decision.malformed and match is not None:
            return _malform(match)
        return match

    # -- DataSource contract --------------------------------------------------

    def lookup(self, query: Query) -> Optional[SourceMatch]:
        return self.lookup_attempt(query, 0)

    def lookup_many(
        self, queries: Sequence[Query]
    ) -> List[Optional[SourceMatch]]:
        """Per-query fault injection; fails fast on the first faulted
        query, like a batched HTTP call aborted mid-flight.  Callers
        that need per-slot degradation wrap this source in a
        :class:`~repro.core.resilience.ResilientSource`."""
        return [self.lookup_attempt(query, 0) for query in queries]

    def lookup_by_org(self, org_id: str) -> Optional[SourceMatch]:
        return self._inner.lookup_by_org(org_id)

    def coverage_count(self) -> int:
        return self._inner.coverage_count()
