"""Zvelo simulator: a production-style real-time website classifier.

Zvelo can only be queried by a working domain; its coverage is therefore
bound to correct domain identification (Section 3.5).  Unlike the business
databases, our Zvelo actually *reads the website*: it fetches the site from
the synthetic web universe, translates it, and scores the text against
per-category keyword profiles - so its mistakes correlate with page content
exactly as the paper observed.

The profile design encodes Zvelo's documented weakness: its taxonomy is
content-oriented, so "hosting provider" is a narrow bucket (colocation /
vps / rack vocabulary) while the generic technology bucket absorbs most
hosting-site language (hosting / cloud / server).  The result is high ISP
recall (81% in Table 4) but low hosting recall (25%), emerging from the
scorer rather than injected noise.
"""

from __future__ import annotations

import collections
import random
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from ..taxonomy import keywords
from ..web.translate import translate_many, translate_to_english
from ..world.organization import World
from . import schemes
from .base import DataSource, Query, SourceEntry, SourceMatch

__all__ = ["Zvelo"]

#: Minimum matched-keyword mass for Zvelo to emit a category at all.
_MIN_SCORE = 2.0

#: Per-category score multipliers.  web_hosting's narrow profile needs a
#: boost to ever beat the broad technology bucket; the value is tuned so
#: roughly a quarter of hosting sites land in it (Table 4: 25% recall).
_CATEGORY_WEIGHTS = {"web_hosting": 1.35}

#: Probability the classifier returns its second-best category instead of
#: the best (production classifiers disagree with experts on ambiguous
#: sites; Vallina et al. [60]).  Deterministic per domain.
_SECOND_BEST_RATE = 0.14


def _build_profiles() -> Dict[str, Tuple[str, ...]]:
    """Zvelo-category -> keyword profile.

    Default: union of the member layer 2 profiles.  Overrides narrow the
    hosting bucket and widen the generic technology bucket, reproducing
    the paper's hosting-vs-ISP asymmetry.
    """
    members: Dict[str, List[str]] = collections.defaultdict(list)
    for slug, category in schemes._ZVELO_FOR_LAYER2.items():
        members[category].extend(keywords.keywords_for_layer2(slug))
    profiles = {
        category: tuple(dict.fromkeys(words))
        for category, words in members.items()
    }
    profiles["web_hosting"] = (
        "colocation", "vps", "rack", "ssd", "datacenter",
    )
    profiles["computers_technology"] = tuple(
        dict.fromkeys(
            profiles["computers_technology"]
            + ("hosting", "cloud", "server", "storage", "compute",
               "managed", "deploy", "scalable", "virtual", "uptime",
               "dedicated", "backup", "domains", "infrastructure")
        )
    )
    return profiles


class _ProfileScorer:
    """Inverted-index form of the profile scorer (the bulk endpoint).

    Precomputes word -> category indices so scoring one text is
    O(distinct words) instead of O(categories x profile words).  Score
    arithmetic replicates :meth:`Zvelo.classify_text` operation for
    operation — integer keyword-count sums, then ``score /= norm`` and
    ``score *= weight`` in that order — so the floats, the sort, and the
    tiebreak RNG draws are bit-identical to the scalar scorer.
    """

    def __init__(self, profiles: Dict[str, Tuple[str, ...]]) -> None:
        self._categories: List[str] = sorted(profiles)
        self._norms = [
            max(1.0, len(profiles[category]) ** 0.25)
            for category in self._categories
        ]
        self._weights = [
            _CATEGORY_WEIGHTS.get(category, 1.0)
            for category in self._categories
        ]
        self._word_index: Dict[str, Tuple[int, ...]] = {}
        buckets: Dict[str, List[int]] = collections.defaultdict(list)
        for index, category in enumerate(self._categories):
            for word in profiles[category]:
                buckets[word].append(index)
        self._word_index = {
            word: tuple(indices) for word, indices in buckets.items()
        }

    def classify(self, text: str, tiebreak_seed: str = "") -> Optional[str]:
        counts = collections.Counter(text.lower().split())
        if not counts:
            return None
        raw = [0] * len(self._categories)
        for word, count in counts.items():
            for index in self._word_index.get(word, ()):
                raw[index] += count
        scored: List[Tuple[float, str]] = []
        for index, category in enumerate(self._categories):
            score: float = raw[index]
            score /= self._norms[index]
            score *= self._weights[index]
            if score > 0:
                scored.append((score, category))
        scored.sort(reverse=True)
        if not scored or scored[0][0] < _MIN_SCORE:
            return None
        rng = random.Random(zlib.crc32(f"zvelo|{tiebreak_seed}".encode()))
        if len(scored) > 1 and rng.random() < _SECOND_BEST_RATE:
            return scored[1][1]
        return scored[0][1]


class Zvelo(DataSource):
    """The Zvelo website classifier over a synthetic world."""

    name = "zvelo"

    def __init__(self, world: World, seed: int = 0) -> None:
        self._world = world
        self._profiles = _build_profiles()
        self._scorer = _ProfileScorer(self._profiles)
        self._org_by_domain: Dict[str, str] = {}
        for org in world.iter_organizations():
            if org.domain:
                self._org_by_domain.setdefault(org.domain, org.org_id)

    # -- classification core --------------------------------------------------

    def classify_text(
        self, text: str, tiebreak_seed: str = ""
    ) -> Optional[str]:
        """Score text against category profiles; best category or None.

        ``tiebreak_seed`` makes the second-best substitution deterministic
        per call site (the domain, for :meth:`classify_domain`).
        """
        counts = collections.Counter(text.lower().split())
        if not counts:
            return None
        scored: List[Tuple[float, str]] = []
        for category, profile in sorted(self._profiles.items()):
            score = sum(counts[word] for word in profile)
            # Normalize lightly so huge profiles don't dominate.
            score /= max(1.0, len(profile) ** 0.25)
            score *= _CATEGORY_WEIGHTS.get(category, 1.0)
            if score > 0:
                scored.append((score, category))
        scored.sort(reverse=True)
        if not scored or scored[0][0] < _MIN_SCORE:
            return None
        rng = random.Random(zlib.crc32(f"zvelo|{tiebreak_seed}".encode()))
        if len(scored) > 1 and rng.random() < _SECOND_BEST_RATE:
            return scored[1][1]
        return scored[0][1]

    def classify_domain(self, domain: str) -> Optional[str]:
        """Fetch, translate, and classify a domain's site.

        Zvelo is a *URL* classifier: it reads the root page plus a shallow
        crawl (first two internal pages), not the whole site - so sites
        whose descriptive text hides deeper are classified from diluted
        homepage copy, which is where its layer 2 errors come from.
        """
        site = self._world.web.fetch(domain)
        if site is None:
            return None
        pages = [site.homepage] + [link.page for link in site.links[:2]]
        chunks = [
            page.scrapable_text for page in pages if page.scrapable_text
        ]
        if not chunks:
            return None
        text = translate_to_english(" ".join(chunks)).text
        return self.classify_text(text, tiebreak_seed=domain)

    def classify_domains(
        self, domains: Sequence[str]
    ) -> List[Optional[str]]:
        """Batch :meth:`classify_domain`: fetch all pages, translate the
        texts in one pass, score with the inverted-index scorer.

        Elementwise identical to the scalar path: page selection and the
        joined raw text match :meth:`classify_domain` exactly, batch
        translation is per-text deterministic, and the scorer replicates
        the scalar arithmetic (see :class:`_ProfileScorer`).
        """
        raw_texts: List[Optional[str]] = []
        for domain in domains:
            site = self._world.web.fetch(domain)
            if site is None:
                raw_texts.append(None)
                continue
            pages = [site.homepage] + [
                link.page for link in site.links[:2]
            ]
            chunks = [
                page.scrapable_text for page in pages if page.scrapable_text
            ]
            raw_texts.append(" ".join(chunks) if chunks else None)
        positions = [
            index for index, text in enumerate(raw_texts) if text is not None
        ]
        translated = translate_many(
            [raw_texts[index] for index in positions]
        )
        results: List[Optional[str]] = [None] * len(domains)
        for index, result in zip(positions, translated):
            results[index] = self._scorer.classify(
                result.text, tiebreak_seed=domains[index]
            )
        return results

    # -- DataSource interface ---------------------------------------------------

    def coverage_count(self) -> int:
        return sum(
            1
            for domain in self._org_by_domain
            if self.classify_domain(domain) is not None
        )

    def lookup(self, query: Query) -> Optional[SourceMatch]:
        if not query.domain:
            return None
        return self._match_for_domain(query.domain)

    def lookup_many(
        self, queries: Sequence[Query]
    ) -> List[Optional[SourceMatch]]:
        """Bulk endpoint: classify each distinct domain once, batched.

        Classification is deterministic per domain, so deduplicating
        before the (expensive) fetch/translate/score pass cannot change
        any per-query result.
        """
        unique = list(dict.fromkeys(
            query.domain for query in queries if query.domain
        ))
        categories = dict(zip(unique, self.classify_domains(unique)))
        results: List[Optional[SourceMatch]] = []
        for query in queries:
            if not query.domain:
                results.append(None)
                continue
            results.append(
                self._match_from_category(
                    query.domain, categories[query.domain]
                )
            )
        return results

    def lookup_by_org(self, org_id: str) -> Optional[SourceMatch]:
        """Manual mode: researchers supply the correct org domain."""
        org = self._world.organizations[org_id]
        if not org.domain:
            return None
        return self._match_for_domain(org.domain)

    def _match_for_domain(self, domain: str) -> Optional[SourceMatch]:
        return self._match_from_category(domain, self.classify_domain(domain))

    def _match_from_category(
        self, domain: str, category: Optional[str]
    ) -> Optional[SourceMatch]:
        if category is None:
            return None
        labels = schemes.zvelo_to_naicslite(category)
        entry = SourceEntry(
            entity_id=f"zvelo-{domain}",
            org_id=self._org_by_domain.get(domain, ""),
            name=domain,
            domain=domain,
            native_categories=(category,),
            labels=labels,
        )
        return SourceMatch(source=self.name, entry=entry, via="domain")
