"""Crunchbase simulator.

Crunchbase is a free, startup-skewed business database with the lowest
coverage of the business sources (37% of Gold Standard ASes) but high
precision (Table 11).  Its bulk dataset is queried by name and/or domain:
domain queries match with 100% accuracy, tokenized-name queries with 95%
(Table 5).  Coverage is skewed toward startups and US companies.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..world.calibration import CRUNCHBASE, MATCHING
from ..world.names import token_set, tokenize_name
from ..world.organization import World
from . import emission, schemes
from .base import DataSource, Query, SourceEntry, SourceMatch

__all__ = ["Crunchbase"]


class Crunchbase(DataSource):
    """The Crunchbase bulk dataset over a synthetic world."""

    name = "crunchbase"

    def __init__(self, world: World, seed: int = 0) -> None:
        self._world = world
        self._seed = seed
        self._entries: Dict[str, SourceEntry] = {}
        self._domain_index: Dict[str, str] = {}
        self._token_index: Dict[FrozenSet[str], str] = {}
        self._build(random.Random(("crunchbase", seed).__repr__()))

    def _build(self, rng: random.Random) -> None:
        for org in self._world.iter_organizations():
            cal = CRUNCHBASE
            # Startup skew: non-startups face reduced odds of an entry.
            boost = 1.6 if org.is_startup else 0.8
            covered_probability = min(
                0.98, cal.coverage(org.is_tech) * boost
            )
            if rng.random() >= covered_probability:
                continue
            slugs = emission.emit_layer2_slugs(rng, org.truth, cal)
            if slugs is None:
                # emit handles coverage too; force-covered here, so retry
                # emission with coverage bypassed by sampling until drawn.
                slugs = self._emit_forced(rng, org)
            categories: List[str] = []
            for slug in slugs:
                category = schemes.crunchbase_category_for_layer2(slug)
                if category is not None and category not in categories:
                    categories.append(category)
            if not categories:
                continue
            labels = schemes.crunchbase_to_naicslite(categories[0])
            for category in categories[1:]:
                labels = labels.union(
                    schemes.crunchbase_to_naicslite(category)
                )
            entry = SourceEntry(
                entity_id=f"cb-{org.org_id}",
                org_id=org.org_id,
                name=org.name,
                domain=org.domain,
                native_categories=tuple(categories),
                labels=labels,
            )
            self._entries[org.org_id] = entry
            if org.domain and org.domain not in self._domain_index:
                self._domain_index[org.domain] = org.org_id
            tokens = frozenset(tokenize_name(org.name))
            if tokens and tokens not in self._token_index:
                self._token_index[tokens] = org.org_id

    def _emit_forced(self, rng: random.Random, org) -> List[str]:
        """Emission with coverage pre-decided (retry until covered)."""
        for _ in range(64):
            slugs = emission.emit_layer2_slugs(rng, org.truth, CRUNCHBASE)
            if slugs is not None:
                return slugs
        return [sorted(org.truth.layer2_slugs())[0]]

    # -- DataSource interface ------------------------------------------------

    def coverage_count(self) -> int:
        return len(self._entries)

    def lookup_by_org(self, org_id: str) -> Optional[SourceMatch]:
        entry = self._entries.get(org_id)
        if entry is None:
            return None
        return SourceMatch(source=self.name, entry=entry, via="manual")

    def lookup(self, query: Query) -> Optional[SourceMatch]:
        """Automated lookup: exact domain first, tokenized name second."""
        if query.domain and query.domain in self._domain_index:
            # Table 5: domain matching is 100% accurate.
            entry = self._entries[self._domain_index[query.domain]]
            return SourceMatch(source=self.name, entry=entry, via="domain")
        if query.name:
            return self._lookup_by_name(query)
        return None

    def _lookup_by_name(self, query: Query) -> Optional[SourceMatch]:
        tokens = token_set(query.name or "")
        if not tokens:
            return None
        # Exact tokenized-name match only.  Fuzzy superset matching was
        # tried and rejected: "Prairie Bridge" would resolve to "Prairie
        # Bridge Milton", a different company - precisely the ambiguity
        # the paper's 95% name-matching accuracy depends on avoiding.
        hit = self._token_index.get(tokens)
        if hit is None:
            return None
        rng = random.Random(
            zlib.crc32(f"{self._seed}|cb|{query.name}".encode())
        )
        if rng.random() >= MATCHING.crunchbase_name_accuracy:
            # 5% of tokenized-name matches hit the wrong company (Table 5).
            others = sorted(set(self._entries) - {hit})
            if others:
                hit = rng.choice(others)
        return SourceMatch(
            source=self.name, entry=self._entries[hit], via="name"
        )
