"""Factory wiring a complete ASdb system over a synthetic world.

This is the "ten lines to a working system" entry point used by the
examples, tests, and benchmarks:

    >>> from repro import system, world
    >>> w = world.generate_world(world.WorldConfig(n_orgs=200))
    >>> asdb = system.build_asdb(w)
    >>> dataset = asdb.classify_all()
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .core.maintenance import MaintenanceDaemon
from .core.pipeline import ASdb
from .core.consensus import resolve_consensus
from .core.resilience import ResilientSource, RetryPolicy
from .core.snapshots import SnapshotStore
from .core.store import open_store
from .datasources import Crunchbase, DunBradstreet, IPinfo, PeeringDB, Zvelo
from .datasources.faults import FaultPlan, FaultySource
from .matching.domains import DomainFrequencyIndex
from .matching.resolver import EntityResolver
from .ml.pipeline import WebClassificationPipeline
from .ml.training import build_training_examples
from .obs.instrument import instrument_source
from .obs.metrics import MetricsRegistry
from .web.scraper import Scraper
from .world.organization import World

__all__ = ["SystemConfig", "BuiltSystem", "build_asdb", "build_sources"]


@dataclass(frozen=True)
class SystemConfig:
    """Assembly knobs for :func:`build_asdb`.

    Attributes:
        seed: Seed for source construction and ML training sampling.
        train_ml: Train and attach the ML pipeline (stage 3).
        exclude_asns_from_training: ASNs whose organizations must not
            appear in ML training (reserve evaluation sets).
        dnb_confidence_threshold: Minimum accepted D&B confidence code.
        use_cache: Organization-level caching.
        reject_domain_mismatch: Entity-disagreement rejection.
        metrics: Metrics registry threaded through every component
            (sources, resolver, scraper, ML, pipeline); None disables
            metering with zero behavior change.
        trace: Attach a per-stage span trace to every record.
        workers: Default worker count for ``classify_all``; above 1 the
            whole-registry pass runs through the batch engine (output
            stays byte-identical to the sequential pass).
        executor: ``"thread"`` (default) or ``"process"`` — the latter
            chunks the batch engine's CPU-bound ML scoring over a
            process pool of ``workers`` processes; output stays
            byte-identical either way.
        faults: Fault-injection plan applied to every source (testing /
            chaos runs); None leaves the sources untouched.
        retry: Retry/breaker policy wrapped around every source.  None
            means no resilience wrapping *unless* ``faults`` is set, in
            which case a default policy seeded from ``seed`` is used —
            injecting faults without a degradation path would just
            crash the run.
        snapshot_dir: Directory of a versioned
            :class:`~repro.core.snapshots.SnapshotStore`.  When set,
            the built system carries the store plus a
            :class:`~repro.core.maintenance.MaintenanceDaemon` wired to
            it (each sweep stores a dataset version); None leaves both
            handles unset with zero behavior change.
        runlog: A :class:`~repro.obs.runlog.RunLog` event ledger.  When
            set, the pipeline, batch engine, resilience layer, and
            maintenance daemon emit structured events (spans, as.trace,
            breaker transitions, sweep reports) into it; None keeps the
            inert null ledger and byte-identical default output.
        dataset_store: Backend URL for the pipeline's dataset
            (``sqlite:PATH`` / ``json:PATH`` / ``memory:``, see
            :func:`repro.core.store.open_store`).  None keeps the
            default in-memory :class:`~repro.core.database.ASdbDataset`
            with zero behavior change; exports from any backend are
            byte-identical.
        sweep_batch_size: Default classify-window size for maintenance
            sweeps (see
            :class:`~repro.core.maintenance.MaintenanceDaemon`).  None
            keeps single-batch sweeps; a bound makes sweeps streaming —
            O(batch) records resident with byte-identical results.
        snapshot_checkpoint_every: Promote every K-th consecutive delta
            in the snapshot store to a checkpoint (full document stored
            alongside the delta), bounding point-in-time reconstruction
            to O(K) deltas.  None keeps the cadence already recorded in
            the store's manifest (or never promotes on a new store).
    """

    seed: int = 0
    train_ml: bool = True
    exclude_asns_from_training: Tuple[int, ...] = ()
    dnb_confidence_threshold: int = 6
    use_cache: bool = True
    reject_domain_mismatch: bool = True
    metrics: Optional[MetricsRegistry] = None
    trace: bool = False
    workers: int = 1
    executor: str = "thread"
    faults: Optional[FaultPlan] = None
    retry: Optional[RetryPolicy] = None
    snapshot_dir: Optional[str] = None
    runlog: Optional[object] = None
    dataset_store: Optional[str] = None
    sweep_batch_size: Optional[int] = None
    snapshot_checkpoint_every: Optional[int] = None


@dataclass(frozen=True)
class BuiltSystem:
    """A fully wired system plus handles to its components."""

    asdb: ASdb
    dnb: DunBradstreet
    crunchbase: Crunchbase
    zvelo: Zvelo
    peeringdb: PeeringDB
    ipinfo: IPinfo
    resolver: EntityResolver
    ml_pipeline: Optional[WebClassificationPipeline]
    frequency_index: DomainFrequencyIndex
    snapshots: Optional[SnapshotStore] = None
    daemon: Optional[MaintenanceDaemon] = None
    #: Every ResilientSource wrapped around the live sources, in wiring
    #: order — the run ledger's end-of-run summary reads breaker states
    #: and degradation tallies from these handles.
    resilient: Tuple[ResilientSource, ...] = ()


def build_sources(world: World, seed: int = 0):
    """Construct the five deployed data sources over a world."""
    return (
        DunBradstreet(world, seed=seed),
        Crunchbase(world, seed=seed),
        Zvelo(world, seed=seed),
        PeeringDB(world, seed=seed),
        IPinfo(world, seed=seed),
    )


def _harden_source(
    source,
    config: SystemConfig,
    resilient_sink: Optional[List[ResilientSource]] = None,
):
    """Apply the configured observability + resilience wrapping.

    Innermost to outermost: metering -> fault injection -> retry/breaker,
    so injected faults are retried exactly like real ones.  With neither
    ``faults`` nor ``retry`` configured this reduces to the plain
    instrumented source and the pipeline behaves byte-identically to an
    unwrapped build.  Every :class:`ResilientSource` created is appended
    to ``resilient_sink`` so the run ledger's end-of-run summary can
    read breaker states.
    """
    wrapped = instrument_source(source, config.metrics)
    if config.faults is not None:
        wrapped = FaultySource(wrapped, config.faults,
                               source_name=source.name)
    if config.faults is not None or config.retry is not None:
        policy = (
            config.retry if config.retry is not None
            else RetryPolicy(seed=config.seed)
        )
        wrapped = ResilientSource(
            wrapped, policy, metrics=config.metrics, runlog=config.runlog
        )
        if resilient_sink is not None:
            resilient_sink.append(wrapped)
    return wrapped


def build_asdb(
    world: World, config: SystemConfig = SystemConfig()
) -> BuiltSystem:
    """Wire registry, sources, resolver, and ML into a runnable ASdb."""
    dnb, crunchbase, zvelo, peeringdb, ipinfo = build_sources(
        world, seed=config.seed
    )
    frequency_index = DomainFrequencyIndex.from_candidates(
        world.registry.contact(asn).candidate_domains
        for asn in world.asns()
    )
    resilient_sink: List[ResilientSource] = []
    resolver = EntityResolver(
        world.web,
        frequency_index,
        # _harden_source is a no-op without a registry/faults/retry, so
        # the default wiring is byte-identical to before.
        sources=[
            _harden_source(source, config, resilient_sink)
            for source in (dnb, crunchbase, zvelo)
        ],
        dnb_confidence_threshold=config.dnb_confidence_threshold,
        reject_domain_mismatch=config.reject_domain_mismatch,
        metrics=config.metrics,
    )
    ml_pipeline: Optional[WebClassificationPipeline] = None
    if config.train_ml:
        rng = random.Random(("ml-train", config.seed).__repr__())
        examples = build_training_examples(
            world,
            dnb,
            rng,
            exclude_asns=config.exclude_asns_from_training,
        )
        ml_pipeline = WebClassificationPipeline(
            Scraper(world.web, metrics=config.metrics),
            seed=config.seed,
            metrics=config.metrics,
        ).fit(examples)
    asdb = ASdb(
        registry=world.registry,
        resolver=resolver,
        peeringdb=_harden_source(peeringdb, config, resilient_sink),
        ipinfo=_harden_source(ipinfo, config, resilient_sink),
        ml_pipeline=ml_pipeline,
        consensus_strategy=resolve_consensus,
        use_cache=config.use_cache,
        metrics=config.metrics,
        trace=config.trace,
        workers=config.workers,
        executor=config.executor,
        runlog=config.runlog,
    )
    if config.dataset_store is not None:
        asdb.dataset = open_store(
            config.dataset_store,
            metrics=config.metrics,
            runlog=config.runlog,
        )
    snapshots = daemon = None
    if config.snapshot_dir is not None:
        snapshots = SnapshotStore(
            config.snapshot_dir,
            checkpoint_every=config.snapshot_checkpoint_every,
        )
        daemon = MaintenanceDaemon(
            asdb,
            workers=config.workers,
            snapshots=snapshots,
            batch_size=config.sweep_batch_size,
        )
    return BuiltSystem(
        asdb=asdb,
        dnb=dnb,
        crunchbase=crunchbase,
        zvelo=zvelo,
        peeringdb=peeringdb,
        ipinfo=ipinfo,
        resolver=resolver,
        ml_pipeline=ml_pipeline,
        frequency_index=frequency_index,
        snapshots=snapshots,
        daemon=daemon,
        resilient=tuple(resilient_sink),
    )
