#!/usr/bin/env python3
"""The indexed sqlite dataset store: byte-identical exports at
O(batch) memory.

Classifies the same world into the default in-memory dataset and into
a sqlite-backed one, proves the exports are byte-for-byte identical,
then runs a churn sweep in streaming windows and snapshots the result
— all while the store never buffers more than its write batch.

Run:
    python examples/sqlite_store_demo.py
"""

import io
import tempfile
from pathlib import Path

from repro import SystemConfig, WorldConfig, build_asdb, generate_world
from repro.core import (
    MaintenanceDaemon,
    SnapshotStore,
    SqliteDatasetStore,
    dataset_to_json,
    diff_stores,
    open_store,
)
from repro.world import simulate_churn


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="asdb-store-"))
    world = generate_world(WorldConfig(n_orgs=300, seed=11))

    print("Classifying into the default in-memory dataset...")
    memory = build_asdb(world, SystemConfig(seed=1, train_ml=False)).asdb
    memory.classify_all()

    print("Classifying the same world into sqlite...")
    db_path = workdir / "asdb.sqlite"
    sqlite_system = build_asdb(
        world,
        SystemConfig(
            seed=1,
            train_ml=False,
            dataset_store=f"sqlite:{db_path}",
        ),
    ).asdb
    store = sqlite_system.dataset
    store._batch_size = 64  # small batch so the demo flushes often
    sqlite_system.classify_all()

    buffer = io.StringIO()
    store.write_json(buffer)
    identical = buffer.getvalue() == dataset_to_json(memory.dataset)
    print(f"  records stored:        {len(store)}")
    print(f"  JSON export identical: {identical}")
    print(f"  CSV export identical:  "
          f"{store.to_csv() == memory.dataset.to_csv()}")
    print(f"  peak buffered records: {store.resident_high_water} "
          f"(batch size {store.batch_size})")

    print("\nIndexed aggregates (SQL, no materialization):")
    for layer1, count in sorted(
        store.category_histogram().items(), key=lambda kv: -kv[1]
    )[:5]:
        print(f"  {layer1:32s} {count:4d} ASes")

    print("\nChurn + streaming windowed sweep (50-AS windows):")
    snapshots = SnapshotStore(str(workdir / "releases"))
    daemon = MaintenanceDaemon(
        sqlite_system, snapshots=snapshots, batch_size=50
    )
    daemon.sweep(current_day=0)
    simulate_churn(world, days=120, seed=2, start_day=1)
    report = daemon.sweep(current_day=120)
    print(f"  reclassified {report.reclassified} churned ASes in "
          f"windows of 50")
    print(f"  snapshot versions: "
          f"{[info.version for info in snapshots.versions()]}")

    print("\nLoading the latest snapshot into a fresh sqlite store...")
    target = SqliteDatasetStore(workdir / "restored.sqlite",
                                batch_size=64)
    snapshots.load(into=target)
    print(f"  restored {len(target)} records, "
          f"peak buffered {target.resident_high_water}")
    print(f"  diff vs live store empty: "
          f"{diff_stores(target, store).empty}")

    print("\nopen_store picks a backend by URL:")
    for url in (f"sqlite:{db_path}", f"json:{workdir / 'd.json'}",
                "memory:"):
        backend = open_store(url)
        print(f"  {url:40s} -> {type(backend).__name__}")
        backend_close = getattr(backend, "close", None)
        if backend_close and url.startswith("sqlite:"):
            backend_close()

    target.close()
    store.close()
    print(f"\nArtifacts under {workdir}")


if __name__ == "__main__":
    main()
