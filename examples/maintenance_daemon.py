#!/usr/bin/env python3
"""Keeping ASdb fresh: churn sweeps and community corrections (§5.3).

Simulates four months of registry churn (new registrations + ownership
changes at the paper's measured rates), runs weekly maintenance sweeps,
and processes a community-submitted correction through human review.

Run:
    python examples/maintenance_daemon.py
"""

from repro import SystemConfig, WorldConfig, build_asdb, generate_world
from repro.core import Correction, CorrectionQueue, MaintenanceDaemon
from repro.taxonomy import LabelSet
from repro.world import simulate_churn


def main() -> None:
    print("Building the world and the initial dataset...")
    world = generate_world(WorldConfig(n_orgs=500, seed=53))
    built = build_asdb(world, SystemConfig(seed=1, train_ml=False))
    daemon = MaintenanceDaemon(built.asdb)
    initial = daemon.sweep(current_day=0)
    print(f"  initial sweep classified {initial.reclassified} ASes")

    print("\nSimulating 16 weeks of registry churn with weekly sweeps:")
    day = 0
    for week in range(1, 17):
        stats = simulate_churn(
            world, days=7, seed=week, start_day=day + 1
        )
        day += 7
        sweep = daemon.sweep(current_day=day)
        if sweep.new_asns or sweep.updated_asns:
            print(
                f"  week {week:2d}: +{len(sweep.new_asns)} new, "
                f"{len(sweep.updated_asns)} updated, "
                f"reclassified {sweep.reclassified}"
            )
    scale = 100_000 / len(world.asns())
    print(f"\n  (at Internet scale that is ~"
          f"{daemon.last_swept_day and len(world.asns())*0.04*scale/19:.0f}"
          "+ updates/week - the paper estimates ~140)")

    print("\nCommunity corrections workflow:")
    queue = CorrectionQueue(built.asdb)
    asn = world.asns()[3]
    before = built.asdb.dataset.get(asn)
    print(f"  AS{asn} currently: "
          f"{', '.join(str(l) for l in before.labels) or '-'}")
    ticket = queue.submit(
        Correction(
            asn=asn,
            proposed=LabelSet.from_layer2_slugs(["hosting"]),
            submitter="operator@example.net",
            rationale="We are a colocation provider, not an ISP.",
        )
    )
    print(f"  submitted correction ticket #{ticket}; "
          f"{len(queue.pending())} pending human review")
    queue.review(ticket, approve=True)
    after = built.asdb.dataset.get(asn)
    print(f"  after review: {', '.join(str(l) for l in after.labels)} "
          f"(sources: {'|'.join(after.sources)})")


if __name__ == "__main__":
    main()
