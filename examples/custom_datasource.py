#!/usr/bin/env python3
"""Extending ASdb with a new data source.

ASdb is "a modular framework that allows for adding new data sources"
(Section 5.1).  This example defines a toy national telecom-regulator
registry (authoritative for ISPs in one country), plugs it into the
resolver and consensus ranking, and measures the effect.

Run:
    python examples/custom_datasource.py
"""

from typing import Dict, Optional

from repro import SystemConfig, WorldConfig, build_asdb, generate_world
from repro.core.consensus import ACCURACY_RANK
from repro.datasources import DataSource, Query, SourceEntry, SourceMatch
from repro.matching import EntityResolver
from repro.taxonomy import LabelSet


class TelecomRegulator(DataSource):
    """A national regulator's ISP license registry.

    Authoritative (100% precision) but only for licensed ISPs in one
    country - a realistic new-source profile.
    """

    name = "regulator"

    def __init__(self, world, country: str = "DE") -> None:
        self._entries: Dict[str, SourceEntry] = {}
        self._domain_index: Dict[str, str] = {}
        for org in world.iter_organizations():
            if org.country != country:
                continue
            if "isp" not in org.truth.layer2_slugs():
                continue
            entry = SourceEntry(
                entity_id=f"lic-{org.org_id}",
                org_id=org.org_id,
                name=org.name,
                domain=org.domain,
                native_categories=("licensed-isp",),
                labels=LabelSet.from_layer2_slugs(["isp"]),
            )
            self._entries[org.org_id] = entry
            if org.domain:
                self._domain_index[org.domain] = org.org_id

    def coverage_count(self) -> int:
        return len(self._entries)

    def lookup(self, query: Query) -> Optional[SourceMatch]:
        if query.domain and query.domain in self._domain_index:
            entry = self._entries[self._domain_index[query.domain]]
            return SourceMatch(source=self.name, entry=entry,
                               via="domain")
        return None

    def lookup_by_org(self, org_id: str) -> Optional[SourceMatch]:
        entry = self._entries.get(org_id)
        if entry is None:
            return None
        return SourceMatch(source=self.name, entry=entry, via="manual")


def main() -> None:
    world = generate_world(WorldConfig(n_orgs=500, seed=77))
    print("Baseline system (five paper sources)...")
    baseline = build_asdb(world, SystemConfig(seed=1))
    baseline_dataset = baseline.asdb.classify_all()

    print("Extended system (+ telecom regulator registry)...")
    extended = build_asdb(world, SystemConfig(seed=1))
    regulator = TelecomRegulator(world, country="DE")
    print(f"  regulator licenses {regulator.coverage_count()} ISPs")
    # Plug into the resolver's source list and the consensus ranking.
    extended.resolver._sources.append(regulator)
    ACCURACY_RANK.setdefault("regulator", 0.99)
    extended_dataset = extended.asdb.classify_all()

    def isp_accuracy(dataset, country):
        hits = total = 0
        for asn in world.asns():
            org = world.org_of_asn(asn)
            if org.country != country:
                continue
            if "isp" not in org.truth.layer2_slugs():
                continue
            record = dataset.get(asn)
            if record is None or not record.labels:
                continue
            total += 1
            hits += "isp" in record.labels.layer2_slugs()
        return hits, total

    for name, dataset in (("baseline", baseline_dataset),
                          ("extended", extended_dataset)):
        hits, total = isp_accuracy(dataset, "DE")
        print(f"  {name}: German ISPs correctly labeled isp: "
              f"{hits}/{total} ({hits / max(total, 1):.0%})")

    used = sum(
        1
        for record in extended_dataset
        if "regulator" in record.sources
    )
    print(f"  the regulator contributed to {used} classifications")


if __name__ == "__main__":
    main()
