#!/usr/bin/env python3
"""The serving layer end to end: snapshot a release, serve it over
HTTP, query it with stdlib clients, land a refresh with an atomic
index swap, and watch an unknown ASN flow through the background
classification queue.

Run:
    python examples/serving_demo.py
"""

import asyncio
import http.client
import json
import tempfile
import threading
import time
from pathlib import Path

from repro import SystemConfig, WorldConfig, build_asdb, generate_world
from repro.core import SnapshotStore
from repro.obs import MetricsRegistry
from repro.serving import (
    ClassificationQueue,
    QueueWorker,
    ServingApp,
    index_from_snapshots,
    index_from_store,
)


def get(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def serve_in_thread(app):
    """Run the app's event loop on a daemon thread; returns the port."""
    ready = threading.Event()
    box = {}

    def runner():
        async def main():
            box["loop"] = asyncio.get_running_loop()
            _, port = await app.start("127.0.0.1", 0)
            box["port"] = port
            ready.set()
            try:
                await app.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await app.stop()

        asyncio.run(main())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    ready.wait(10)
    box["thread"] = thread
    return box


def shutdown(box):
    for task in asyncio.all_tasks(box["loop"]):
        box["loop"].call_soon_threadsafe(task.cancel)
    box["thread"].join(10)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        releases = str(Path(tmp) / "releases")

        # --- Release v1: classify a world and snapshot it. ------------
        world = generate_world(WorldConfig(n_orgs=80, seed=13))
        built = build_asdb(world, SystemConfig(seed=13, train_ml=False))
        dataset = built.asdb.classify_all()
        store = SnapshotStore(releases)
        info = store.save(dataset)
        print(f"released v{info.version}: {info.record_count} records")

        # --- Serve it: immutable index, refresh via atomic swap. ------
        app = ServingApp(
            index_from_snapshots(releases),
            rebuild=lambda generation: index_from_snapshots(
                releases, generation=generation
            ),
        )
        box = serve_in_thread(app)
        port = box["port"]
        print(f"serving on 127.0.0.1:{port}")

        status, version = get(port, "/version")
        print(f"/version -> {version}")
        asn = world.asns()[0]
        status, body = get(port, f"/asn/{asn}")
        labels = body["record"]["labels"]
        print(f"/asn/{asn} -> {status}, labels {labels}")
        status, body = get(port, "/categories")
        print(f"/categories -> {body['categories']}")

        # --- Land a new release; swap it in without a restart. --------
        extra = generate_world(WorldConfig(n_orgs=90, seed=13))
        rebuilt = build_asdb(extra, SystemConfig(seed=13, train_ml=False))
        SnapshotStore(releases).save(rebuilt.asdb.classify_all())
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        conn.request("POST", "/refresh")
        swapped = json.loads(conn.getresponse().read())
        conn.close()
        print(f"POST /refresh -> {swapped['version']}")
        shutdown(box)

        # --- Lazy serving: the queue classifies on demand. ------------
        lazy_world = generate_world(WorldConfig(n_orgs=40, seed=21))
        lazy = build_asdb(lazy_world, SystemConfig(seed=21, train_ml=False))
        registry = MetricsRegistry()
        queue = ClassificationQueue(maxsize=64, metrics=registry)

        def rebuild(generation):
            return index_from_store(
                lazy.asdb.dataset, generation=generation, source="lazy"
            )

        lazy_app = ServingApp(
            rebuild(1), rebuild=rebuild, queue=queue, metrics=registry
        )
        lazy_app.worker = QueueWorker(
            queue,
            classify=lambda asns: lazy.asdb.classify_batch(asns),
            classify_one=lazy.asdb.classify,
            after=lazy_app.on_drained,
        )
        box = serve_in_thread(lazy_app)
        port = box["port"]
        asn = lazy_world.asns()[-1]
        status, body = get(port, f"/asn/{asn}")
        print(f"lazy /asn/{asn} -> {status} ({body.get('status', 'hit')})")
        deadline = time.time() + 15
        while status != 200 and time.time() < deadline:
            time.sleep(0.1)
            status, body = get(port, f"/asn/{asn}")
        print(
            f"after the swap: /asn/{asn} -> {status}, "
            f"stage {body['record']['stage']}"
        )
        sample = [
            line
            for line in registry.to_prometheus().splitlines()
            if line.startswith("asdb_serve_queue_total")
        ]
        print("queue metrics:", *sample, sep="\n  ")
        shutdown(box)


if __name__ == "__main__":
    main()
