#!/usr/bin/env python3
"""Anatomy of one classification: walk an AS through every pipeline stage.

Shows the raw WHOIS text, the parsed/extracted fields, domain selection,
the ML verdict, per-source matches, and the final consensus - the whole
of Figure 4, narrated.

Run:
    python examples/classify_single_as.py [asn]
"""

import sys

from repro import SystemConfig, WorldConfig, build_asdb, generate_world
from repro.datasources import Query


def main() -> None:
    world = generate_world(WorldConfig(n_orgs=300, seed=9))
    built = build_asdb(world, SystemConfig(seed=2))

    if len(sys.argv) > 1:
        asn = int(sys.argv[1])
    else:
        # Pick an AS that exercises the full pipeline (has a domain).
        asn = next(
            a for a in world.asns()
            if world.org_of_asn(a).domain is not None
        )

    org = world.org_of_asn(asn)
    print(f"=== AS{asn} ===")
    print(f"(ground truth: {org.name} -> "
          f"{', '.join(str(l) for l in org.truth)})\n")

    print("--- raw WHOIS record "
          f"({world.ases[asn].rir.value.upper()}) ---")
    print(world.registry.raw(asn).text)

    contact = world.registry.contact(asn)
    print("--- Appendix-A extraction ---")
    print(f"  name:    {contact.name!r} (from {contact.name_source})")
    print(f"  address: {contact.address}")
    print(f"  country: {contact.country}  phone: {contact.phone}")
    print(f"  candidate domains: {list(contact.candidate_domains)}")

    as_name = world.ases[asn].as_name
    print("\n--- stage 1: ASN-keyed sources ---")
    for source in (built.peeringdb, built.ipinfo):
        match = source.lookup(Query(asn=asn))
        if match is None:
            print(f"  {source.name}: no entry")
        else:
            print(f"  {source.name}: {match.entry.native_categories} "
                  f"-> {match.labels or '(no NAICSlite translation)'}")

    print("\n--- stage 2: domain selection ---")
    chosen = built.resolver.choose_domain(contact, as_name)
    print(f"  chosen domain: {chosen}")

    if chosen and built.ml_pipeline is not None:
        print("\n--- stage 3: ML classification ---")
        verdict = built.ml_pipeline.classify_domain(chosen)
        print(f"  scraped: {verdict.scraped}")
        print(f"  ISP score:     {verdict.isp_score:.2f} "
              f"-> {'ISP' if verdict.is_isp else 'not ISP'}")
        print(f"  hosting score: {verdict.hosting_score:.2f} "
              f"-> {'hosting' if verdict.is_hosting else 'not hosting'}")

    print("\n--- stage 4: identifier-keyed source matching ---")
    resolved = built.resolver.resolve(contact, as_name)
    for name, match in sorted(resolved.matches.items()):
        print(f"  {name}: {match.entry.name!r} "
              f"{match.entry.native_categories} -> {match.labels}")
    if resolved.rejected:
        print(f"  rejected (low confidence / domain mismatch): "
              f"{', '.join(resolved.rejected)}")

    print("\n--- final classification ---")
    record = built.asdb.classify(asn)
    print(f"  stage:  {record.stage.display}")
    print(f"  labels: {', '.join(str(l) for l in record.labels) or '-'}")
    print(f"  via:    {'|'.join(record.sources) or '-'}")
    correct = record.labels.overlaps_layer1(org.truth)
    print(f"  layer-1 correct vs ground truth: {correct}")


if __name__ == "__main__":
    main()
