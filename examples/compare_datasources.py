#!/usr/bin/env python3
"""Compare the external data sources against an expert gold standard.

Reproduces the Section-3 evaluation workflow: build a gold standard with
simulated expert labelers, then measure each candidate source's coverage
and layer 1/2 correctness - the analysis behind Tables 3 and 4.

Run:
    python examples/compare_datasources.py
"""

from repro import SystemConfig, WorldConfig, build_asdb, generate_world
from repro.datasources import Clearbit, ZoomInfo
from repro.evaluation import build_gold_standard, evaluate_source
from repro.reporting import render_table


def main() -> None:
    print("Building the world and the gold standard...")
    world = generate_world(WorldConfig(n_orgs=800, seed=33))
    built = build_asdb(world, SystemConfig(seed=1, train_ml=False))
    gold = build_gold_standard(world, size=150, seed=0)
    print(f"  {len(gold.labeled_entries())}/{len(gold)} ASes labeled "
          f"({len(gold.layer2_entries())} with layer 2 categories)")

    sources = {
        "D&B": built.dnb,
        "Crunchbase": built.crunchbase,
        "ZoomInfo": ZoomInfo(world),
        "Clearbit": Clearbit(world),
        "Zvelo": built.zvelo,
        "PeeringDB": built.peeringdb,
        "IPinfo": built.ipinfo,
    }

    rows = []
    for name, source in sources.items():
        ev = evaluate_source(source, world, gold)
        rows.append(
            [
                name,
                str(ev.coverage),
                str(ev.l1_recall),
                str(ev.l2_recall),
                str(ev.l2_recall_hosting),
                str(ev.l2_recall_isp),
            ]
        )
    print()
    print(
        render_table(
            ["Source", "Coverage", "L1 recall", "L2 recall", "Hosting",
             "ISP"],
            rows,
            title="External data sources vs the gold standard",
        )
    )
    print(
        "\nTakeaways (matching the paper): the business databases cover "
        "non-tech well but\nconfuse ISPs with hosting providers; the "
        "networking databases are accurate but\ncover a sliver of ASes. "
        "No single source suffices - hence ASdb."
    )


if __name__ == "__main__":
    main()
