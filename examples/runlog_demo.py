#!/usr/bin/env python3
"""Run ledger tour: persist a run, report on it, gate it with SLOs.

Runs a full classification pass with a :class:`~repro.obs.RunLog`
attached, then shows the three after-the-fact views the ledger
enables — everything below is reconstructed from the NDJSON file
alone, the way `repro report` / `repro health` would after the
process is long gone:

1. the raw event stream (what one ledger line looks like),
2. the rendered run report (per-stage, per-source, per-executor),
3. an SLO health evaluation, including a deliberately-breached budget.

Run:
    python examples/runlog_demo.py
"""

import json
import os
import tempfile

from repro import SystemConfig, WorldConfig, build_asdb, generate_world
from repro.obs import (
    MetricsRegistry,
    RunLog,
    evaluate_slos,
    load_events,
    load_slos,
    render_health,
    render_report,
)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="runlog-demo-")
    ledger_path = os.path.join(workdir, "run.ndjson")

    print("Classifying 150 organizations with a run ledger attached...")
    registry = MetricsRegistry()
    world = generate_world(WorldConfig(n_orgs=150, seed=7))
    with RunLog(
        ledger_path, kind="classify",
        config={"n_orgs": 150, "seed": 7, "workers": 3},
        world={"n_orgs": 150, "seed": 7},
    ) as runlog:
        built = build_asdb(
            world,
            SystemConfig(
                seed=1, metrics=registry, trace=True, workers=3,
                runlog=runlog,
            ),
        )
        cache = built.asdb.cache
        runlog.sample_resources(
            {"cache": lambda: {"hits": cache.hits,
                               "misses": cache.misses}},
            phase="built",
        )
        dataset = built.asdb.classify_all()
        runlog.sample_resources(
            {"cache": lambda: {"hits": cache.hits,
                               "misses": cache.misses}},
            phase="classified",
        )
        runlog.finish(
            status="ok", metrics=registry,
            degraded={"records": 0, "total": len(dataset)},
        )
    print(f"  classified {len(dataset)} ASes -> {ledger_path}")

    events = load_events(ledger_path)
    print("\n--- 1. The event stream " + "-" * 39)
    by_type = {}
    for event in events:
        by_type[event["event"]] = by_type.get(event["event"], 0) + 1
    for name, count in sorted(by_type.items(), key=lambda kv: -kv[1]):
        print(f"  {name:16s} {count:5d} events")
    worker_kinds = {
        event["worker"]["kind"]
        for event in events if event["event"] == "span"
    }
    print(f"  span-emitting executors: {sorted(worker_kinds)}")

    print("\n--- 2. The run report " + "-" * 41)
    print(render_report(events, ledger_path))

    print("\n--- 3. SLO health " + "-" * 45)
    slo_path = os.path.join(workdir, "slo.json")
    with open(slo_path, "w") as handle:
        json.dump({"slos": [
            {"id": "wall", "kind": "max_run_seconds", "max": 300},
            {"id": "degraded", "kind": "max_degraded_fraction",
             "max": 0.05},
            # Deliberately impossible: demonstrates a FAIL verdict.
            {"id": "instant-ml", "kind": "max_stage_p99_seconds",
             "stage": "ml", "max": 0.0},
        ]}, handle)
    results = evaluate_slos(events, load_slos(slo_path))
    print(render_health(results))
    breached = [result.rule.id for result in results if not result.ok]
    print(f"\n  `repro health` would exit "
          f"{1 if breached else 0} (breached: {breached})")


if __name__ == "__main__":
    main()
