#!/usr/bin/env python3
"""Observability tour: metrics snapshot + per-AS span traces.

Builds a small world with a MetricsRegistry and tracing enabled, runs
the full pipeline, then shows the three views the obs layer offers:

1. the Prometheus text exposition a deployment would scrape,
2. one AS's narrated per-stage trace (what `repro lookup --trace`
   prints),
3. aggregate per-stage wall time derived from every trace.

Run:
    python examples/observability_demo.py
"""

from repro import SystemConfig, Stage, WorldConfig, build_asdb, generate_world
from repro.obs import MetricsRegistry, format_seconds, narrate_trace
from repro.reporting import render_metrics_summary


def main() -> None:
    print("Building an instrumented ASdb (200 organizations)...")
    registry = MetricsRegistry()
    world = generate_world(WorldConfig(n_orgs=200, seed=7))
    built = build_asdb(
        world, SystemConfig(seed=1, metrics=registry, trace=True)
    )
    dataset = built.asdb.classify_all()
    cache = built.asdb.cache
    print(f"  classified {len(dataset)} ASes "
          f"(coverage {dataset.coverage():.1%}, "
          f"cache hit rate {cache.hit_rate:.1%})")

    print("\n--- 1. Prometheus exposition (excerpt) " + "-" * 24)
    counters_only = [
        line for line in registry.to_prometheus().splitlines()
        if line.startswith(("asdb_stage_total", "asdb_cache",
                            "asdb_source_lookups_total"))
    ]
    for line in counters_only:
        print(f"  {line}")
    print("  (histograms omitted; registry.to_prometheus() has it all)")

    print("\n--- 2. One AS, narrated " + "-" * 39)
    record = next(
        r for r in dataset
        if r.trace is not None and r.stage not in
        (Stage.CACHED, Stage.MATCHED_BY_ASN)
    )
    print(narrate_trace(record.trace))

    print("\n--- 3. Where the time goes " + "-" * 36)
    totals = {}
    for rec in dataset:
        for name, seconds in rec.trace.stage_seconds().items():
            count, total = totals.get(name, (0, 0.0))
            totals[name] = (count + 1, total + seconds)
    for name, (count, total) in sorted(
        totals.items(), key=lambda item: -item[1][1]
    ):
        print(f"  {name:14s} {format_seconds(total):>10s} total "
              f"over {count:4d} spans "
              f"(mean {format_seconds(total / count)})")

    print("\n--- Metrics summary table " + "-" * 37)
    print(render_metrics_summary(registry))


if __name__ == "__main__":
    main()
