#!/usr/bin/env python3
"""Quickstart: build a world, run ASdb over it, inspect the dataset.

Run:
    python examples/quickstart.py
"""

from repro import SystemConfig, WorldConfig, build_asdb, generate_world
from repro.taxonomy import naicslite


def main() -> None:
    print("Generating a synthetic world (400 organizations)...")
    world = generate_world(WorldConfig(n_orgs=400, seed=42))
    print(f"  {len(world.organizations)} organizations, "
          f"{len(world.asns())} ASes, {len(world.web)} websites")

    print("\nBuilding ASdb (5 data sources + trained ML pipeline)...")
    built = build_asdb(world, SystemConfig(seed=1))

    print("Classifying every AS...")
    dataset = built.asdb.classify_all()
    print(f"  coverage: {dataset.coverage():.1%} of "
          f"{len(dataset)} ASes classified")

    print("\nPipeline stage breakdown:")
    for stage, count in sorted(
        dataset.stage_counts().items(), key=lambda item: -item[1]
    ):
        print(f"  {stage.display:40s} {count:5d}")

    print("\nTop industries by AS count:")
    histogram = dataset.category_histogram()
    for slug, count in sorted(histogram.items(), key=lambda i: -i[1])[:8]:
        name = naicslite.layer1_by_slug(slug).name
        print(f"  {name[:50]:50s} {count:5d}")

    print("\nSample records:")
    for record in list(dataset)[:5]:
        labels = ", ".join(str(label) for label in record.labels) or "-"
        print(f"  AS{record.asn}: {labels}")
        print(f"    stage={record.stage.value} domain={record.domain} "
              f"sources={'|'.join(record.sources) or '-'}")

    print("\nAccuracy against ground truth:")
    hits = total = 0
    for record in dataset:
        if not record.labels:
            continue
        total += 1
        hits += record.labels.overlaps_layer1(world.truth(record.asn))
    print(f"  layer 1: {hits}/{total} ({hits / total:.1%})")

    csv_text = dataset.to_csv()
    print(f"\nCSV export: {len(csv_text.splitlines()) - 1} rows; "
          "first three:")
    for line in csv_text.splitlines()[:4]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
