#!/usr/bin/env python3
"""Which industries expose Telnet? (the paper's Section 6 analysis)

Joins the ASdb dataset with a synthetic 1% LZR-style Telnet scan and
ranks industries by exposure - reproducing the paper's finding that
critical-infrastructure organizations (utilities, government, finance)
are more likely to host Telnet than technology companies.

Run:
    python examples/telnet_exposure.py
"""

from repro import SystemConfig, WorldConfig, build_asdb, generate_world
from repro.reporting import render_table
from repro.scan import TelnetScan
from repro.taxonomy import naicslite


def main() -> None:
    print("Building the world and classifying ASes...")
    world = generate_world(WorldConfig(n_orgs=800, seed=6))
    built = build_asdb(world, SystemConfig(seed=1))
    dataset = built.asdb.classify_all()

    print("Running the synthetic Telnet scan...")
    scan = TelnetScan(world, seed=6)

    def classify(asn):
        record = dataset.get(asn)
        return record.labels.layer1_slugs() if record else set()

    rates = scan.telnet_rate_by_layer1(classify)

    rows = []
    for slug, (hits, total) in sorted(
        rates.items(), key=lambda item: -(item[1][0] / max(item[1][1], 1))
    ):
        if total < 5:
            continue
        rows.append(
            [
                naicslite.layer1_by_slug(slug).name[:45],
                total,
                hits,
                f"{hits / total:.0%}",
            ]
        )
    print()
    print(
        render_table(
            ["Industry (ASdb layer 1)", "ASes", "With Telnet", "Rate"],
            rows,
            title="Telnet exposure by industry",
        )
    )

    tech_hits, tech_total = rates["computer_and_it"]
    print(
        f"\nTechnology companies: {tech_hits / tech_total:.0%} - "
        "critical infrastructure runs the legacy gear, exactly as the "
        "paper's ASdb x LZR join found."
    )


if __name__ == "__main__":
    main()
