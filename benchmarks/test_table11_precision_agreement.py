"""Table 11: per-category precision and pairwise source agreement (UGS).

Paper: individual sources are flawed, but when at least two sources agree
on a classification nearly all NAICSlite categories reach ~100% precision
(33% of UGS ASes / 60% of GS ASes have two agreeing sources).
"""

from repro.evaluation import pairwise_precision_rows
from repro.reporting import render_table


def test_table11_precision_agreement(
    benchmark, bench_world, uniform_gold_standard, built_system, report
):
    sources = {
        "dnb": built_system.dnb,
        "zvelo": built_system.zvelo,
        "crunchbase": built_system.crunchbase,
    }

    rows_by_combo = benchmark.pedantic(
        lambda: pairwise_precision_rows(
            bench_world, uniform_gold_standard, sources
        ),
        rounds=1,
        iterations=1,
    )

    rendered = render_table(
        ["Sources", "Precision (agreeing ASes)"],
        [
            [" + ".join(combo), str(fraction)]
            for combo, fraction in sorted(rows_by_combo.items())
        ],
        title="Table 11: Pairwise agreement precision (Uniform Gold "
        "Standard; paper: ~100% when >=2 sources agree)",
    )
    report("table11_precision_agreement", rendered)

    singles = {
        combo[0]: fraction
        for combo, fraction in rows_by_combo.items()
        if len(combo) == 1
    }
    pairs = {
        combo: fraction
        for combo, fraction in rows_by_combo.items()
        if len(combo) == 2
    }
    # Agreement lifts precision above every participating single source.
    for combo, fraction in pairs.items():
        if fraction.total < 10:
            continue
        assert fraction.value >= 0.90, combo
        for member in combo:
            assert fraction.value >= singles[member].value - 0.02, combo
    # Agreement only covers a minority of ASes (paper: 33% on the UGS).
    total_ases = len(uniform_gold_standard.labeled_entries())
    best_pair_coverage = max(
        fraction.total for combo, fraction in pairs.items()
    )
    assert best_pair_coverage <= 0.75 * total_ases
