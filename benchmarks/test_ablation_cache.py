"""Ablation: the organization cache (Figure 4's first stage).

Sibling ASes of an already-classified organization are answered from
cache; this bench measures the hit rate and verifies cached answers agree
with fresh ones.
"""

import time

from repro import SystemConfig, build_asdb
from repro.core import Stage
from repro.reporting import render_table


def test_ablation_cache(benchmark, bench_world, gold_standard, report):
    held_out = tuple(gold_standard.asns())

    def _classify(use_cache):
        built = build_asdb(
            bench_world,
            SystemConfig(
                seed=7,
                exclude_asns_from_training=held_out,
                use_cache=use_cache,
            ),
        )
        start = time.perf_counter()
        dataset = built.asdb.classify_all()
        elapsed = time.perf_counter() - start
        return built, dataset, elapsed

    def _run():
        with_cache = _classify(True)
        without_cache = _classify(False)
        return with_cache, without_cache

    (built_c, dataset_c, time_c), (built_n, dataset_n, time_n) = (
        benchmark.pedantic(_run, rounds=1, iterations=1)
    )

    cached_count = dataset_c.stage_counts().get(Stage.CACHED, 0)

    def sibling_consistency(dataset):
        """Fraction of multi-AS organizations whose classified ASes all
        carry identical labels."""
        consistent = total = 0
        for org_id in sorted(bench_world.organizations):
            asns = bench_world.asns_of_org(org_id)
            if len(asns) < 2:
                continue
            labels = [
                dataset.get(asn).labels
                for asn in asns
                if dataset.get(asn) and dataset.get(asn).classified
            ]
            if len(labels) < 2:
                continue
            total += 1
            consistent += all(l == labels[0] for l in labels)
        return consistent / total if total else 1.0

    consistency_c = sibling_consistency(dataset_c)
    consistency_n = sibling_consistency(dataset_n)

    rows = [
        ["cached answers", cached_count,
         f"{cached_count / len(dataset_c):.1%} of ASes"],
        ["cache hit rate", f"{built_c.asdb.cache.hit_rate:.1%}", ""],
        ["sibling consistency (cache)", f"{consistency_c:.1%}",
         "same org => same labels"],
        ["sibling consistency (no cache)", f"{consistency_n:.1%}",
         "per-AS WHOIS variance shows"],
        ["wall time with cache", f"{time_c:.2f}s", ""],
        ["wall time without", f"{time_n:.2f}s", ""],
    ]
    table = render_table(
        ["Metric", "Value", "Note"],
        rows,
        title="Ablation: organization cache",
    )
    report("ablation_cache", table)

    assert cached_count > 0
    # The cache's purpose: one organization, one classification.  Without
    # it, per-AS WHOIS variance fragments the answers.
    assert consistency_c >= consistency_n
    assert consistency_c >= 0.90
    # Caching never slows the system down materially (generous band:
    # wall-clock under a loaded benchmark session is noisy).
    assert time_c <= time_n * 1.5
