"""Figure 7: consensus requirement vs accuracy and coverage.

Paper: strengthening the requirement from 2/3 to 4/5 lifts loose-match
accuracy to 100% but drops coverage by up to 35 points.
"""

from repro.crowd import MTurkPlatform
from repro.reporting import render_table

SETTINGS = ((3, 2), (5, 3), (5, 4))  # (workers, required)


def test_figure7_consensus(benchmark, bench_world, report):
    orgs = list(bench_world.iter_organizations())
    finance = [
        org for org in orgs if "finance" in org.truth.layer1_slugs()
    ][:20]
    tech = [org for org in orgs if org.is_tech][:20]
    lookup = {org.org_id: org for org in finance + tech}

    def _loose(batch):
        hits = total = 0
        for task in batch.tasks:
            if not task.outcome.reached:
                continue
            total += 1
            hits += task.outcome.labels.overlaps_layer2(
                lookup[task.org_id].truth
            )
        return hits / total if total else 0.0

    def _run():
        platform = MTurkPlatform(seed=23, pool_size=1500)
        results = {}
        for workers, required in SETTINGS:
            fin = platform.run_batch(
                finance, 30, workers_per_task=workers, required=required
            )
            tec = platform.run_batch(
                tech, 30, workers_per_task=workers, required=required
            )
            results[(workers, required)] = (fin, tec)
        return results

    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for (workers, required), (fin, tec) in results.items():
        rows.append(
            [
                f"{required}/{workers}",
                f"{fin.coverage:.0%}",
                f"{tec.coverage:.0%}",
                f"{_loose(fin):.0%}",
                f"{_loose(tec):.0%}",
            ]
        )
    table = render_table(
        ["Consensus", "Fin cov", "Tech cov", "Fin loose", "Tech loose"],
        rows,
        title="Figure 7: Consensus requirement vs accuracy/coverage "
        "(paper: 4/5 -> 100% loose accuracy, coverage -35 points)",
    )
    report("figure7_consensus", table)

    fin_23, tech_23 = results[(3, 2)]
    fin_45, tech_45 = results[(5, 4)]
    # Stricter consensus: coverage falls...
    assert tech_45.coverage <= tech_23.coverage
    assert fin_45.coverage <= fin_23.coverage
    # ...and loose accuracy rises (or stays at the ceiling).
    assert _loose(tech_45) >= _loose(tech_23) - 0.02
    assert _loose(fin_45) >= 0.90
