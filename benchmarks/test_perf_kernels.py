"""Performance: similarity kernels and the content-addressed score cache.

Two acceptance gates for the PR-5 CPU pass, both measured against the
reference implementations kept in :mod:`repro.matching.kernels`:

* the batch similarity kernel (interned tokenization + trimmed LCS +
  exact upper-bound prune) must select domains >= 3x faster than the
  original per-candidate ``name_similarity`` loop, with identical
  winners;
* re-classifying 150 domains with a warm content cache must be >= 1.5x
  faster than the cold pass, with identical verdicts.

Results are appended to ``BENCH_kernels.json`` at the repo root so the
perf trajectory is recorded commit over commit (CI uploads the file as
an artifact).  Timed manually with ``time.perf_counter`` (best of
``REPRO_BENCH_ROUNDS``) rather than via pytest-benchmark so the smoke
job can assert the speedups and emit JSON in one pass.
"""

import json
import os
import time
from pathlib import Path

from repro.matching.kernels import (
    KernelStats,
    name_similarity_reference,
    score_candidates,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
BENCH_ROUNDS = max(1, int(os.environ.get("REPRO_BENCH_ROUNDS", "3")))

#: ASes per similarity workload; enough that per-call timer noise is
#: irrelevant even at 1 round.
WORKLOAD_ASES = 600


def _record(key, payload):
    """Merge one benchmark's numbers into ``BENCH_kernels.json``."""
    document = {}
    if BENCH_PATH.exists():
        document = json.loads(BENCH_PATH.read_text())
    document[key] = payload
    BENCH_PATH.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def _best_of(rounds, fn):
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_perf_similarity_kernel(bench_world, report):
    """Domain-selection similarity scoring: kernel vs reference loop."""
    registry = bench_world.registry
    web = bench_world.web
    workload = []
    for asn in bench_world.asns()[:WORKLOAD_ASES]:
        parsed = registry.parsed(asn)
        contact = registry.contact(asn)
        as_name = parsed.as_name or contact.name
        ordered = sorted(set(contact.candidate_domains))
        references = []
        for domain in ordered:
            title = web.homepage_title(domain)
            references.append(title if title is not None else domain)
        if references:
            workload.append((as_name, references))
    pairs = sum(len(references) for _, references in workload)

    def run_reference():
        winners = []
        for as_name, references in workload:
            best_index, best_score = -1, -1.0
            for index, reference in enumerate(references):
                score = name_similarity_reference(as_name, reference)
                if score > best_score:
                    best_index, best_score = index, score
            winners.append(best_index)
        return winners

    stats = KernelStats()

    def run_kernel():
        return [
            score_candidates(as_name, references, stats=stats)[0]
            for as_name, references in workload
        ]

    # Warm the name-interning caches first so the measurement isolates
    # the steady-state kernel (the caches persist per process anyway).
    run_kernel()
    reference_seconds, reference_winners = _best_of(
        BENCH_ROUNDS, run_reference
    )
    kernel_seconds, kernel_winners = _best_of(BENCH_ROUNDS, run_kernel)
    assert kernel_winners == reference_winners
    speedup = reference_seconds / kernel_seconds

    payload = {
        "ases": len(workload),
        "candidate_pairs": pairs,
        "reference_seconds": round(reference_seconds, 6),
        "kernel_seconds": round(kernel_seconds, 6),
        "speedup": round(speedup, 2),
        "pruned_fraction": round(
            stats.pruned / stats.candidates if stats.candidates else 0.0, 4
        ),
    }
    _record("similarity_kernel", payload)
    report(
        "perf_similarity_kernel",
        "\n".join(
            [
                "Performance: similarity kernel vs reference",
                f"  ASes scored          {payload['ases']}",
                f"  candidate pairs      {payload['candidate_pairs']}",
                f"  reference loop       {reference_seconds * 1e3:.1f} ms",
                f"  batch kernel         {kernel_seconds * 1e3:.1f} ms",
                f"  speedup              {speedup:.1f}x (gate: >= 3x)",
                f"  pruned candidates    {payload['pruned_fraction']:.1%}",
            ]
        ),
    )
    assert speedup >= 3.0


def test_perf_featcache_warm_reclassification(built_system, bench_world, report):
    """150-domain re-classification: warm content cache vs cold pass."""
    pipeline = built_system.ml_pipeline
    domains = [
        org.domain
        for org in bench_world.iter_organizations()
        if org.domain is not None
    ][:150]
    assert len(domains) == 150

    def run_cold():
        pipeline.feature_cache.clear()
        return pipeline.classify_domains(domains)

    def run_warm():
        return pipeline.classify_domains(domains)

    cold_seconds, cold_verdicts = _best_of(BENCH_ROUNDS, run_cold)
    # run_cold left the cache populated: every warm round is all hits.
    warm_seconds, warm_verdicts = _best_of(BENCH_ROUNDS, run_warm)
    assert warm_verdicts == cold_verdicts
    speedup = cold_seconds / warm_seconds
    cache_stats = pipeline.feature_cache.stats()

    payload = {
        "domains": len(domains),
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "speedup": round(speedup, 2),
        "cache_entries": cache_stats.size,
    }
    _record("featcache_warm_reclassification", payload)
    report(
        "perf_featcache",
        "\n".join(
            [
                "Performance: warm-cache re-classification (150 domains)",
                f"  cold pass            {cold_seconds * 1e3:.1f} ms",
                f"  warm pass            {warm_seconds * 1e3:.1f} ms",
                f"  speedup              {speedup:.1f}x (gate: >= 1.5x)",
                f"  cache entries        {cache_stats.size}",
                "  verdicts             identical cold vs warm",
            ]
        ),
    )
    assert speedup >= 1.5
