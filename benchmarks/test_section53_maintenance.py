"""Section 5.3: maintaining ASdb.

Paper: an average 21 ASes registered per day (19 new organizations/day)
and 4% metadata churn imply ~140 ASes needing updates per week; ASdb's
maintenance sweep plus the organization cache keep that workload cheap.
"""

from repro import SystemConfig, build_asdb
from repro.core import MaintenanceDaemon
from repro.reporting import render_table
from repro.world import WorldConfig, generate_world, simulate_churn
from repro.world.churn import NEW_AS_RATE_PER_DAY


def test_section53_maintenance(benchmark, report):
    def _run():
        # A private world: churn mutates the registry.
        world = generate_world(WorldConfig(n_orgs=700, seed=53))
        built = build_asdb(world, SystemConfig(seed=1, train_ml=False))
        daemon = MaintenanceDaemon(built.asdb)
        daemon.sweep(current_day=0)  # initial full classification

        stats = simulate_churn(world, days=120, seed=3, start_day=1)
        sweep = daemon.sweep(current_day=121)
        return world, stats, sweep, built

    world, stats, sweep, built = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    n_base = len(world.asns()) - len(stats.new_asns)
    scale = 100_000 / n_base
    rows = [
        ["new ASes/day (scaled to 100K ASes)",
         f"{stats.ases_per_day * scale:.1f}", "(paper 21)"],
        ["new orgs/day (scaled)",
         f"{stats.orgs_per_day * scale:.1f}", "(paper 19)"],
        ["metadata churn over window",
         f"{len(stats.updated_asns) / n_base:.1%}", "(paper 4%)"],
        ["registrations+updates/week (scaled)",
         f"{sweep.updates_per_week * scale:.0f}",
         "(paper: ~147 new + ~140 updated)"],
        ["sweep reclassified", sweep.reclassified, ""],
        ["cache hit rate", f"{built.asdb.cache.hit_rate:.0%}", ""],
    ]
    table = render_table(
        ["Metric", "Measured", "Reference"],
        rows,
        title="Section 5.3: maintenance churn and sweep workload",
    )
    report("section53_maintenance", table)

    # The sweep picked up exactly the churned ASes.
    assert set(sweep.new_asns) == set(stats.new_asns)
    assert set(sweep.updated_asns) == set(stats.updated_asns)
    # Scaled rates sit near the paper's measurements.
    assert 10 <= stats.ases_per_day * scale <= 35          # 21
    assert 0.02 <= len(stats.updated_asns) / n_base <= 0.06  # 4%
    assert 100 <= sweep.updates_per_week * scale <= 450
