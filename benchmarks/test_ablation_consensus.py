"""Ablation: consensus strategies (the Section 5.1 design choice).

Compares ASdb's union-on-overlap + accuracy-ranked fallback against two
alternatives: always trusting the single best-ranked source, and a
majority vote over layer 2 categories.
"""

import pytest

from repro import SystemConfig, build_asdb
from repro.core import majority_vote, resolve_consensus, single_best_source
from repro.evaluation import evaluate_stages
from repro.reporting import render_table

STRATEGIES = {
    "paper (union-on-overlap)": resolve_consensus,
    "single best source": single_best_source,
    "majority vote": majority_vote,
}


def test_ablation_consensus(
    benchmark, bench_world, gold_standard, test_set, report
):
    held_out = tuple(gold_standard.asns()) + tuple(test_set.asns())

    def _run():
        results = {}
        for name, strategy in STRATEGIES.items():
            built = build_asdb(
                bench_world,
                SystemConfig(
                    seed=7, exclude_asns_from_training=held_out
                ),
            )
            built.asdb._consensus = strategy
            for asn in gold_standard.asns():
                built.asdb.classify(asn)
            results[name] = evaluate_stages(
                built.asdb.dataset, gold_standard
            )
        return results

    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [
            name,
            str(breakdown.overall_l1_coverage),
            str(breakdown.overall_l1_accuracy),
            str(breakdown.overall_l2_accuracy),
        ]
        for name, breakdown in results.items()
    ]
    table = render_table(
        ["Strategy", "L1 coverage", "L1 accuracy", "L2 accuracy"],
        rows,
        title="Ablation: consensus strategy (Gold Standard)",
    )
    report("ablation_consensus", table)

    paper = results["paper (union-on-overlap)"]
    for name, breakdown in results.items():
        # The paper's rule is competitive with every alternative on both
        # layers (alternatives can edge it on one layer while losing the
        # other - e.g. majority vote trades layer 2 for layer 1).
        assert (
            paper.overall_l1_accuracy.value
            >= breakdown.overall_l1_accuracy.value - 0.05
        ), name
        assert (
            paper.overall_l2_accuracy.value
            >= breakdown.overall_l2_accuracy.value - 0.05
        ), name
        assert (
            paper.overall_l1_coverage.value
            >= breakdown.overall_l1_coverage.value - 0.02
        ), name
