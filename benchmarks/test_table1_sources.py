"""Table 1: candidate data sources and their attributes."""

from repro.datasources import SOURCE_CATALOG
from repro.reporting import render_table


def _build_table() -> str:
    rows = []
    for attrs in SOURCE_CATALOG:
        rows.append(
            [
                attrs.group,
                attrs.display_name,
                "/".join(attrs.searchable_by),
                "yes" if attrs.has_name else "-",
                attrs.industry_scheme,
                "yes" if attrs.has_domain else "-",
                attrs.access,
                "yes" if attrs.used_by_asdb else "no",
            ]
        )
    return render_table(
        ["Group", "Source", "Searchable", "Name", "Industry", "Domain",
         "Access", "Used by ASdb"],
        rows,
        title="Table 1: Candidate Data Sources",
    )


def test_table1_sources(benchmark, report):
    table = benchmark(_build_table)
    report("table1_sources", table)
    assert "D&B" in table and "Zvelo" in table
    # ASdb uses exactly five sources (Section 3.5).
    used = [attrs for attrs in SOURCE_CATALOG if attrs.used_by_asdb]
    assert len(used) == 5
