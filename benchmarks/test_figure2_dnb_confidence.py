"""Figure 2: D&B confidence codes vs automated match accuracy.

Paper: D&B accurately matches fewer than 50% of ASes when returning a
confidence level below 6, but at least 80% at or above 6.
"""

from repro.evaluation import figure2_dnb_confidence
from repro.reporting import render_bars


def test_figure2_dnb_confidence(
    benchmark, bench_world, gold_standard, built_system, report
):
    buckets = benchmark.pedantic(
        lambda: figure2_dnb_confidence(
            built_system.dnb, bench_world, gold_standard
        ),
        rounds=1,
        iterations=1,
    )
    labels = [f"code {b.code} (n={b.accuracy.total})" for b in buckets]
    values = [b.accuracy.value for b in buckets]
    chart = render_bars(
        labels,
        values,
        title="Figure 2: D&B matching accuracy by confidence code "
        "(paper: <50% below 6, >=80% at 6+)",
    )
    report("figure2_dnb_confidence", chart)

    low = [b for b in buckets if b.code < 6 and b.accuracy.total >= 5]
    high = [b for b in buckets if b.code >= 6 and b.accuracy.total >= 5]
    assert high, "no populated high-confidence buckets"
    low_hits = sum(b.accuracy.hits for b in low)
    low_total = sum(b.accuracy.total for b in low)
    high_hits = sum(b.accuracy.hits for b in high)
    high_total = sum(b.accuracy.total for b in high)
    if low_total >= 10:
        assert low_hits / low_total < 0.60
    assert high_hits / high_total >= 0.75
