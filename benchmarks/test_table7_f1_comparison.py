"""Table 7: F1 comparison - ASdb vs IPinfo vs PeeringDB.

Paper: ASdb always wins; hosting is its weakest class (F1 .65-.76) yet
still 2.5-6x better than the prior systems; ASdb classifies 3x / 7x more
ASes than IPinfo / PeeringDB.
"""

from repro.evaluation import table7_coarse_f1
from repro.reporting import render_table

PAPER_GS = {"business": 0.86, "isp": 0.90, "hosting": 0.76,
            "education": 0.88}


def _run(asdb_dataset, built_system, dataset):
    return table7_coarse_f1(
        asdb_dataset, built_system.ipinfo, built_system.peeringdb, dataset
    )


def _render(title, result):
    rows = [
        [
            cls,
            result[cls]["n"],
            f"{result[cls]['asdb']:.2f}",
            f"{result[cls]['ipinfo']:.2f}",
            f"{result[cls]['peeringdb']:.2f}",
        ]
        for cls in ("business", "isp", "hosting", "education")
    ]
    return render_table(
        ["Category", "N", "ASdb", "IPinfo", "PeeringDB"], rows, title=title
    )


def test_table7_f1_gold_standard(
    benchmark, asdb_dataset, built_system, gold_standard, report
):
    result = benchmark.pedantic(
        lambda: _run(asdb_dataset, built_system, gold_standard),
        rounds=1, iterations=1,
    )
    report(
        "table7_f1_gold_standard",
        _render(
            "Table 7 (Gold Standard): F1 - ASdb vs IPinfo vs PeeringDB "
            "(paper ASdb: business .86 / isp .90 / hosting .76 / edu .88)",
            result,
        ),
    )
    for cls, scores in result.items():
        if scores["n"] < 5:
            continue
        # Strict dominance on well-populated classes; a small-sample
        # margin on classes with only a handful of ASes (hosting has
        # ~10-17 in a 150-AS sample).
        margin = 0.0 if scores["n"] >= 12 else 0.08
        assert scores["asdb"] >= scores["ipinfo"] - margin, cls
        assert scores["asdb"] >= scores["peeringdb"] - margin, cls
    assert result["isp"]["asdb"] >= 0.70
    # Hosting is ASdb's weakest class.
    others = [result[c]["asdb"] for c in ("business", "isp", "education")]
    assert result["hosting"]["asdb"] <= max(others)


def test_table7_f1_test_set(
    benchmark, asdb_dataset, built_system, test_set, report
):
    result = benchmark.pedantic(
        lambda: _run(asdb_dataset, built_system, test_set),
        rounds=1, iterations=1,
    )
    report(
        "table7_f1_test_set",
        _render(
            "Table 7 (test set): F1 - ASdb vs IPinfo vs PeeringDB "
            "(paper ASdb: business .79 / isp .81 / hosting .65 / edu .94)",
            result,
        ),
    )
    for cls, scores in result.items():
        if scores["n"] < 5:
            continue
        margin = 0.0 if scores["n"] >= 12 else 0.08
        assert scores["asdb"] >= scores["peeringdb"] - margin, cls
