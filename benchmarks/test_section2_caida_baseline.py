"""Section 2: prior-work baselines - decayed CAIDA dataset and
Baumann & Fabian keyword analysis.

Paper: the December 2020 CAIDA snapshot achieved 72% coverage with
58% / 75% / 0% per-class accuracy (transit-access / enterprise /
content); Baumann & Fabian's keyword analysis reached 57% coverage over
10 categories.
"""

from repro.datasources import CaidaASClassification
from repro.evaluation import BaumannFabianClassifier, evaluate_caida
from repro.reporting import render_table


def test_section2_caida_baseline(
    benchmark, bench_world, gold_standard, report
):
    def _run():
        caida = CaidaASClassification(bench_world)
        evaluation = evaluate_caida(caida, bench_world, gold_standard)
        bf = BaumannFabianClassifier(bench_world)
        bf_coverage = bf.coverage(gold_standard.asns())
        return evaluation, bf_coverage, bf.sec_index_size

    evaluation, bf_coverage, sec_size = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    rows = [
        ["CAIDA coverage", f"{evaluation.coverage:.0%}", "(paper 72%)"],
        [
            "CAIDA transit/access acc",
            f"{evaluation.per_class_accuracy['transit/access']:.0%}",
            "(paper 58%)",
        ],
        [
            "CAIDA enterprise acc",
            f"{evaluation.per_class_accuracy['enterprise']:.0%}",
            "(paper 75%)",
        ],
        [
            "CAIDA content acc",
            f"{evaluation.per_class_accuracy['content']:.0%}",
            "(paper 0%)",
        ],
        ["B&F keyword coverage", f"{bf_coverage:.0%}", "(paper 57%)"],
        ["B&F SEC index size", sec_size, "(paper: 469 ASes reached)"],
    ]
    table = render_table(
        ["Metric", "Measured", "Reference"],
        rows,
        title="Section 2: prior-work baselines on the Gold Standard",
    )
    report("section2_baselines", table)

    assert 0.60 <= evaluation.coverage <= 0.85
    assert evaluation.per_class_accuracy["content"] <= 0.10
    assert (
        evaluation.per_class_accuracy["enterprise"]
        > evaluation.per_class_accuracy["transit/access"]
    )
    assert 0.10 <= bf_coverage <= 0.75
