"""Figure 5: MTurk coverage and accuracy vs offered reward.

Paper: coverage (consensus reached) rises with reward; loose-match
accuracy is high (90-100%) and NOT appreciably improved by higher pay;
workers do consistently worse on technology than finance categories at
strict matching.
"""

import pytest

from repro.crowd import MTurkPlatform
from repro.reporting import render_table

REWARDS = (10, 20, 30, 40, 50, 60)


@pytest.fixture(scope="module")
def experiment(bench_world):
    """The appendix experiment: 20 tech + 20 finance ASes, 3 workers,
    2/3 consensus, six reward levels with disjoint worker sets."""
    orgs = list(bench_world.iter_organizations())
    finance = [
        org for org in orgs if "finance" in org.truth.layer1_slugs()
    ][:20]
    tech = [org for org in orgs if org.is_tech][:20]
    platform = MTurkPlatform(seed=13, pool_size=1500)
    results = {}
    for reward in REWARDS:
        results[reward] = {
            "finance": platform.run_batch(finance, reward),
            "tech": platform.run_batch(tech, reward),
        }
    return finance, tech, results


def _loose_accuracy(batch, orgs):
    lookup = {org.org_id: org for org in orgs}
    hits = total = 0
    for task in batch.tasks:
        if not task.outcome.reached:
            continue
        total += 1
        hits += task.outcome.labels.overlaps_layer2(
            lookup[task.org_id].truth
        )
    return hits / total if total else 0.0


def _strict_accuracy(batch, orgs):
    lookup = {org.org_id: org for org in orgs}
    hits = total = 0
    for task in batch.tasks:
        if not task.outcome.reached:
            continue
        total += 1
        hits += task.outcome.labels.strict_equals_layer2(
            lookup[task.org_id].truth
        )
    return hits / total if total else 0.0


def test_figure5_mturk_reward(benchmark, experiment, report):
    finance, tech, results = experiment

    def _summarize():
        rows = []
        for reward in REWARDS:
            fin = results[reward]["finance"]
            tec = results[reward]["tech"]
            rows.append(
                [
                    f"{reward}c",
                    f"{fin.coverage:.0%}",
                    f"{tec.coverage:.0%}",
                    f"{_loose_accuracy(fin, finance):.0%}",
                    f"{_loose_accuracy(tec, tech):.0%}",
                    f"{_strict_accuracy(fin, finance):.0%}",
                    f"{_strict_accuracy(tec, tech):.0%}",
                ]
            )
        return rows

    rows = benchmark(_summarize)
    table = render_table(
        ["Reward", "Fin cov", "Tech cov", "Fin loose", "Tech loose",
         "Fin strict", "Tech strict"],
        rows,
        title="Figure 5: MTurk coverage & accuracy vs reward "
        "(paper: coverage rises with reward; accuracy does not)",
    )
    report("figure5_mturk_reward", table)

    # Coverage at the top reward beats the bottom reward.
    for group in ("finance", "tech"):
        low = results[10][group].coverage
        high = results[60][group].coverage
        assert high >= low

    # Loose accuracy is high everywhere and not reward-driven.
    loose = []
    for reward in REWARDS:
        loose.append(_loose_accuracy(results[reward]["finance"], finance))
        loose.append(_loose_accuracy(results[reward]["tech"], tech))
    assert min(loose) >= 0.70
    assert max(loose) - min(loose) <= 0.35  # no strong trend, just noise
