"""Table 5: accuracy of automated entity resolution.

Paper: D&B conf>=1 83% / conf>=6 89% matching accuracy; Crunchbase domain
100% / name 95%; domain selection random 70% < least-common 90% ~
most-similar 91%; IPinfo 86%.
"""

from repro.evaluation import table5_entity_resolution
from repro.reporting import render_table


def test_table5_entity_resolution(
    benchmark, bench_world, gold_standard, built_system, report
):
    rows = benchmark.pedantic(
        lambda: table5_entity_resolution(
            bench_world,
            gold_standard,
            built_system.dnb,
            built_system.crunchbase,
            built_system.ipinfo,
            built_system.frequency_index,
        ),
        rounds=1,
        iterations=1,
    )
    rendered = render_table(
        ["Target", "Algorithm", "Match acc", "Correct", "Incorrect",
         "Missing"],
        [
            [
                row.target,
                row.algorithm,
                f"{row.match_accuracy:.0%}",
                f"{row.correct:.0%}",
                f"{row.incorrect:.0%}",
                f"{row.missing:.0%}",
            ]
            for row in rows
        ],
        title="Table 5: Automated entity resolution "
        "(paper: D&B 83%/89%; CB 100%/95%; domain 70/90/91%; IPinfo 86%)",
    )
    report("table5_entity_resolution", rendered)

    by_key = {(row.target, row.algorithm): row for row in rows}
    # Thresholding D&B trades correctness-coverage for match accuracy.
    lax = by_key[("D&B", "Conf >=1")]
    strict = by_key[("D&B", "Conf >=6")]
    assert strict.match_accuracy >= lax.match_accuracy
    assert strict.missing >= lax.missing
    assert 0.70 <= lax.match_accuracy <= 0.95               # 83%
    # Crunchbase: domain matching is (nearly) perfect, name close behind.
    assert by_key[("Crunchbase", "Domain")].match_accuracy >= 0.95
    assert by_key[("Crunchbase", "Name")].match_accuracy >= 0.85
    # Domain heuristics: random is the weakest; the smart ones beat it.
    random_row = by_key[("Domain", "Random")]
    least_common = by_key[("Domain", "Least Common")]
    most_similar = by_key[("Domain", "Most Similar")]
    assert least_common.match_accuracy >= random_row.match_accuracy
    assert most_similar.match_accuracy >= random_row.match_accuracy
    assert most_similar.match_accuracy >= 0.85              # 91%
    # IPinfo's published domains are mostly right.
    assert 0.70 <= by_key[("Domain", "IPinfo")].match_accuracy <= 0.97
