"""Table 8: evaluation of ASdb stages across all three labeled datasets.

Paper: overall layer 1 coverage/accuracy 97/97 (GS), 96/93 (test), 95/89
(UGS); layer 2 accuracy 87/75/82; >=2-sources-agree is the strongest
stage (~100%), no-agreement the weakest.
"""

import pytest

from repro.core import Stage
from repro.evaluation import evaluate_stages
from repro.reporting import render_table


def _render(name, breakdown, paper_line):
    rows = [
        [row.stage.display, str(row.coverage), str(row.accuracy)]
        for row in breakdown.rows
    ]
    rows.append(["Overall Layer 1", str(breakdown.overall_l1_coverage),
                 str(breakdown.overall_l1_accuracy)])
    rows.append(["Layer 2 - Tech", "",
                 str(breakdown.l2_tech_accuracy)])
    rows.append(["Layer 2 - Not Tech", "",
                 str(breakdown.l2_nontech_accuracy)])
    rows.append(["Overall Layer 2", str(breakdown.overall_l2_coverage),
                 str(breakdown.overall_l2_accuracy)])
    return render_table(
        ["Stage", "Coverage", "Accuracy"],
        rows,
        title=f"Table 8 ({name}): ASdb stage evaluation ({paper_line})",
    )


@pytest.mark.parametrize(
    "fixture_name,paper_line,l1_cov_min,l1_acc_min,l2_acc_min",
    [
        ("gold_standard", "paper: L1 97/97, L2 93/87", 0.85, 0.85, 0.70),
        ("test_set", "paper: L1 96/93, L2 96/75", 0.85, 0.85, 0.70),
        ("uniform_gold_standard", "paper: L1 95/89, L2 98/82", 0.80,
         0.80, 0.65),
    ],
)
def test_table8_stages(
    benchmark,
    request,
    asdb_dataset,
    report,
    fixture_name,
    paper_line,
    l1_cov_min,
    l1_acc_min,
    l2_acc_min,
):
    labeled = request.getfixturevalue(fixture_name)
    breakdown = benchmark.pedantic(
        lambda: evaluate_stages(asdb_dataset, labeled),
        rounds=1,
        iterations=1,
    )
    report(f"table8_stages_{fixture_name}",
           _render(fixture_name, breakdown, paper_line))

    assert breakdown.overall_l1_coverage.value >= l1_cov_min
    assert breakdown.overall_l1_accuracy.value >= l1_acc_min
    assert breakdown.overall_l2_accuracy.value >= l2_acc_min
    # Layer 2 accuracy trails layer 1 (finer categories are harder).
    assert (
        breakdown.overall_l2_accuracy.value
        <= breakdown.overall_l1_accuracy.value + 0.02
    )
    # Stage ordering: agreement beats no-agreement.
    accuracy = {
        row.stage: row.accuracy.value
        for row in breakdown.rows
        if row.accuracy.total >= 5
    }
    if Stage.MULTI_AGREE in accuracy and Stage.MULTI_DISAGREE in accuracy:
        assert accuracy[Stage.MULTI_AGREE] >= accuracy[Stage.MULTI_DISAGREE]
