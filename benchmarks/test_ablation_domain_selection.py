"""Ablation: domain-selection heuristics (the Table 5 design choice).

Compares random / least-common / most-similar selection plus the full
Figure-4 algorithm (provider filtering + most-similar) over all ASes.
"""

from repro.matching import (
    choose_domain,
    select_least_common,
    select_most_similar,
    select_random,
)
from repro.reporting import render_table


def test_ablation_domain_selection(
    benchmark, bench_world, built_system, report
):
    world = bench_world
    index = built_system.frequency_index

    strategies = {
        "random": lambda cands, asn, as_name: select_random(
            cands, seed_material=str(asn)
        ),
        "least_common": lambda cands, asn, as_name: select_least_common(
            cands, index
        ),
        "most_similar": lambda cands, asn, as_name: select_most_similar(
            cands, as_name, world.web
        ),
        "full_figure4": lambda cands, asn, as_name: choose_domain(
            cands, as_name, world.web, index
        ),
    }

    def _run():
        scores = {}
        for name, strategy in strategies.items():
            hits = total = 0
            for asn in world.asns():
                org = world.org_of_asn(asn)
                if org.domain is None:
                    continue
                contact = world.registry.contact(asn)
                if not contact.candidate_domains:
                    continue
                chosen = strategy(
                    contact.candidate_domains, asn,
                    world.ases[asn].as_name,
                )
                if chosen is None:
                    continue
                total += 1
                hits += chosen == org.domain
            scores[name] = (hits, total)
        return scores

    scores = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [name, total, f"{hits / total:.1%}" if total else "-"]
        for name, (hits, total) in scores.items()
    ]
    table = render_table(
        ["Strategy", "Resolved", "Accuracy"],
        rows,
        title="Ablation: domain-selection heuristics over all ASes "
        "(paper Table 5: random 70% < least-common 90% ~ most-similar "
        "91%)",
    )
    report("ablation_domain_selection", table)

    accuracy = {
        name: hits / total for name, (hits, total) in scores.items()
    }
    assert accuracy["random"] <= accuracy["least_common"]
    assert accuracy["random"] <= accuracy["most_similar"]
    assert accuracy["full_figure4"] >= accuracy["most_similar"] - 0.01
