"""Table 9: ASdb supplemented with crowdwork.

Paper: adding crowdwork to the weak stages changes coverage and accuracy
negligibly - at most +3 points of layer 1 accuracy - so the deployed
system omits it.
"""

from repro.crowd import MTurkPlatform, apply_crowdwork
from repro.evaluation import evaluate_stages
from repro.reporting import render_table


def test_table9_crowdwork_asdb(
    benchmark, bench_world, asdb_dataset, gold_standard, test_set, report
):
    def _run():
        platform = MTurkPlatform(seed=31)
        scope = list(gold_standard.asns()) + list(test_set.asns())
        return apply_crowdwork(
            bench_world, asdb_dataset, platform, asns=scope
        )

    outcome = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    deltas = {}
    for name, labeled in (
        ("Gold Standard", gold_standard),
        ("Test Set", test_set),
    ):
        before = evaluate_stages(asdb_dataset, labeled)
        after = evaluate_stages(outcome.dataset, labeled)
        delta_l1 = (
            after.overall_l1_accuracy.value
            - before.overall_l1_accuracy.value
        )
        delta_l2 = (
            after.overall_l2_accuracy.value
            - before.overall_l2_accuracy.value
        )
        deltas[name] = (delta_l1, delta_l2)
        rows.append(
            [
                name,
                str(before.overall_l1_accuracy),
                str(after.overall_l1_accuracy),
                f"{delta_l1:+.1%}",
                str(after.overall_l2_accuracy),
                f"{delta_l2:+.1%}",
            ]
        )
    rows.append(
        [
            "escalated / overridden",
            len(outcome.escalated_asns),
            len(outcome.overridden_asns),
            "cost",
            f"${outcome.batch.total_cost_dollars:,.0f}",
            "",
        ]
    )
    table = render_table(
        ["Dataset", "L1 before", "L1 after", "delta L1", "L2 after",
         "delta L2"],
        rows,
        title="Table 9: ASdb + crowdwork "
        "(paper: accuracy changes by at most +3 points)",
    )
    report("table9_crowdwork_asdb", table)

    assert outcome.escalated_asns
    for name, (delta_l1, _delta_l2) in deltas.items():
        # "Affects coverage and accuracy negligibly."
        assert -0.06 <= delta_l1 <= 0.08, name
