"""Table 3: external data source coverage on the Gold Standard.

Paper: D&B 82%, Crunchbase 37%, ZoomInfo 68%, Clearbit 61%, Zvelo 93%,
PeeringDB 15%, IPinfo 30%; non-tech coverage beats tech for the business
sources while the networking sources skew tech.
"""

import pytest

from repro.datasources import Clearbit, ZoomInfo
from repro.evaluation import evaluate_source
from repro.reporting import render_table

PAPER_COVERAGE = {
    "dnb": 0.82,
    "crunchbase": 0.37,
    "zoominfo": 0.68,
    "clearbit": 0.61,
    "zvelo": 0.93,
    "peeringdb": 0.15,
    "ipinfo": 0.30,
}


@pytest.fixture(scope="module")
def all_sources(bench_world, built_system):
    return {
        "dnb": built_system.dnb,
        "crunchbase": built_system.crunchbase,
        "zoominfo": ZoomInfo(bench_world),
        "clearbit": Clearbit(bench_world),
        "zvelo": built_system.zvelo,
        "peeringdb": built_system.peeringdb,
        "ipinfo": built_system.ipinfo,
    }


def test_table3_coverage(
    benchmark, bench_world, gold_standard, all_sources, report
):
    def _evaluate():
        return {
            name: evaluate_source(source, bench_world, gold_standard)
            for name, source in all_sources.items()
        }

    evaluations = benchmark.pedantic(_evaluate, rounds=1, iterations=1)

    rows = []
    for name, ev in evaluations.items():
        rows.append(
            [
                name,
                str(ev.coverage),
                str(ev.coverage_tech),
                str(ev.coverage_nontech),
                f"(paper {PAPER_COVERAGE[name]:.0%})",
            ]
        )
    table = render_table(
        ["Source", "Coverage", "Tech", "Non-Tech", "Reference"],
        rows,
        title="Table 3: External data source coverage (Gold Standard)",
    )
    report("table3_coverage", table)

    # Shape assertions: ordering and rough bands.
    cov = {name: ev.coverage.value for name, ev in evaluations.items()}
    assert cov["zvelo"] >= cov["dnb"] >= cov["zoominfo"]
    assert cov["peeringdb"] == min(cov.values())
    for name, expected in PAPER_COVERAGE.items():
        assert abs(cov[name] - expected) <= 0.15, (name, cov[name])
    # Business sources cover non-tech better than tech; networking
    # sources do the opposite.
    for name in ("dnb", "crunchbase", "zoominfo"):
        ev = evaluations[name]
        assert ev.coverage_nontech.value > ev.coverage_tech.value
    for name in ("peeringdb", "ipinfo"):
        ev = evaluations[name]
        assert ev.coverage_tech.value > ev.coverage_nontech.value
