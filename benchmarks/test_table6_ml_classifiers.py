"""Table 6 (+ Figure 3's operating points): the ML classifier evaluation.

Paper: ISP classifier 94% accuracy / 1% FP / AUC .94; hosting classifier
90% accuracy / 3% FP / AUC .80; false negatives dominate false positives;
the hosting classifier is the weaker of the two.
"""

import pytest

from repro.ml import confusion_matrix, roc_auc
from repro.reporting import render_table


@pytest.fixture(scope="module")
def verdicts(bench_world, gold_standard, built_system):
    """Classify every Gold Standard AS with a working domain."""
    pipeline = built_system.ml_pipeline
    rows = []
    for entry in gold_standard.labeled_entries():
        org = bench_world.org_of_asn(entry.asn)
        if org.domain is None:
            continue
        verdict = pipeline.classify_domain(org.domain)
        slugs = entry.labels.layer2_slugs()
        rows.append(
            {
                "truth_isp": "isp" in slugs,
                "truth_hosting": "hosting" in slugs,
                "verdict": verdict,
            }
        )
    return rows


def _confusion_table(rows, truth_key, flag, score):
    truth = [row[truth_key] for row in rows]
    predicted = [getattr(row["verdict"], flag) for row in rows]
    scores = [getattr(row["verdict"], score) for row in rows]
    return confusion_matrix(truth, predicted), roc_auc(truth, scores)


def test_table6_ml_classifiers(benchmark, verdicts, report):
    def _evaluate():
        isp_cm, isp_auc = _confusion_table(
            verdicts, "truth_isp", "is_isp", "isp_score"
        )
        host_cm, host_auc = _confusion_table(
            verdicts, "truth_hosting", "is_hosting", "hosting_score"
        )
        return isp_cm, isp_auc, host_cm, host_auc

    isp_cm, isp_auc, host_cm, host_auc = benchmark.pedantic(
        _evaluate, rounds=1, iterations=1
    )

    def _rows(name, cm, auc):
        return [
            [name, "TP", cm.tp, "FN", cm.fn],
            [name, "FP", cm.fp, "TN", cm.tn],
            [name, "accuracy", f"{cm.accuracy:.0%}", "AUC", f"{auc:.2f}"],
            [name, "FP rate", f"{cm.false_positive_rate:.1%}", "FN rate",
             f"{cm.false_negative_rate:.1%}"],
        ]

    table = render_table(
        ["Classifier", "", "", "", ""],
        _rows("ISP", isp_cm, isp_auc) + _rows("Hosting", host_cm, host_auc),
        title="Table 6: Classifier evaluation "
        "(paper: ISP 94% acc / 1% FP / AUC .94; hosting 90% / 3% / .80)",
    )
    report("table6_ml_classifiers", table)

    assert isp_cm.accuracy >= 0.82
    assert isp_cm.false_positive_rate <= 0.06
    assert isp_auc >= 0.88
    assert host_cm.accuracy >= 0.85
    assert host_cm.false_positive_rate <= 0.06
    # The hosting classifier is the weaker one.
    assert host_auc <= isp_auc + 0.03
    # False negatives dominate false positives overall.
    assert isp_cm.fn + host_cm.fn >= isp_cm.fp + host_cm.fp
