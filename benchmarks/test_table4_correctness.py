"""Table 4: external data source correctness (layer 1 and layer 2 recall).

Paper headline: all sources except IPinfo do poorly on hosting providers
(correctness below 63%); layer 1 recall is high for D&B (96%) and low for
Clearbit (34%); tech layer 2 recall trails non-tech for business sources.
"""

import pytest

from repro.datasources import Clearbit, ZoomInfo
from repro.evaluation import evaluate_source
from repro.reporting import render_table


@pytest.fixture(scope="module")
def evaluations(bench_world, gold_standard, built_system):
    sources = {
        "dnb": built_system.dnb,
        "crunchbase": built_system.crunchbase,
        "zoominfo": ZoomInfo(bench_world),
        "clearbit": Clearbit(bench_world),
        "zvelo": built_system.zvelo,
        "peeringdb": built_system.peeringdb,
        "ipinfo": built_system.ipinfo,
    }
    return {
        name: evaluate_source(source, bench_world, gold_standard)
        for name, source in sources.items()
    }


def test_table4_correctness(benchmark, evaluations, report):
    def _render():
        rows = []
        for name, ev in evaluations.items():
            rows.append(
                [
                    name,
                    str(ev.l1_recall),
                    str(ev.l1_recall_tech),
                    str(ev.l1_recall_nontech),
                    str(ev.l2_recall),
                    str(ev.l2_recall_tech),
                    str(ev.l2_recall_nontech),
                    str(ev.l2_recall_hosting),
                    str(ev.l2_recall_isp),
                ]
            )
        return render_table(
            ["Source", "L1", "L1 tech", "L1 non-tech", "L2", "L2 tech",
             "L2 non-tech", "Hosting", "ISP"],
            rows,
            title="Table 4: External data source correctness "
            "(paper: D&B L1 96%, hosting 45%, ISP 70%; Clearbit L1 34%; "
            "PeeringDB hosting 0%)",
        )

    table = benchmark(_render)
    report("table4_correctness", table)

    dnb = evaluations["dnb"]
    assert dnb.l1_recall.value >= 0.88                      # 96%
    assert dnb.l2_recall_hosting.value <= 0.65              # 45%
    assert evaluations["clearbit"].l1_recall.value <= 0.50  # 34%
    assert evaluations["peeringdb"].l2_recall_hosting.value == 0.0
    # All sources except IPinfo do poorly on hosting (paper: < 63%;
    # widened for sampling noise on ~15 hosting ASes).
    for name, ev in evaluations.items():
        if name == "ipinfo" or ev.l2_recall_hosting.total < 5:
            continue
        assert ev.l2_recall_hosting.value <= 0.78, name
    assert evaluations["ipinfo"].l2_recall_hosting.value >= 0.70
    # Business sources: tech layer 2 recall trails non-tech.
    for name in ("dnb", "crunchbase"):
        ev = evaluations[name]
        assert ev.l2_recall_tech.value < ev.l2_recall_nontech.value
