"""Table 2: the four labeled ground-truth datasets."""

import random

from repro.datasources import DunBradstreet
from repro.ml import build_training_examples
from repro.reporting import render_table


def test_table2_datasets(
    benchmark, bench_world, gold_standard, test_set, uniform_gold_standard,
    built_system, report,
):
    def _build():
        rng = random.Random(11)
        training = build_training_examples(
            bench_world,
            built_system.dnb,
            rng,
            exclude_asns=tuple(gold_standard.asns())
            + tuple(test_set.asns()),
        )
        return training

    training = benchmark.pedantic(_build, rounds=1, iterations=1)
    rows = [
        ["Gold Standard", len(gold_standard), "Random",
         "data-source + ASdb evaluation"],
        ["Uniform Gold Standard", len(uniform_gold_standard),
         "Uniform over 16 layer 1 categories", "long-tail evaluation"],
        ["ML training set", len(training),
         "150 random + 75 D&B-labeled hosting", "classifier training"],
        ["New test set", len(test_set), "Random (fresh)",
         "deployment-fairness evaluation"],
    ]
    table = render_table(
        ["Dataset", "ASes", "Sampling", "Use"],
        rows,
        title="Table 2: Labeled ground truth "
        "(paper: 150 / 320 / 225 / 150)",
    )
    report("table2_datasets", table)

    assert len(gold_standard) == 150
    assert len(test_set) == 150
    assert 250 <= len(uniform_gold_standard) <= 320
    assert 150 <= len(training) <= 225
    # Hosting is oversampled relative to the world (Table 2's purpose).
    train_rate = sum(e.is_hosting for e in training) / len(training)
    world_rate = sum(
        1
        for org in bench_world.iter_organizations()
        if "hosting" in org.truth.layer2_slugs()
    ) / len(bench_world.organizations)
    assert train_rate > world_rate
